//! # cqms — Collaborative Query Management System
//!
//! Umbrella crate re-exporting the full CQMS stack, a reproduction of
//! *"A Case for A Collaborative Query Management System"* (Khoussainova,
//! Balazinska, Gatterbauer, Kwon, Suciu — CIDR 2009).
//!
//! The stack consists of:
//!
//! * [`sqlparse`] — SQL lexer/parser/printer + canonicalisation, fingerprints
//!   and parse-tree diffs;
//! * [`relstore`] — the embedded relational engine underneath the CQMS
//!   (the "DBMS" box of the paper's Figure 4);
//! * [`textindex`] — keyword and substring search over query text;
//! * [`workload`] — synthetic multi-user query-log generators with planted
//!   ground truth, standing in for the scientific lab logs of the paper;
//! * [`engine`] *(re-export of `cqms-core`)* — the CQMS itself: Query
//!   Profiler, Query Storage, Meta-query Executor, Query Miner, Query
//!   Maintenance, assisted interaction and administrative interaction.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use cqms_core as engine;
pub use relstore;
pub use sqlparse;
pub use textindex;
pub use workload;
