//! Durability tour: open a CQMS over an on-disk write-ahead log, ingest
//! acknowledged work, "crash", and recover every acknowledged query.
//!
//! Run with: `cargo run --example durability`
//!
//! The "crash" here is honest: `Cqms` has no shutdown hook — nothing is
//! written when it is dropped. Anything not yet flushed to the log dies
//! with the process, exactly as it would under `kill -9`; everything the
//! service acknowledged was flushed first and must come back. (For the
//! real `abort()`-based kill, see `crates/core/tests/durability.rs`.)

use cqms::engine::{Cqms, CqmsConfig, CqmsService, IngestItem};
use relstore::Engine;
use workload::Domain;

fn lakes_engine() -> Engine {
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 300, 42);
    engine
}

fn main() {
    let dir = std::env::temp_dir().join(format!("cqms-durability-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Open (not `new`): the directory holds the write-ahead log and
    //    periodic snapshots. A fresh directory starts an empty log.
    let cqms = Cqms::open(lakes_engine(), CqmsConfig::default(), &dir).expect("open");
    println!("== Opened fresh durable CQMS at {} ==", dir.display());
    println!("  {}", cqms.recovery().expect("report"));

    // 2. Ingest through the service layer. `ingest_batch` flushes the log
    //    once per batch before returning: every Ok below is a durability
    //    acknowledgement, not just an in-memory success.
    let svc = CqmsService::new(cqms);
    let alice = svc.register_user("alice");
    let batch: Vec<IngestItem> = [
        "SELECT lake, temp FROM WaterTemp WHERE temp < 22",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
         WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 18",
        "SELECT city FROM CityLocations WHERE pop > 100000",
        "SELECT * FROM Lakes",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| IngestItem::at(alice, *sql, 1_000 + i as u64 * 60))
    .collect();
    let acks = svc.ingest_batch(&batch);
    println!("\n== Ingested one batch of {} queries ==", acks.len());
    assert!(acks.iter().all(|r| r.is_ok()), "batch acknowledged");
    svc.annotate(
        alice,
        acks[2].as_ref().copied().unwrap(),
        "correlate salinity with temperature",
        None,
    )
    .expect("annotation acknowledged");
    println!("  {} live queries, annotation attached", svc.live_count());

    // 3. Crash. Dropping the service writes nothing — this is the kill.
    drop(svc);
    println!("\n== Process 'crashed' (dropped with no shutdown path) ==");

    // 4. Reopen the same directory: the log replays on top of the newest
    //    snapshot (none yet), and the report says exactly what happened.
    let cqms = Cqms::open(lakes_engine(), CqmsConfig::default(), &dir).expect("reopen");
    println!("  {}", cqms.recovery().expect("report"));
    assert_eq!(cqms.storage.len(), 5, "every acknowledged query survived");
    let note = &cqms
        .storage
        .get(cqms::engine::model::QueryId(2))
        .unwrap()
        .annotations[0];
    println!("  recovered annotation: {:?}", note.text);

    // 5. Snapshots bound replay time. Normally the miner epoch writes one
    //    off the hot path once `snapshot_every_ops` mutations accumulate;
    //    operators can force one explicitly:
    let mut cqms = cqms;
    assert!(cqms.force_snapshot().expect("snapshot"), "snapshot written");
    drop(cqms);
    let cqms = Cqms::open(lakes_engine(), CqmsConfig::default(), &dir).expect("third open");
    let report = cqms.recovery().expect("report");
    println!("\n== Reopened from the forced snapshot ==");
    println!("  {}", report);
    assert_eq!(
        report.snapshot_records, 5,
        "state now loads from the snapshot"
    );
    assert_eq!(report.frames_replayed, 0, "nothing left to replay");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nDone: acknowledged work survived the crash; snapshots keep recovery O(tail).");
}
