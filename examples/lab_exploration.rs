//! A collaborating limnology lab — the paper's motivating scenario, end to
//! end on a realistic multi-user query log.
//!
//! Replays a generated multi-user trace through the CQMS, then demonstrates
//! each of the paper's figures against the accumulated log:
//! Figure 1 (the verbatim meta-query), Figure 2 (a session window),
//! Figure 3 (the recommendation panel), plus query-by-data (§2.2) and the
//! auto-generated tutorial (§2.3).
//!
//! Run with: `cargo run --example lab_exploration`

use cqms::engine::metaquery::FIGURE1_META_QUERY;
use cqms::engine::model::UserId;
use cqms::engine::{Cqms, CqmsConfig};
use workload::{Domain, Trace, TraceConfig};

fn main() {
    // Build the shared lab database + a 30-session query log with planted
    // ground truth (sessions, topics, association rules).
    let trace = Trace::generate(
        TraceConfig::new(Domain::Lakes)
            .with_sessions(30)
            .with_users(4)
            .with_scale(400),
    );
    let engine = trace.build_engine();
    let mut cqms = Cqms::new(engine, CqmsConfig::default());

    // Register the lab members and one shared group.
    let members: Vec<UserId> = (0..4)
        .map(|i| cqms.register_user(&format!("scientist-{i}")))
        .collect();
    let lab = cqms.create_group("limnology-lab");
    for m in &members {
        cqms.join_group(*m, lab).unwrap();
    }

    // Replay the trace through the Traditional Interaction Mode.
    let mut failures = 0;
    for q in &trace.queries {
        let user = members[q.user as usize % members.len()];
        match cqms.run_query_at(user, &q.sql, q.ts) {
            Ok(out) if out.error.is_none() => {}
            _ => failures += 1,
        }
    }
    println!(
        "replayed {} queries ({} failures), {} sessions detected online",
        trace.queries.len(),
        failures,
        cqms.storage.session_ids().len()
    );

    // One miner epoch digests the log.
    let miner = cqms.run_miner_epoch();
    println!(
        "miner epoch: {} association rules, {} clusters, {} session labels refined\n",
        miner.association_rules, miner.clusters, miner.sessions_refined
    );

    // --- Figure 1: the verbatim meta-query --------------------------------
    println!("== Figure 1: find all queries that correlate salinity with temperature ==");
    let result = cqms
        .search_feature_sql(members[0], FIGURE1_META_QUERY)
        .unwrap();
    println!("{} matching queries; first 3:", result.rows.len());
    for row in result.rows.iter().take(3) {
        println!("  [q{}] {}", row[0].render(), row[1].render());
    }

    // --- Figure 2: browse one multi-query session -------------------------
    println!("\n== Figure 2: a session window ==");
    let busiest = cqms
        .storage
        .session_ids()
        .into_iter()
        .max_by_key(|s| cqms.storage.queries_in_session(*s).len())
        .unwrap();
    print!("{}", cqms.render_session(busiest).unwrap());

    // --- §2.2 query-by-data: Lake Washington but not Lake Union -----------
    println!("\n== Query-by-data: output includes Lake Washington, excludes Lake Union ==");
    let hits = cqms.search_by_data(members[0], &["Lake Washington"], &["Lake Union"], false);
    println!("{} queries match; first 3:", hits.len());
    for id in hits.iter().take(3) {
        println!("  [q{id}] {}", cqms.storage.get(*id).unwrap().raw_sql);
    }

    // --- Figure 3: assisted composition ------------------------------------
    println!("\n== Figure 3: completions for 'SELECT * FROM WaterSalinity, ' ==");
    for s in cqms.complete(members[1], "SELECT * FROM WaterSalinity, ", 3) {
        println!("  {:<18} {:.0}%  ({})", s.text, s.score * 100.0, s.why);
    }
    println!("\n== Figure 3: similar-queries panel while composing ==");
    let panel = cqms
        .render_recommendations(
            members[1],
            "SELECT * FROM WaterSalinity S, WaterTemp T \
             WHERE S.loc_x = T.loc_x AND T.temp < 18",
            3,
        )
        .unwrap();
    print!("{panel}");

    // --- §2.3 tutorial generation ------------------------------------------
    println!("\n== Auto-generated tutorial (first 15 lines) ==");
    for line in cqms.tutorial(1).lines().take(15) {
        println!("{line}");
    }

    // --- Browse summary ------------------------------------------------------
    println!("\n== Log browser (5 sessions) ==");
    print!("{}", cqms.render_log_summary(5));
}
