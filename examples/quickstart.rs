//! Quickstart: stand up a CQMS over a small scientific database, log a few
//! queries, then use each interaction mode once.
//!
//! Run with: `cargo run --example quickstart`

use cqms::engine::similarity::DistanceKind;
use cqms::engine::{Cqms, CqmsConfig};
use relstore::Engine;
use workload::Domain;

fn main() {
    // 1. The underlying DBMS: the paper's running "lakes" example schema
    //    (WaterSalinity, WaterTemp, CityLocations, Lakes) with synthetic data.
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 300, 42);

    // 2. Wrap it in a Collaborative Query Management System. (Thresholds
    //    lowered so a handful of demo queries already produce mined output.)
    let config = CqmsConfig {
        assoc_min_support: 2,
        cluster_k: 2,
        ..CqmsConfig::default()
    };
    let mut cqms = Cqms::new(engine, config);
    let alice = cqms.register_user("alice");

    // 3. Traditional Interaction Mode: ordinary SQL, transparently profiled.
    println!("== Traditional mode: run a few exploratory queries ==");
    for sql in [
        "SELECT lake, temp FROM WaterTemp WHERE temp < 22",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
         WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
         WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 15",
        "SELECT city FROM CityLocations WHERE pop > 100000",
    ] {
        let out = cqms.run_query(alice, sql).expect("query should run");
        let r = out.result.expect("success");
        println!(
            "  [q{}] {} rows in {:?}  ({})",
            out.id,
            r.rows.len(),
            r.metrics.elapsed,
            r.metrics.plan
        );
    }

    // Annotate the final query (§2.1).
    cqms.annotate(
        alice,
        cqms::engine::model::QueryId(2),
        "correlate salinity with temperature across Seattle lakes",
        None,
    )
    .unwrap();

    // 4. Search & Browse Interaction Mode.
    println!("\n== Search & browse: keyword search for 'salinity' ==");
    for hit in cqms.search_keyword(alice, "salinity", 5) {
        let rec = cqms.storage.get(hit.id).unwrap();
        println!("  [{:.2}] {}", hit.score, rec.raw_sql);
    }

    println!("\n== Session window (Figure 2 style) ==");
    let session = cqms
        .storage
        .get(cqms::engine::model::QueryId(0))
        .unwrap()
        .session;
    print!("{}", cqms.render_session(session).unwrap());

    // 5. Assisted Interaction Mode: completions and recommendations.
    println!("\n== Assisted mode: completing 'SELECT * FROM WaterSalinity, ' ==");
    for s in cqms.complete(alice, "SELECT * FROM WaterSalinity, ", 3) {
        println!(
            "  suggest {:<18} ({:.0}%, {})",
            s.text,
            s.score * 100.0,
            s.why
        );
    }

    println!("\n== Assisted mode: similar queries panel (Figure 3 style) ==");
    let panel = cqms
        .render_recommendations(alice, "SELECT temp FROM WaterTemp WHERE temp < 20", 3)
        .unwrap();
    print!("{panel}");

    // 6. Background components: one miner epoch + one maintenance pass.
    let miner = cqms.run_miner_epoch();
    let (schema, refresh) = cqms.run_maintenance().unwrap();
    println!(
        "\n== Background: mined {} rules, {} clusters; maintenance examined {} queries, {} drifted tables ==",
        miner.association_rules,
        miner.clusters,
        schema.examined,
        refresh.drifted_tables.len()
    );

    // 7. kNN similarity meta-query (§4.2).
    let near = cqms
        .similar_queries(
            alice,
            "SELECT lake FROM WaterTemp WHERE temp < 15",
            2,
            DistanceKind::Combined,
        )
        .unwrap();
    println!("\n== Nearest stored queries to a new draft ==");
    for hit in near {
        println!(
            "  [{:.0}%] {}",
            hit.score * 100.0,
            cqms.storage.get(hit.id).unwrap().raw_sql
        );
    }
}
