//! Recommendation quality on an SDSS-like sky survey log.
//!
//! The paper argues a CQMS should "guide [users] from their rough query
//! attempts toward similar popular queries asked by other users" (§2.3).
//! This example quantifies that guidance with a hold-one-out experiment on a
//! generated astronomy workload: for each held-out session, can the CQMS
//! recommend queries from the same research topic, and does context-aware
//! completion beat popularity-only completion?
//!
//! Run with: `cargo run --example sky_survey_recommendations`

use cqms::engine::model::UserId;
use cqms::engine::similarity::DistanceKind;
use cqms::engine::{Cqms, CqmsConfig};
use workload::{Domain, Trace, TraceConfig};

fn main() {
    let trace = Trace::generate(
        TraceConfig::new(Domain::SkySurvey)
            .with_sessions(60)
            .with_users(6)
            .with_scale(300),
    );
    let engine = trace.build_engine();
    let mut cqms = Cqms::new(engine, CqmsConfig::default());
    let users: Vec<UserId> = (0..6)
        .map(|i| cqms.register_user(&format!("astronomer-{i}")))
        .collect();

    // Hold out the last 10 sessions: their queries are the "rough attempts".
    let held_sessions: Vec<u32> = {
        let mut s: Vec<u32> = trace.queries.iter().map(|q| q.session).collect();
        s.sort_unstable();
        s.dedup();
        s.into_iter().rev().take(10).collect()
    };
    let (train, test): (Vec<_>, Vec<_>) = trace
        .queries
        .iter()
        .partition(|q| !held_sessions.contains(&q.session));

    for q in &train {
        let user = users[q.user as usize % users.len()];
        cqms.run_query_at(user, &q.sql, q.ts).unwrap();
    }
    cqms.run_miner_epoch();
    println!(
        "trained on {} queries; evaluating {} held-out queries\n",
        train.len(),
        test.len()
    );

    // --- Recommendation topical accuracy -----------------------------------
    // A recommendation "hits" if the nearest recommended query belongs to the
    // held-out query's ground-truth topic (checked via table overlap).
    let topic_tables: Vec<Vec<String>> = Domain::SkySurvey
        .topics()
        .iter()
        .map(|t| t.tables.iter().map(|s| s.to_ascii_lowercase()).collect())
        .collect();
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in &test {
        let user = users[q.user as usize % users.len()];
        let Ok(recs) = cqms.similar_queries(user, &q.sql, 1, DistanceKind::Combined) else {
            continue;
        };
        let Some(best) = recs.first() else { continue };
        total += 1;
        let rec_tables = &cqms.storage.get(best.id).unwrap().features.tables;
        let own_topic = &topic_tables[q.topic as usize];
        if rec_tables.iter().any(|t| own_topic.contains(t)) {
            hits += 1;
        }
    }
    println!(
        "topical recommendation accuracy: {hits}/{total} = {:.1}%",
        100.0 * hits as f64 / total.max(1) as f64
    );

    // --- Completion: context-aware vs popularity-only ----------------------
    // For each held-out multi-table query, hide its last FROM table and ask
    // for completions given the rest.
    let mut ctx_hits = 0usize;
    let mut pop_hits = 0usize;
    let mut cases = 0usize;
    for q in &test {
        let Ok(sqlparse::Statement::Select(sel)) = sqlparse::parse(&q.sql) else {
            continue;
        };
        if sel.from.len() < 2 {
            continue;
        }
        let target = sel.from.last().unwrap().name.to_ascii_lowercase();
        let context: Vec<String> = sel.from[..sel.from.len() - 1]
            .iter()
            .map(|t| t.name.to_ascii_lowercase())
            .collect();
        cases += 1;
        // Context-aware (rules + popularity fallback).
        let partial = format!("SELECT * FROM {}, ", context.join(", "));
        let sugg = cqms.complete(users[0], &partial, 1);
        if sugg
            .first()
            .map(|s| s.text.eq_ignore_ascii_case(&target))
            .unwrap_or(false)
        {
            ctx_hits += 1;
        }
        // Popularity-only baseline: most common table overall (excl. context).
        let mut pop: std::collections::HashMap<String, u32> = Default::default();
        for r in cqms.storage.iter_live() {
            for t in &r.features.tables {
                *pop.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let best_pop = pop
            .iter()
            .filter(|(t, _)| !context.contains(*t))
            .max_by_key(|(_, c)| **c)
            .map(|(t, _)| t.clone());
        if best_pop.map(|t| t == target).unwrap_or(false) {
            pop_hits += 1;
        }
    }
    println!(
        "completion hit@1 on held-out FROM tables ({cases} cases): \
         context-aware {:.1}% vs popularity-only {:.1}%",
        100.0 * ctx_hits as f64 / cases.max(1) as f64,
        100.0 * pop_hits as f64 / cases.max(1) as f64,
    );

    // Show one concrete panel.
    if let Some(q) = test
        .iter()
        .find(|q| q.sql.to_lowercase().contains("specobj"))
    {
        println!("\nsample panel for held-out draft:\n  {}\n", q.sql);
        let panel = cqms
            .render_recommendations(users[0], &q.sql, 3)
            .unwrap_or_default();
        print!("{panel}");
    }
}
