//! Administrative Interaction Mode on an industrial clickstream log (§2.4
//! and §4.4): access control between analyst teams, query deletion, schema
//! evolution with automatic repair, drift-triggered statistics refresh, and
//! storage snapshots.
//!
//! Run with: `cargo run --example weblog_administration`

use cqms::engine::model::Visibility;
use cqms::engine::{Cqms, CqmsConfig};
use workload::{Domain, Trace, TraceConfig};

fn main() {
    let trace = Trace::generate(
        TraceConfig::new(Domain::WebLog)
            .with_sessions(25)
            .with_users(4)
            .with_scale(400),
    );
    let engine = trace.build_engine();
    let mut cqms = Cqms::new(engine, CqmsConfig::default());

    // Two teams with separate visibility.
    let admin = cqms.register_user("dba");
    let growth_1 = cqms.register_user("growth-analyst-1");
    let growth_2 = cqms.register_user("growth-analyst-2");
    let ads_1 = cqms.register_user("ads-analyst-1");
    let growth = cqms.create_group("growth");
    let ads = cqms.create_group("ads");
    cqms.join_group(growth_1, growth).unwrap();
    cqms.join_group(growth_2, growth).unwrap();
    cqms.join_group(ads_1, ads).unwrap();

    // Replay the trace as the two teams (queries default to group scope).
    let team = [growth_1, growth_2, ads_1, admin];
    for q in &trace.queries {
        let user = team[q.user as usize % team.len()];
        let _ = cqms.run_query_at(user, &q.sql, q.ts);
    }
    println!("log: {} live queries", cqms.storage.live_count());

    // --- Access control -----------------------------------------------------
    let growth_view = cqms.search_keyword(growth_1, "pageviews", 50).len();
    let ads_view = cqms.search_keyword(ads_1, "pageviews", 50).len();
    let admin_view = cqms.search_keyword(admin, "pageviews", 50).len();
    println!(
        "\nvisibility of 'pageviews' queries — growth: {growth_view}, ads: {ads_view}, dba: {admin_view}"
    );
    assert!(admin_view >= growth_view.max(ads_view));

    // An analyst shares one of *their own* queries publicly (modification
    // rights stay with the author even inside a group).
    let own_query = |cqms: &Cqms, user| {
        cqms.storage
            .iter_live()
            .find(|r| r.user == user)
            .map(|r| r.id)
    };
    if let Some(id) = own_query(&cqms, growth_1) {
        cqms.set_visibility(growth_1, id, Visibility::Public)
            .unwrap();
        println!("growth analyst published query q{id}");
    }

    // Deleting a query removes it from every index (owner only).
    if let Some(id) = own_query(&cqms, ads_1) {
        assert!(cqms.delete_query(growth_1, id).is_err());
        cqms.delete_query(ads_1, id).unwrap();
        println!("ads analyst deleted their query q{id} (tombstoned)");
    }

    // --- Schema evolution + automatic repair (§4.4) -------------------------
    println!("\n== schema evolution: PageViews.dur -> duration_secs ==");
    cqms.data
        .execute("ALTER TABLE PageViews RENAME COLUMN dur TO duration_secs")
        .unwrap();
    let (schema, refresh) = cqms.run_maintenance().unwrap();
    println!(
        "maintenance: {} examined, {} affected, {} repaired, {} flagged, {} obsolete",
        schema.examined,
        schema.affected,
        schema.repaired.len(),
        schema.flagged.len(),
        schema.obsolete.len()
    );
    if let Some(id) = schema.repaired.first() {
        let rec = cqms.storage.get(*id).unwrap();
        println!("repaired example: {}", rec.raw_sql);
        assert!(cqms.data.execute(&rec.raw_sql).is_ok());
    }

    // --- Drift-triggered refresh ---------------------------------------------
    println!("\n== data drift: simulate a traffic spike ==");
    cqms.data
        .execute("UPDATE PageViews SET duration_secs = duration_secs * 20")
        .unwrap();
    let (_, refresh2) = cqms.run_maintenance().unwrap();
    println!(
        "first pass drifted tables: {:?}; after spike: {:?} ({} queries refreshed, naïve policy would re-run {})",
        refresh.drifted_tables,
        refresh2.drifted_tables,
        refresh2.refreshed.len(),
        refresh2.naive_rerun_count
    );

    // --- Snapshot / restore ----------------------------------------------------
    let mut buf = Vec::new();
    cqms.storage.snapshot(&mut buf).unwrap();
    let restored = cqms::engine::storage::QueryStorage::load(&buf[..]).unwrap();
    println!(
        "\nsnapshot: {} bytes; restored {} records ({} live)",
        buf.len(),
        restored.len(),
        restored.live_count()
    );
    assert_eq!(restored.len(), cqms.storage.len());
    assert_eq!(restored.live_count(), cqms.storage.live_count());
}
