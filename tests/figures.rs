//! Figure-exact integration tests: each conceptual figure of the paper is
//! reproduced behaviourally on the real stack.

use cqms::engine::metaquery::FIGURE1_META_QUERY;
use cqms::engine::model::*;
use cqms::engine::{Cqms, CqmsConfig};
use relstore::Engine;
use workload::querygen::figure2_session;
use workload::Domain;

fn lakes_cqms() -> (Cqms, UserId) {
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 200, 7);
    let mut cqms = Cqms::new(engine, CqmsConfig::default());
    let user = cqms.register_user("nodira");
    (cqms, user)
}

/// Figure 1: "find all queries that correlate water salinity with water
/// temperature data" — the verbatim meta-query over the feature relations.
#[test]
fn figure1_meta_query_full_stack() {
    let (mut cqms, user) = lakes_cqms();
    // Log three queries; only the first correlates salinity with temp.
    let correlating = cqms
        .run_query(
            user,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
             WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
        )
        .unwrap();
    cqms.run_query(user, "SELECT temp FROM WaterTemp WHERE temp < 18")
        .unwrap();
    cqms.run_query(user, "SELECT salinity FROM WaterSalinity")
        .unwrap();

    let result = cqms.search_feature_sql(user, FIGURE1_META_QUERY).unwrap();
    assert_eq!(result.rows.len(), 1, "{:?}", result.rows);
    assert_eq!(result.rows[0][0].as_i64().unwrap() as u64, correlating.id.0);
    // The qText column carries the original SQL.
    assert!(result.rows[0][1].render().contains("WaterSalinity"));
}

/// §2.2: the system auto-generates the Figure 1 meta-query from the paper's
/// partial query `SELECT FROM WaterSalinity, WaterTemperature`.
#[test]
fn figure1_auto_generation_from_partial_query() {
    let (mut cqms, user) = lakes_cqms();
    cqms.run_query(
        user,
        "SELECT * FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
    )
    .unwrap();
    cqms.run_query(user, "SELECT * FROM Lakes").unwrap();

    let meta_sql = cqms
        .generate_feature_query("SELECT FROM WaterSalinity, WaterTemp")
        .unwrap();
    // Shape: Queries joined with DataSources per table.
    assert!(meta_sql.contains("Queries Q"));
    assert!(meta_sql.contains("DataSources"));
    assert!(meta_sql.contains("'watersalinity'"));
    let result = cqms.search_feature_sql(user, &meta_sql).unwrap();
    assert_eq!(result.rows.len(), 1);
}

/// Figure 2: the six-query session, its edge labels, and the rendered window.
#[test]
fn figure2_session_window_full_stack() {
    let (mut cqms, user) = lakes_cqms();
    // 02:30 through 02:35, one query per minute, exactly like the figure.
    for (i, sql) in figure2_session().iter().enumerate() {
        let out = cqms
            .run_query_at(user, sql, 2 * 3600 + 30 * 60 + 60 * i as u64)
            .unwrap();
        assert!(out.error.is_none(), "{sql}");
    }
    let session = cqms.storage.get(QueryId(0)).unwrap().session;
    // All six queries share the session.
    assert_eq!(cqms.storage.queries_in_session(session).len(), 6);

    let window = cqms.render_session(session).unwrap();
    // Time strip.
    assert!(window.contains("02:30 - 02:35"), "{window}");
    // The figure's signature edge labels.
    assert!(window.contains("+watersalinity"), "{window}");
    assert!(
        window.contains("'watertemp.temp < 22' \u{2192} 'watertemp.temp < 10'"),
        "{window}"
    );
    assert!(
        window.contains("'watertemp.temp < 10' \u{2192} 'watertemp.temp < 18'"),
        "{window}"
    );
    // Final edge adds CityLocations and the two loc predicates.
    assert!(window.contains("+citylocations"), "{window}");
    assert!(window.contains("loc_x"), "{window}");
}

/// Figure 3: completions while typing, plus the Similar Queries panel with
/// score / diff / annotation columns.
#[test]
fn figure3_assisted_interaction_full_stack() {
    let (mut cqms, user) = lakes_cqms();
    cqms.config.assoc_min_support = 3;
    // Build history: CityLocations popular overall, but WaterSalinity pairs
    // with WaterTemp (the §2.3 setup).
    for i in 0..8 {
        cqms.run_query(
            user,
            &format!("SELECT city FROM CityLocations WHERE pop > {i}"),
        )
        .unwrap();
    }
    for _ in 0..5 {
        cqms.run_query(
            user,
            "SELECT * FROM WaterSalinity S, WaterTemp T \
             WHERE S.loc_x = T.loc_x AND T.temp < 18",
        )
        .unwrap();
    }
    let annotated = cqms
        .run_query(
            user,
            "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
             WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
        )
        .unwrap();
    // Complex query → the profiler requests an annotation (§2.1).
    assert!(annotated.annotation_requested);
    cqms.annotate(
        user,
        annotated.id,
        "find temp and salinity of Seattle lakes",
        None,
    )
    .unwrap();

    // Completion: with WaterSalinity in FROM, WaterTemp beats CityLocations.
    let suggestions = cqms.complete(user, "SELECT * FROM WaterSalinity, ", 3);
    assert_eq!(suggestions[0].text, "WaterTemp", "{suggestions:?}");

    // Panel: composing the figure's query surfaces the annotated join as the
    // top recommendation, with diff "none" for the exact-match template.
    let rows = cqms
        .recommend(
            user,
            "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
             WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
            3,
        )
        .unwrap();
    assert_eq!(rows[0].diff, "none");
    assert!(rows[0].annotation.contains("Seattle lakes"));
    assert!(rows[0].score_pct > rows[2].score_pct);

    let panel = cqms::engine::viz::render_panel(&rows);
    assert!(panel.contains("Score"), "{panel}");
    assert!(panel.contains("%]"), "{panel}");
}

/// §2.2 query-by-data on real output summaries: "all queries whose output
/// includes Lake Washington but not Lake Union … all matching queries
/// specify temp < 18".
#[test]
fn query_by_data_full_stack() {
    let (mut cqms, user) = lakes_cqms();
    // Force full output summaries for determinism.
    cqms.config.full_output_max_rows = 10_000;
    cqms.config.full_output_min_rows = 10_000;
    cqms.run_query(user, "SELECT DISTINCT lake FROM WaterTemp WHERE temp < 18")
        .unwrap();
    cqms.run_query(user, "SELECT DISTINCT lake FROM WaterTemp WHERE temp < 25")
        .unwrap();
    cqms.run_query(user, "SELECT DISTINCT lake FROM WaterTemp WHERE temp > 19")
        .unwrap();

    let hits = cqms.search_by_data(user, &["Lake Washington"], &["Lake Union"], false);
    assert!(!hits.is_empty());
    for id in &hits {
        let sql = &cqms.storage.get(*id).unwrap().raw_sql;
        assert!(sql.contains("temp < 18"), "unexpected match: {sql}");
    }
}

/// §4.1 adaptive output summarisation across the profiler, on the paper's
/// two anchor points (scaled to trace time).
#[test]
fn adaptive_summarisation_full_stack() {
    let (mut cqms, user) = lakes_cqms();
    cqms.config.full_output_min_rows = 5;
    cqms.config.full_output_rows_per_ms = 1.0;
    cqms.config.output_sample_size = 8;
    // Tiny result → stored fully regardless of speed.
    let small = cqms
        .run_query(user, "SELECT DISTINCT lake FROM WaterTemp")
        .unwrap();
    assert!(matches!(
        cqms.storage.get(small.id).unwrap().summary,
        OutputSummary::Full { .. }
    ));
    // Big result from a fast query → sampled.
    let big = cqms.run_query(user, "SELECT * FROM WaterTemp").unwrap();
    match &cqms.storage.get(big.id).unwrap().summary {
        OutputSummary::Sample {
            rows, total_rows, ..
        } => {
            assert_eq!(rows.len(), 8);
            assert_eq!(*total_rows, 200);
        }
        other => panic!("expected sample, got {other:?}"),
    }
}
