//! End-to-end integration: full generated traces replayed through the CQMS
//! across all three domains, exercising every Figure 4 component together.

use cqms::engine::model::{QueryId, UserId};
use cqms::engine::similarity::DistanceKind;
use cqms::engine::{Cqms, CqmsConfig};
use workload::{Domain, Trace, TraceConfig};

fn replay(domain: Domain, sessions: u32) -> (Cqms, Trace, Vec<UserId>) {
    let trace = Trace::generate(
        TraceConfig::new(domain)
            .with_sessions(sessions)
            .with_users(4)
            .with_scale(150),
    );
    let engine = trace.build_engine();
    let mut cqms = Cqms::new(engine, CqmsConfig::default());
    let users: Vec<UserId> = (0..4)
        .map(|i| cqms.register_user(&format!("user-{i}")))
        .collect();
    for q in &trace.queries {
        let user = users[q.user as usize % users.len()];
        let out = cqms
            .run_query_at(user, &q.sql, q.ts)
            .expect("profiling never hard-fails");
        assert!(
            out.error.is_none(),
            "generated query failed: {}\n{:?}",
            q.sql,
            out.error
        );
    }
    (cqms, trace, users)
}

#[test]
fn all_domains_replay_cleanly() {
    for domain in Domain::all() {
        let (cqms, trace, _) = replay(domain, 10);
        assert_eq!(cqms.storage.live_count(), trace.queries.len());
        // Every record carries runtime features.
        for r in cqms.storage.iter_live() {
            assert!(r.runtime.success);
            assert!(!r.runtime.plan.is_empty());
        }
    }
}

#[test]
fn online_sessions_approximate_ground_truth() {
    let (cqms, trace, users) = replay(Domain::Lakes, 25);
    // Build the per-user orderings and truth map.
    let mut order: std::collections::HashMap<UserId, Vec<QueryId>> = Default::default();
    let mut truth: std::collections::HashMap<QueryId, u64> = Default::default();
    for (i, q) in trace.queries.iter().enumerate() {
        let id = QueryId(i as u64);
        let user = users[q.user as usize % users.len()];
        order.entry(user).or_default().push(id);
        truth.insert(id, q.session as u64);
    }
    let order: Vec<(UserId, Vec<QueryId>)> = order.into_iter().collect();
    let predicted: std::collections::HashMap<QueryId, cqms::engine::model::SessionId> =
        cqms.storage.iter().map(|r| (r.id, r.session)).collect();
    let q = cqms::engine::miner::sessions::segmentation_quality(&order, &truth, &predicted);
    assert!(q.boundary_f1 > 0.85, "online segmentation too weak: {q:?}");
    assert!(q.pairwise_f1 > 0.8, "{q:?}");
}

#[test]
fn miner_rediscovers_planted_rules() {
    let (mut cqms, trace, _) = replay(Domain::Lakes, 40);
    cqms.run_miner_epoch();
    for planted in &trace.rules {
        let found = cqms.association_rules().iter().any(|r| {
            r.antecedent == vec![planted.antecedent.clone()] && r.consequent == planted.consequent
        });
        assert!(
            found,
            "planted rule {} => {} not mined",
            planted.antecedent, planted.consequent
        );
        // Mined confidence should be near the planted probability.
        let rule = cqms
            .association_rules()
            .iter()
            .find(|r| {
                r.antecedent == vec![planted.antecedent.clone()]
                    && r.consequent == planted.consequent
            })
            .unwrap();
        assert!(
            (rule.confidence - planted.probability).abs() < 0.25,
            "confidence {} far from planted {}",
            rule.confidence,
            planted.probability
        );
    }
}

#[test]
fn clustering_recovers_topics() {
    let (mut cqms, trace, _) = replay(Domain::Lakes, 30);
    cqms.config.cluster_k = Domain::Lakes.topics().len();
    cqms.run_miner_epoch();
    let (ids, clustering) = cqms.clustering().expect("clustering ran");
    let truth: Vec<u64> = ids
        .iter()
        .map(|id| trace.queries[id.0 as usize].topic as u64)
        .collect();
    let purity = cqms::engine::miner::cluster::purity(&clustering.assignment, &truth);
    // The lakes topics intentionally share tables (CityLocations appears in
    // two topics, WaterTemp in two), which bounds achievable purity below 1.
    assert!(purity > 0.7, "cluster purity too low: {purity}");
    let ari = cqms::engine::miner::cluster::adjusted_rand_index(&clustering.assignment, &truth);
    assert!(ari > 0.3, "ARI too low: {ari}");
}

#[test]
fn search_modes_agree_on_an_easy_target() {
    let (cqms, _, users) = replay(Domain::Lakes, 20);
    let u = users[0];
    // Find queries mentioning WaterSalinity through four different paths.
    let kw: std::collections::HashSet<u64> = cqms
        .search_keyword(u, "watersalinity", 500)
        .into_iter()
        .map(|h| h.id.0)
        .collect();
    let sub: std::collections::HashSet<u64> = cqms
        .search_substring(u, "WaterSalinity")
        .into_iter()
        .map(|id| id.0)
        .collect();
    let tree: std::collections::HashSet<u64> = cqms
        .search_parse_tree(
            u,
            &cqms::engine::metaquery::TreePattern {
                tables_all: vec!["watersalinity".into()],
                ..Default::default()
            },
        )
        .into_iter()
        .map(|id| id.0)
        .collect();
    let feat: std::collections::HashSet<u64> = cqms
        .search_feature_sql(
            u,
            "SELECT qid FROM DataSources WHERE relName = 'WaterSalinity'",
        )
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap() as u64)
        .collect();
    assert!(!tree.is_empty());
    // Tree and feature search are definitionally identical.
    assert_eq!(tree, feat);
    // Substring finds at least those (plus possible textual mentions).
    assert!(tree.is_subset(&sub));
    // Keyword search (tokenised) covers them too.
    assert!(tree.is_subset(&kw));
}

#[test]
fn knn_metrics_all_return_and_agree_on_self_similarity() {
    let (cqms, trace, users) = replay(Domain::Lakes, 15);
    let u = users[0];
    let probe = &trace.queries[0].sql;
    for metric in [
        DistanceKind::Features,
        DistanceKind::ParseTree,
        DistanceKind::Output,
        DistanceKind::Combined,
    ] {
        let hits = cqms.similar_queries(u, probe, 5, metric).unwrap();
        assert!(!hits.is_empty(), "{metric:?} returned nothing");
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score, "{metric:?} not sorted");
        }
    }
    // The identical SQL is a perfect feature/tree match.
    let hits = cqms
        .similar_queries(u, probe, 1, DistanceKind::ParseTree)
        .unwrap();
    assert!(hits[0].score > 0.999, "{}", hits[0].score);
}

#[test]
fn recommendation_panel_well_formed_across_domains() {
    for domain in Domain::all() {
        let (cqms, trace, users) = replay(domain, 12);
        let seed_sql = &trace.queries[trace.queries.len() / 2].sql;
        let rows = cqms.recommend(users[0], seed_sql, 5).unwrap();
        assert!(!rows.is_empty(), "{domain:?}: no recommendations");
        for w in rows.windows(2) {
            assert!(w[0].score_pct >= w[1].score_pct);
        }
        for r in &rows {
            assert!(r.score_pct <= 100);
            assert!(!r.sql.is_empty());
            assert!(!r.diff.is_empty());
        }
    }
}

#[test]
fn snapshot_roundtrip_preserves_search() {
    let (cqms, _, _) = replay(Domain::WebLog, 10);
    let mut buf = Vec::new();
    cqms.storage.snapshot(&mut buf).unwrap();
    let restored = cqms::engine::storage::QueryStorage::load(&buf[..]).unwrap();
    assert_eq!(restored.len(), cqms.storage.len());
    // Text search works identically on the restored storage.
    let before = cqms.storage.trigram_index().search("PageViews");
    let after = restored.trigram_index().search("PageViews");
    assert_eq!(before, after);
}

#[test]
fn tutorial_generated_for_every_domain() {
    for domain in Domain::all() {
        let (mut cqms, _, _) = replay(domain, 8);
        cqms.run_miner_epoch();
        let text = cqms.tutorial(2);
        assert!(text.contains("# Dataset tutorial"));
        for topic in domain.topics() {
            for table in topic.tables.iter().take(1) {
                assert!(
                    text.contains(&format!("`{table}`")),
                    "{domain:?} tutorial missing {table}"
                );
            }
        }
    }
}
