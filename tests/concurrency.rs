//! Concurrency stress tests for the service layer: N writer + M reader
//! threads over one `CqmsService`, checked for *determinism* against a
//! single-threaded replay of the same trace.
//!
//! Writer threads ingest disjoint per-user partitions of a generated trace
//! (`Trace::replay_concurrent`), so whatever way the OS interleaves them,
//! the per-user ingestion order — the thing online session assignment and
//! the popularity table depend on — is fixed. The final state must match a
//! sequential replay on every order-independent axis: query count, live
//! count, the full template-popularity table, and the exact multiset of
//! logged SQL (no lost records).

use cqms::engine::model::UserId;
use cqms::engine::service::{CqmsService, IngestItem};
use cqms::engine::{Cqms, CqmsConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use workload::{Domain, Trace, TraceConfig};

const USERS: u32 = 6;

fn test_trace() -> Trace {
    Trace::generate(
        TraceConfig::new(Domain::Lakes)
            .with_sessions(30)
            .with_users(USERS)
            .with_scale(120),
    )
}

/// Order-independent fingerprint of a CQMS's final state.
#[derive(Debug, PartialEq)]
struct StateDigest {
    total: usize,
    live: usize,
    popularity: Vec<(u64, u32)>,
    /// Per-user live query counts.
    per_user: BTreeMap<u32, usize>,
    /// Sorted multiset of logged SQL.
    sqls: Vec<String>,
}

fn digest(cqms: &Cqms) -> StateDigest {
    let mut per_user = BTreeMap::new();
    let mut sqls = Vec::new();
    for r in cqms.storage.iter() {
        *per_user.entry(r.user.0).or_insert(0) += 1;
        sqls.push(r.raw_sql.clone());
    }
    sqls.sort();
    StateDigest {
        total: cqms.storage.len(),
        live: cqms.storage.live_count(),
        popularity: cqms.storage.template_histogram(),
        per_user,
        sqls,
    }
}

/// Replay the whole trace on one thread — the ground truth.
fn sequential_digest(trace: &Trace) -> StateDigest {
    let mut cqms = Cqms::new(trace.build_engine(), CqmsConfig::default());
    let users: Vec<UserId> = (0..USERS)
        .map(|i| cqms.register_user(&format!("user-{i}")))
        .collect();
    for q in &trace.queries {
        cqms.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
            .expect("profiling never hard-fails");
    }
    digest(&cqms)
}

/// Replay the trace through `writers` concurrent ingest threads while
/// `readers` threads hammer the read path, then digest the final state.
fn concurrent_digest(trace: &Trace, writers: usize, readers: usize) -> StateDigest {
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let users: Vec<UserId> = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();

    let done = AtomicBool::new(false);
    let read_ops = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Readers: exercise completion + every search mode during the
        // writes; they must never panic, never observe torn state, and
        // their results must stay well-formed.
        for r in 0..readers {
            let svc = svc.clone();
            let user = users[r % users.len()];
            let done = &done;
            let read_ops = &read_ops;
            s.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    match i % 4 {
                        0 => {
                            let hits = svc.search_keyword(user, "watertemp", 5);
                            assert!(hits.len() <= 5);
                        }
                        1 => {
                            let sugg = svc.complete(user, "SELECT * FROM ", 5);
                            assert!(sugg.len() <= 5);
                        }
                        2 => {
                            let live_before = svc.live_count();
                            let live_after = svc.live_count();
                            assert!(live_after >= live_before, "live count went backwards");
                        }
                        _ => {
                            let res = svc
                                .search_feature_sql(user, "SELECT qid FROM Queries")
                                .expect("meta-query read path failed");
                            assert_eq!(res.rows.len() as u64, res.metrics.cardinality);
                        }
                    }
                    read_ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Writers: deterministic per-thread schedule over the trace.
        let counts = trace.replay_concurrent(writers, |_thread, q| {
            svc.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
                .expect("profiling never hard-fails");
        });
        assert_eq!(counts.iter().sum::<usize>(), trace.queries.len());
        done.store(true, Ordering::Relaxed);
    });
    assert!(read_ops.load(Ordering::Relaxed) > 0, "readers never ran");

    svc.read(digest)
}

#[test]
fn concurrent_replay_matches_single_threaded() {
    let trace = test_trace();
    let expected = sequential_digest(&trace);
    assert_eq!(expected.total, trace.queries.len(), "seed trace ingested");

    // Two independent concurrent runs: both must land on the sequential
    // state — determinism, not just absence of crashes.
    for run in 0..2 {
        let got = concurrent_digest(&trace, 4, 2);
        assert_eq!(
            got.total, expected.total,
            "run {run}: lost or duplicated records"
        );
        assert_eq!(got.live, expected.live, "run {run}: live count diverged");
        assert_eq!(
            got.popularity, expected.popularity,
            "run {run}: popularity table diverged"
        );
        assert_eq!(
            got.per_user, expected.per_user,
            "run {run}: per-user counts diverged"
        );
        assert_eq!(got.sqls, expected.sqls, "run {run}: logged SQL diverged");
    }
}

#[test]
fn many_writers_few_readers_and_vice_versa() {
    let trace = test_trace();
    let expected = sequential_digest(&trace);
    let writer_heavy = concurrent_digest(&trace, 8, 1);
    assert_eq!(writer_heavy, expected);
    let reader_heavy = concurrent_digest(&trace, 2, 6);
    assert_eq!(reader_heavy, expected);
}

#[test]
fn batched_ingestion_reaches_the_same_state() {
    let trace = test_trace();
    let expected = sequential_digest(&trace);

    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let users: Vec<UserId> = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();
    // Ingest in batches of 16 (one write-lock acquisition each).
    for chunk in trace.queries.chunks(16) {
        let batch: Vec<IngestItem> = chunk
            .iter()
            .map(|q| IngestItem::at(users[q.user as usize % users.len()], q.sql.clone(), q.ts))
            .collect();
        let results = svc.ingest_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()));
    }
    assert_eq!(svc.read(digest), expected);
}

#[test]
fn miner_survives_a_client_panicking_under_the_write_lock() {
    let trace = test_trace();
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let user = svc.register_user("survivor");
    for i in 0..6 {
        svc.run_query(
            user,
            &format!(
                "SELECT * FROM WaterSalinity S, WaterTemp T \
                 WHERE S.loc_x = T.loc_x AND T.temp < {i}"
            ),
        )
        .unwrap();
    }

    // A client dies mid-write while holding the lock. The locks follow
    // parking_lot semantics (no poisoning), so the service — and a miner
    // started afterwards — must keep working. Silence the expected panic's
    // default backtrace to keep test output readable.
    let shared = svc.shared();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = shared.write();
        panic!("client died mid-write");
    }));
    std::panic::set_hook(prev_hook);
    assert!(result.is_err(), "the simulated crash must have panicked");

    // Reads, writes and mining all still work on the "poisoned" lock.
    assert_eq!(svc.live_count(), 6);
    svc.run_query(user, "SELECT * FROM Lakes").unwrap();
    assert!(svc.start_miner(std::time::Duration::from_millis(5)));
    std::thread::sleep(std::time::Duration::from_millis(40));
    let epochs = svc.shutdown().expect("miner was running");
    assert!(epochs >= 1, "miner made no progress after the panic");
    assert!(!svc.association_rules().is_empty());
}

#[test]
fn shutdown_while_caller_holds_a_guard_does_not_deadlock() {
    let trace = test_trace();
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let user = svc.register_user("u");
    svc.run_query(user, "SELECT * FROM WaterTemp WHERE temp < 18")
        .unwrap();
    assert!(svc.start_miner(std::time::Duration::from_secs(3600)));
    // Stopping while this thread holds a read guard: the miner's final
    // epoch needs the write lock, which can never be granted — shutdown
    // must give up on the epoch and return instead of deadlocking.
    let shared = svc.shared();
    let guard = shared.read();
    let epochs = svc.shutdown().expect("miner was running");
    drop(guard);
    assert_eq!(epochs, 0, "final epoch must be skipped, not deadlock");

    // Same hazard on the *periodic* path: with a short interval the miner
    // is mid-epoch-retry (not parked on the stop channel) when we stop it
    // while holding a guard. The bounded try-write must let it observe the
    // stop signal and exit rather than wait on the lock forever.
    let guard = shared.read();
    assert!(svc.start_miner(std::time::Duration::from_millis(5)));
    std::thread::sleep(std::time::Duration::from_millis(30));
    let epochs = svc.shutdown().expect("miner was running");
    drop(guard);
    assert_eq!(epochs, 0, "no epoch can run under a held guard");
}

#[test]
fn dropping_the_miner_handle_joins_and_runs_a_final_epoch() {
    use cqms::engine::server::spawn_background_miner;
    use parking_lot::RwLock;
    use std::sync::Arc;

    let trace = test_trace();
    let shared = Arc::new(RwLock::new(Cqms::new(
        trace.build_engine(),
        CqmsConfig::default(),
    )));
    {
        let mut guard = shared.write();
        let u = guard.register_user("u");
        for i in 0..6 {
            guard
                .run_query(
                    u,
                    &format!(
                        "SELECT * FROM WaterSalinity S, WaterTemp T \
                         WHERE S.loc_x = T.loc_x AND T.temp < {i}"
                    ),
                )
                .unwrap();
        }
    }
    {
        // Interval far beyond the test: only the shutdown epoch can run.
        let _miner = spawn_background_miner(shared.clone(), std::time::Duration::from_secs(3600));
        // Dropping the handle here must join the thread (not detach it)...
    }
    // ...and the final epoch's results must be visible immediately.
    assert!(!shared.read().association_rules().is_empty());
}

#[test]
fn background_miner_shutdown_after_concurrent_ingest() {
    let trace = test_trace();
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let users: Vec<UserId> = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();
    // Long interval: only the final shutdown epoch can run, so whatever
    // rules are visible afterwards were mined by it — over queries that
    // were ingested concurrently while the miner thread was alive.
    assert!(svc.start_miner(std::time::Duration::from_secs(3600)));
    trace.replay_concurrent(4, |_t, q| {
        svc.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
            .expect("profiling never hard-fails");
    });
    let epochs = svc.shutdown().expect("miner was running");
    assert!(epochs >= 1);
    assert!(
        !svc.association_rules().is_empty(),
        "final epoch results not visible"
    );
}

/// Readers racing a background generation rebuild: TreeEdit/ParseTree
/// kNN probes run continuously while one thread forces double-buffered
/// rebuilds (build under the read lock, publish under a brief write
/// lock) and a writer keeps ingesting. Probes must never panic, never
/// return more than k hits, and never observe a torn generation; after
/// the dust settles, the registry-served top-k must equal brute force
/// and the generation counter must have advanced monotonically.
#[test]
fn readers_race_background_rebuilds() {
    use cqms::engine::metaquery::ScoredHit;
    use cqms::engine::similarity::{self, DistanceKind};

    let trace = test_trace();
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let users: Vec<UserId> = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();
    // Seed log + first sealed generation.
    for q in trace.queries.iter().take(120) {
        svc.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
            .expect("profiling never hard-fails");
    }
    svc.write(|c| c.storage.schedule_index_rebuild());
    assert!(svc.rebuild_indexes());
    let gen0 = svc.index_generation();
    assert!(gen0 >= 1);

    const PROBE: &str = "SELECT * FROM WaterTemp WHERE temp < 18";
    let done = AtomicBool::new(false);
    let probes = AtomicUsize::new(0);
    let rebuilds = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Readers: tree-metric kNN, the paths that used to pay the
        // stop-the-world lazy build.
        for r in 0..3usize {
            let svc = svc.clone();
            let user = users[r % users.len()];
            let (done, probes) = (&done, &probes);
            s.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let metric = if i.is_multiple_of(2) {
                        DistanceKind::TreeEdit
                    } else {
                        DistanceKind::ParseTree
                    };
                    let hits = svc
                        .similar_queries(user, PROBE, 5, metric)
                        .expect("probe failed mid-rebuild");
                    assert!(hits.len() <= 5);
                    probes.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // Rebuilder: force + publish generations as fast as it can.
        {
            let svc = svc.clone();
            let (done, rebuilds) = (&done, &rebuilds);
            s.spawn(move || {
                let mut last = svc.index_generation();
                while !done.load(Ordering::Relaxed) {
                    svc.write(|c| c.storage.schedule_index_rebuild());
                    if svc.rebuild_indexes() {
                        rebuilds.fetch_add(1, Ordering::Relaxed);
                    }
                    let now = svc.index_generation();
                    assert!(now >= last, "generation went backwards");
                    last = now;
                }
            });
        }
        // Writer: the delta the publishes must replay.
        let svc2 = svc.clone();
        let writer_user = users[0];
        let done = &done;
        let queries: Vec<String> = trace
            .queries
            .iter()
            .skip(120)
            .take(150)
            .map(|q| q.sql.clone())
            .collect();
        s.spawn(move || {
            for sql in queries {
                let _ = svc2.run_query(writer_user, &sql);
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    assert!(probes.load(Ordering::Relaxed) > 0, "readers never probed");
    assert!(rebuilds.load(Ordering::Relaxed) > 0, "no rebuild raced");
    assert!(svc.index_generation() > gen0);

    // Steady state: registry-served kNN equals brute force, so every
    // mid-build insert was replayed and every swap was clean.
    svc.read(|c| {
        let probe_stmt = sqlparse::parse(PROBE).unwrap();
        let feats = cqms::engine::features::extract(&probe_stmt, None);
        let probe = cqms::engine::storage::make_record(
            cqms::engine::model::QueryId(u64::MAX),
            users[0],
            0,
            PROBE,
            Some(probe_stmt),
            feats,
            Default::default(),
            cqms::engine::model::OutputSummary::None,
            cqms::engine::model::SessionId(u64::MAX),
            cqms::engine::model::Visibility::Private,
        );
        let psig = c.storage.probe_signature(&probe);
        for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
            let got = c
                .similar_queries(users[0], PROBE, 5, metric)
                .expect("probe");
            let mut want: Vec<ScoredHit> = c
                .storage
                .iter_live()
                .map(|r| ScoredHit {
                    id: r.id,
                    score: 1.0
                        - similarity::distance_with(
                            &probe,
                            &psig,
                            r,
                            c.storage.signature(r.id).unwrap(),
                            metric,
                            &c.config,
                        ),
                })
                .collect();
            want.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then_with(|| a.id.cmp(&b.id))
            });
            want.truncate(5);
            assert_eq!(got, want, "{metric:?} diverged after racing rebuilds");
        }
    });
}

/// The background miner executes scheduled rebuilds: a reindex only
/// *requests* one, probes keep the old generation, and the next epoch
/// (here the final shutdown epoch) publishes exactly one swap.
#[test]
fn miner_epoch_executes_scheduled_rebuild() {
    let trace = test_trace();
    let svc = CqmsService::new(Cqms::new(trace.build_engine(), CqmsConfig::default()));
    let users: Vec<UserId> = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();
    for q in trace.queries.iter().take(40) {
        svc.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
            .expect("profiling never hard-fails");
    }
    let gen0 = svc.index_generation();
    svc.write(|c| {
        c.storage.schedule_index_rebuild();
    });
    assert_eq!(svc.index_generation(), gen0, "scheduling does not rebuild");
    // Long interval: the only epoch is the shutdown epoch.
    assert!(svc.start_miner(std::time::Duration::from_secs(3600)));
    svc.shutdown().expect("miner was running");
    assert_eq!(svc.index_generation(), gen0 + 1, "one swap per rebuild");
    assert!(!svc.read(|c| c.storage.index_rebuild_pending()));
}

// ---------------------------------------------------------------------
// Sharded deployments: writer storms spread over independent shard
// locks, merged reads racing them.
// ---------------------------------------------------------------------

/// Digest a sharded deployment by folding every shard's state — the same
/// order-independent axes `digest` uses for one service.
fn sharded_digest(s: &cqms::engine::ShardedCqms) -> StateDigest {
    let mut per_user = BTreeMap::new();
    let mut sqls = Vec::new();
    let mut popularity: BTreeMap<u64, u32> = BTreeMap::new();
    let mut total = 0usize;
    for shard in s.shards() {
        shard.read(|c| {
            for r in c.storage.iter() {
                *per_user.entry(r.user.0).or_insert(0) += 1;
                sqls.push(r.raw_sql.clone());
            }
            for (fp, n) in c.storage.template_histogram() {
                *popularity.entry(fp).or_insert(0) += n;
            }
            total += c.storage.len();
        });
    }
    sqls.sort();
    StateDigest {
        total,
        live: s.live_count(),
        popularity: popularity.into_iter().collect(),
        per_user,
        sqls,
    }
}

/// An 8-writer storm over a sharded deployment — writers on different
/// shards never contend — with readers hammering the *merged* read path
/// throughout, must land on exactly the single-threaded unsharded state
/// (ids aside: the stripe is the sharded deployment's id space).
///
/// Uses the default config, so CI's `CQMS_SHARDS` lever controls the
/// shard count exercised here.
#[test]
fn sharded_concurrent_replay_matches_single_threaded() {
    use cqms::engine::ShardedCqms;

    let trace = test_trace();
    let expected = sequential_digest(&trace);

    let s = ShardedCqms::new(|| trace.build_engine(), CqmsConfig::default());
    assert!(s.shard_count() >= 1);
    let users: Vec<UserId> = (0..USERS)
        .map(|i| s.register_user(&format!("user-{i}")))
        .collect();

    let done = AtomicBool::new(false);
    let read_ops = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for r in 0..3usize {
            let s = s.clone();
            let user = users[r % users.len()];
            let done = &done;
            let read_ops = &read_ops;
            scope.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    match i % 4 {
                        0 => {
                            let hits = s.search_keyword(user, "watertemp", 5);
                            assert!(hits.len() <= 5);
                            // The merge discipline holds mid-storm:
                            // (score desc, id asc), never torn.
                            for w in hits.windows(2) {
                                assert!(
                                    w[0].score > w[1].score
                                        || (w[0].score == w[1].score && w[0].id < w[1].id),
                                    "merged ordering violated: {hits:?}"
                                );
                            }
                        }
                        1 => {
                            let hits = s
                                .similar_queries(
                                    user,
                                    "SELECT * FROM WaterTemp WHERE temp < 18",
                                    5,
                                    cqms::engine::similarity::DistanceKind::Features,
                                )
                                .expect("merged kNN failed mid-storm");
                            assert!(hits.len() <= 5);
                        }
                        2 => {
                            let live_before = s.live_count();
                            let live_after = s.live_count();
                            assert!(live_after >= live_before, "live count went backwards");
                        }
                        _ => {
                            let res = s
                                .search_feature_sql(user, "SELECT qid FROM Queries")
                                .expect("merged meta-query failed");
                            assert!(res.columns.iter().any(|c| c == "qid"));
                        }
                    }
                    read_ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        let counts = trace.replay_concurrent(8, |_thread, q| {
            s.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
                .expect("profiling never hard-fails");
        });
        assert_eq!(counts.iter().sum::<usize>(), trace.queries.len());
        done.store(true, Ordering::Relaxed);
    });
    assert!(read_ops.load(Ordering::Relaxed) > 0, "readers never ran");

    let got = sharded_digest(&s);
    assert_eq!(got, expected, "sharded storm diverged from sequential");
}

/// Merged kNN racing per-shard generation rebuilds and a writer: the
/// k-way merge must stay exact while every shard is swapping index
/// generations underneath it. Afterwards, the merged registry-served
/// top-k must equal a global brute-force scan — proof that no mid-merge
/// rebuild tore a shard's contribution.
#[test]
fn sharded_readers_race_per_shard_rebuilds() {
    use cqms::engine::metaquery::ScoredHit;
    use cqms::engine::similarity::{self, DistanceKind};
    use cqms::engine::ShardedCqms;

    let trace = test_trace();
    let config = CqmsConfig {
        shards: 4,
        ..CqmsConfig::default()
    };
    let s = ShardedCqms::new(|| trace.build_engine(), config);
    let users: Vec<UserId> = (0..USERS)
        .map(|i| s.register_user(&format!("user-{i}")))
        .collect();
    for q in trace.queries.iter().take(120) {
        s.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts)
            .expect("profiling never hard-fails");
    }
    for shard in s.shards() {
        shard.write(|c| c.storage.schedule_index_rebuild());
    }
    assert_eq!(s.rebuild_indexes(), 4, "every shard sealed a generation");

    const PROBE: &str = "SELECT * FROM WaterTemp WHERE temp < 18";
    let done = AtomicBool::new(false);
    let probes = AtomicUsize::new(0);
    let rebuilds = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for r in 0..3usize {
            let s = s.clone();
            let user = users[r % users.len()];
            let (done, probes) = (&done, &probes);
            scope.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let metric = if i.is_multiple_of(2) {
                        DistanceKind::TreeEdit
                    } else {
                        DistanceKind::ParseTree
                    };
                    let hits = s
                        .similar_queries(user, PROBE, 5, metric)
                        .expect("merged probe failed mid-rebuild");
                    assert!(hits.len() <= 5);
                    probes.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        {
            let s = s.clone();
            let (done, rebuilds) = (&done, &rebuilds);
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    for shard in s.shards() {
                        shard.write(|c| c.storage.schedule_index_rebuild());
                    }
                    rebuilds.fetch_add(s.rebuild_indexes(), Ordering::Relaxed);
                }
            });
        }
        let s2 = s.clone();
        let done = &done;
        let users = &users;
        let queries: Vec<(u32, String)> = trace
            .queries
            .iter()
            .skip(120)
            .take(150)
            .map(|q| (q.user, q.sql.clone()))
            .collect();
        scope.spawn(move || {
            for (u, sql) in queries {
                let _ = s2.run_query(users[u as usize % users.len()], &sql);
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    assert!(probes.load(Ordering::Relaxed) > 0, "readers never probed");
    assert!(rebuilds.load(Ordering::Relaxed) > 0, "no rebuild raced");

    // Exactness after the dust settles: merged top-k == global brute force.
    let viewer = users[0];
    for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
        let got = s.similar_queries(viewer, PROBE, 5, metric).expect("probe");
        let mut want: Vec<ScoredHit> = Vec::new();
        for (i, shard) in s.shards().iter().enumerate() {
            shard.read(|c| {
                let probe_stmt = sqlparse::parse(PROBE).unwrap();
                let feats = cqms::engine::features::extract(&probe_stmt, None);
                let probe = cqms::engine::storage::make_record(
                    cqms::engine::model::QueryId(u64::MAX),
                    viewer,
                    0,
                    PROBE,
                    Some(probe_stmt),
                    feats,
                    Default::default(),
                    cqms::engine::model::OutputSummary::None,
                    cqms::engine::model::SessionId(u64::MAX),
                    cqms::engine::model::Visibility::Private,
                );
                let psig = c.storage.probe_signature(&probe);
                for r in c.storage.iter_live() {
                    want.push(ScoredHit {
                        id: s.globalize(i, r.id),
                        score: 1.0
                            - similarity::distance_with(
                                &probe,
                                &psig,
                                r,
                                c.storage.signature(r.id).unwrap(),
                                metric,
                                &c.config,
                            ),
                    });
                }
            });
        }
        want.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        want.truncate(5);
        assert_eq!(
            got, want,
            "{metric:?} merged kNN diverged after racing rebuilds"
        );
    }
}
