//! Workspace smoke test: the `examples/quickstart.rs` path as a regular
//! `#[test]` — build an engine, log queries through the profiler, then
//! exercise each interaction mode once, including a Figure 1 meta-query.
//! CI runs this on every push; the example itself is only compiled.

use cqms::engine::metaquery::FIGURE1_META_QUERY;
use cqms::engine::model::QueryId;
use cqms::engine::similarity::DistanceKind;
use cqms::engine::{Cqms, CqmsConfig};
use relstore::Engine;
use workload::Domain;

#[test]
fn quickstart_path_end_to_end() {
    // 1. Underlying DBMS with the paper's "lakes" schema.
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 300, 42);

    // 2. CQMS on top, with thresholds low enough for a short demo log.
    let config = CqmsConfig {
        assoc_min_support: 2,
        cluster_k: 2,
        ..CqmsConfig::default()
    };
    let mut cqms = Cqms::new(engine, config);
    let alice = cqms.register_user("alice");

    // 3. Traditional mode: every statement executes and is logged.
    let demo_queries = [
        "SELECT lake, temp FROM WaterTemp WHERE temp < 22",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
         WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
         WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 15",
        "SELECT city FROM CityLocations WHERE pop > 100000",
    ];
    for sql in demo_queries {
        let out = cqms.run_query(alice, sql).expect("query should run");
        assert!(out.result.is_some(), "execution failed for {sql}");
    }
    assert_eq!(cqms.storage.live_count(), demo_queries.len());

    cqms.annotate(
        alice,
        QueryId(2),
        "correlate salinity with temperature across Seattle lakes",
        None,
    )
    .unwrap();

    // 4. Search & browse mode: the annotated join queries are findable.
    let hits = cqms.search_keyword(alice, "salinity", 5);
    assert!(!hits.is_empty(), "keyword search found nothing");

    // The Figure 1 meta-query runs over the feature relations.
    let meta = cqms.search_feature_sql(alice, FIGURE1_META_QUERY).unwrap();
    assert!(
        !meta.columns.is_empty(),
        "meta-query returned no result shape"
    );

    // Session rendering (Figure 2 style) produces a non-empty window.
    let session = cqms.storage.get(QueryId(0)).unwrap().session;
    assert!(!cqms.render_session(session).unwrap().is_empty());

    // 5. Assisted mode: completion respects context, recommendations render.
    let suggestions = cqms.complete(alice, "SELECT * FROM WaterSalinity, ", 3);
    assert!(suggestions.len() <= 3);
    let panel = cqms
        .render_recommendations(alice, "SELECT temp FROM WaterTemp WHERE temp < 20", 3)
        .unwrap();
    assert!(!panel.is_empty());

    // 6. Background components run to completion.
    let miner = cqms.run_miner_epoch();
    assert!(miner.clusters > 0, "miner produced no clusters");
    cqms.run_maintenance().unwrap();

    // 7. kNN similarity meta-query returns ranked neighbours.
    let near = cqms
        .similar_queries(
            alice,
            "SELECT lake FROM WaterTemp WHERE temp < 15",
            2,
            DistanceKind::Combined,
        )
        .unwrap();
    assert!(!near.is_empty(), "no similar queries found");
    for pair in near.windows(2) {
        assert!(pair[0].score >= pair[1].score, "kNN scores not ranked");
    }
}
