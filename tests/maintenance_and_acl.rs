//! Integration tests for the Administrative Interaction Mode (§2.4) and the
//! Query Maintenance component (§4.4) through the full server API, including
//! failure injection.

use cqms::engine::model::*;
use cqms::engine::{Cqms, CqmsConfig, CqmsError};
use relstore::Engine;
use workload::Domain;

fn lakes_cqms() -> Cqms {
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 100, 11);
    Cqms::new(engine, CqmsConfig::default())
}

#[test]
fn group_isolation_spans_every_search_mode() {
    let mut c = lakes_cqms();
    let _admin = c.register_user("admin");
    let alice = c.register_user("alice");
    let eve = c.register_user("eve");
    let lab = c.create_group("lab");
    c.join_group(alice, lab).unwrap();

    let out = c
        .run_query(
            alice,
            "SELECT salinity FROM WaterSalinity WHERE salinity > 0.4",
        )
        .unwrap();
    let id = out.id;

    // Keyword, substring, tree, feature-SQL, by-data, knn: all empty for eve.
    assert!(c.search_keyword(eve, "salinity", 10).is_empty());
    assert!(c.search_substring(eve, "salinity > 0.4").is_empty());
    let tree = cqms::engine::metaquery::TreePattern {
        tables_all: vec!["watersalinity".into()],
        ..Default::default()
    };
    assert!(c.search_parse_tree(eve, &tree).is_empty());
    let feat = c
        .search_feature_sql(eve, "SELECT qid FROM Queries")
        .unwrap();
    assert!(feat.rows.is_empty());
    assert!(c
        .similar_queries(
            eve,
            "SELECT salinity FROM WaterSalinity",
            5,
            cqms::engine::similarity::DistanceKind::Features
        )
        .unwrap()
        .is_empty());
    // But alice sees her query everywhere.
    assert_eq!(c.search_substring(alice, "salinity > 0.4"), vec![id]);

    // Eve cannot tamper.
    assert!(matches!(
        c.set_visibility(eve, id, Visibility::Public),
        Err(CqmsError::NotAuthorized { .. })
    ));
    assert!(matches!(
        c.delete_query(eve, id),
        Err(CqmsError::NotAuthorized { .. })
    ));
    assert!(c.annotate(eve, id, "x", None).is_err());
}

#[test]
fn deletion_is_global_and_idempotent() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    let out = c.run_query(u, "SELECT * FROM Lakes").unwrap();
    c.delete_query(u, out.id).unwrap();
    assert!(c.search_keyword(u, "lakes", 10).is_empty());
    assert_eq!(c.storage.live_count(), 0);
    // Deleting again is fine (tombstone stays).
    c.delete_query(u, out.id).unwrap();
    // And the id still resolves for audit.
    assert_eq!(c.storage.get(out.id).unwrap().validity, Validity::Deleted);
}

#[test]
fn chained_schema_evolution_repairs_transitively() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    let out = c
        .run_query(u, "SELECT temp FROM WaterTemp WHERE temp < 18")
        .unwrap();
    // Rename the column, then the table.
    c.data
        .execute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
        .unwrap();
    c.data
        .execute("ALTER TABLE WaterTemp RENAME TO LakeTemperatures")
        .unwrap();
    let (schema, _) = c.run_maintenance().unwrap();
    assert_eq!(schema.repaired, vec![out.id]);
    let repaired = c.storage.get(out.id).unwrap().raw_sql.clone();
    assert!(repaired.contains("LakeTemperatures"), "{repaired}");
    assert!(repaired.contains("temperature"), "{repaired}");
    // The repaired query executes.
    assert!(c.data.execute(&repaired).is_ok());
    // Original text preserved for audit.
    match &c.storage.get(out.id).unwrap().validity {
        Validity::Repaired { original_sql, .. } => {
            assert!(original_sql.contains("WaterTemp"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn obsolete_queries_leave_search_results() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    c.run_query(u, "SELECT * FROM Lakes WHERE area > 100")
        .unwrap();
    assert_eq!(c.search_keyword(u, "lakes", 10).len(), 1);
    c.data.execute("DROP TABLE Lakes").unwrap();
    let (schema, _) = c.run_maintenance().unwrap();
    assert_eq!(schema.obsolete.len(), 1);
    // Obsolete queries no longer surface in recommendations or search.
    assert!(c
        .similar_queries(
            u,
            "SELECT * FROM Lakes",
            5,
            cqms::engine::similarity::DistanceKind::Features
        )
        .unwrap()
        .is_empty());
}

#[test]
fn flagged_query_recovers_after_schema_restored() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    let out = c.run_query(u, "SELECT month FROM WaterTemp").unwrap();
    c.data
        .execute("ALTER TABLE WaterTemp DROP COLUMN month")
        .unwrap();
    let (schema, _) = c.run_maintenance().unwrap();
    assert_eq!(schema.flagged, vec![out.id]);
    // Admin restores the column; the next scan does not re-flag, and
    // re-execution works again.
    c.data
        .execute("ALTER TABLE WaterTemp ADD COLUMN month INT")
        .unwrap();
    let sql = c.storage.get(out.id).unwrap().raw_sql.clone();
    assert!(c.data.execute(&sql).is_ok());
}

#[test]
fn failed_and_unparseable_queries_are_quarantined_but_logged() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    let bad = c.run_query(u, "SELECT * FROM NoSuchTable").unwrap();
    assert!(bad.error.is_some());
    let garbage = c.run_query(u, "SELEC FROM nonsense !!!").unwrap();
    assert!(garbage.result.is_none());
    let ok = c.run_query(u, "SELECT * FROM Lakes").unwrap();
    assert!(ok.error.is_none());
    assert_eq!(c.storage.len(), 3);
    // Failed queries don't crash mining or maintenance.
    c.run_miner_epoch();
    c.run_maintenance().unwrap();
    // Quality reflects failure.
    let qb = c.storage.get(bad.id).unwrap().quality;
    let qo = c.storage.get(ok.id).unwrap().quality;
    assert!(qo > qb);
}

#[test]
fn refresh_policy_beats_naive_on_cost() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    for i in 0..10 {
        c.run_query(
            u,
            &format!("SELECT * FROM WaterTemp WHERE temp < {}", 10 + i),
        )
        .unwrap();
        c.run_query(u, &format!("SELECT * FROM Lakes WHERE area > {}", 100 * i))
            .unwrap();
    }
    // Baseline epoch.
    c.run_maintenance().unwrap();
    // Drift only WaterTemp.
    c.data
        .execute("UPDATE WaterTemp SET temp = temp + 500")
        .unwrap();
    let (_, refresh) = c.run_maintenance().unwrap();
    assert_eq!(refresh.drifted_tables, vec!["watertemp"]);
    // Drift-triggered refresh re-ran only the WaterTemp queries.
    assert_eq!(refresh.refreshed.len(), 10);
    assert_eq!(refresh.naive_rerun_count, 20);
}

#[test]
fn empty_log_operations_are_safe() {
    let mut c = lakes_cqms();
    let u = c.register_user("u");
    assert!(c.search_keyword(u, "anything", 5).is_empty());
    assert!(c.search_substring(u, "anything").is_empty());
    assert!(c.recommend(u, "SELECT * FROM Lakes", 5).unwrap().is_empty());
    let report = c.run_miner_epoch();
    assert_eq!(report.association_rules, 0);
    let (schema, refresh) = c.run_maintenance().unwrap();
    assert_eq!(schema.examined, 0);
    assert!(refresh.refreshed.is_empty());
    // Completion falls back to the catalog.
    let sugg = c.complete(u, "SELECT * FROM ", 5);
    assert!(!sugg.is_empty());
}
