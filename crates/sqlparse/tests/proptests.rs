//! Property-based tests for the SQL frontend.
//!
//! The central invariant is `parse(print(ast)) == ast` over a generated AST
//! space covering the full dialect. On top of that we check that the
//! canonicalisation passes are idempotent and produce fingerprints invariant
//! under the transformations they claim to erase (case, aliases, constants).

use proptest::prelude::*;
use sqlparse::ast::*;
use sqlparse::{
    canonicalize, diff_selects, parse_statement, strip_constants, structure_fingerprint,
    template_fingerprint, to_sql,
};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn ident_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords by prefixing; printer quotes keywords anyway, but a
    // plain identifier exercises the common path.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("id_{s}"))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i as i64)),
        // Finite floats with a fraction; printer/parser roundtrip exactness
        // is exercised via the canonical printed form.
        (-1000i32..1000i32).prop_map(|i| Literal::Float(i as f64 / 8.0)),
        "[a-zA-Z ']{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
        Just(Literal::Placeholder),
    ]
}

fn comparison_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
    ]
}

fn arith_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Concat),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    (ident_strategy(), proptest::option::of(ident_strategy()))
        .prop_map(|(name, q)| Expr::Column(ColumnRef { qualifier: q, name }))
}

/// Scalar expression generator (no subqueries — those are added at the
/// predicate level to keep sizes bounded).
fn scalar_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        column_strategy(),
        literal_strategy().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), arith_op(), inner.clone())
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            (inner.clone(), comparison_op(), inner.clone())
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            // Neg only wraps columns: the parser canonically folds
            // `-<literal>` into a negative literal, so Neg(Literal) is not a
            // parse-reachable (and thus not a print-canonical) form.
            column_strategy().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e)
            }),
            (ident_strategy(), proptest::collection::vec(inner, 0..3)).prop_map(|(name, args)| {
                Expr::Function {
                    name: format!("f{name}"),
                    args,
                    distinct: false,
                    star: false,
                }
            }),
        ]
    })
    .boxed()
}

/// Boolean predicate generator, including postfix predicates.
fn predicate_strategy(allow_subquery: bool) -> BoxedStrategy<Expr> {
    let base = (scalar_expr(1), comparison_op(), scalar_expr(1))
        .prop_map(|(l, op, r)| Expr::binary(l, op, r));
    let postfix = prop_oneof![
        (
            column_strategy(),
            proptest::collection::vec(literal_strategy().prop_map(Expr::Literal), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, list, negated)| Expr::InList {
                expr: Box::new(c),
                list,
                negated
            }),
        (
            column_strategy(),
            literal_strategy(),
            literal_strategy(),
            any::<bool>()
        )
            .prop_map(|(c, lo, hi, negated)| Expr::Between {
                expr: Box::new(c),
                low: Box::new(Expr::Literal(lo)),
                high: Box::new(Expr::Literal(hi)),
                negated
            }),
        (column_strategy(), "[a-z%_]{1,8}", any::<bool>()).prop_map(|(c, pat, negated)| {
            Expr::Like {
                expr: Box::new(c),
                pattern: Box::new(Expr::str(pat)),
                negated,
            }
        }),
        (column_strategy(), any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
            expr: Box::new(c),
            negated
        }),
    ];
    let leaf = prop_oneof![base, postfix];
    let with_sub = if allow_subquery {
        prop_oneof![
            leaf.clone(),
            (column_strategy(), simple_select(), any::<bool>()).prop_map(|(c, sub, negated)| {
                Expr::InSubquery {
                    expr: Box::new(c),
                    subquery: Box::new(sub),
                    negated,
                }
            }),
            // `NOT EXISTS` parses canonically as Unary(Not, Exists), so the
            // generator leaves `negated` false and relies on the NOT wrapper.
            simple_select().prop_map(|sub| Expr::Exists {
                subquery: Box::new(sub),
                negated: false
            }),
        ]
        .boxed()
    } else {
        leaf.boxed()
    };
    with_sub
        .prop_recursive(2, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
                inner.prop_map(|e| Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(e)
                }),
            ]
        })
        .boxed()
}

/// A subquery-free SELECT used inside IN/EXISTS.
fn simple_select() -> BoxedStrategy<SelectStatement> {
    (
        ident_strategy(),
        ident_strategy(),
        proptest::option::of(predicate_strategy(false)),
    )
        .prop_map(|(col, table, wh)| SelectStatement {
            projection: vec![SelectItem::Expr {
                expr: Expr::col(col),
                alias: None,
            }],
            from: vec![TableRef::named(table)],
            where_clause: wh,
            ..Default::default()
        })
        .boxed()
}

fn table_ref_strategy() -> impl Strategy<Value = TableRef> {
    (
        ident_strategy(),
        proptest::option::of(ident_strategy()),
        proptest::collection::vec(
            (
                prop_oneof![
                    Just(JoinKind::Inner),
                    Just(JoinKind::LeftOuter),
                    Just(JoinKind::RightOuter),
                    Just(JoinKind::FullOuter),
                ],
                ident_strategy(),
                proptest::option::of(ident_strategy()),
                predicate_strategy(false),
            ),
            0..2,
        ),
    )
        .prop_map(|(name, alias, joins)| TableRef {
            name,
            alias,
            joins: joins
                .into_iter()
                .map(|(kind, table, alias, on)| JoinClause {
                    kind,
                    table,
                    alias,
                    on: Some(on),
                })
                .collect(),
        })
}

fn select_item_strategy() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Wildcard),
        ident_strategy().prop_map(SelectItem::QualifiedWildcard),
        (scalar_expr(2), proptest::option::of(ident_strategy()))
            .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
    ]
}

prop_compose! {
    fn select_strategy()(
        distinct in any::<bool>(),
        projection in proptest::collection::vec(select_item_strategy(), 1..4),
        from in proptest::collection::vec(table_ref_strategy(), 1..3),
        wh in proptest::option::of(predicate_strategy(true)),
        group_by in proptest::collection::vec(column_strategy(), 0..3),
        having in proptest::option::of(predicate_strategy(false)),
        order_by in proptest::collection::vec(
            (column_strategy(), any::<bool>()).prop_map(|(expr, desc)| OrderByItem { expr, desc }),
            0..3
        ),
        limit in proptest::option::of(0u64..10_000),
        offset in proptest::option::of(0u64..1_000),
    ) -> SelectStatement {
        SelectStatement {
            distinct,
            projection,
            from,
            where_clause: wh,
            group_by,
            having,
            order_by,
            limit,
            // OFFSET only prints after LIMIT in our dialect; keep both or none.
            offset: if limit.is_some() { offset } else { None },
        }
    }
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    prop_oneof![
        8 => select_strategy().prop_map(Statement::Select),
        1 => (
            ident_strategy(),
            proptest::collection::vec((ident_strategy(), prop_oneof![
                Just(DataType::Int), Just(DataType::Float), Just(DataType::Text), Just(DataType::Bool)
            ]), 1..5)
        ).prop_map(|(name, columns)| Statement::CreateTable(CreateTableStatement { name, columns })),
        1 => (
            ident_strategy(),
            proptest::collection::vec(ident_strategy(), 0..3),
            proptest::collection::vec(
                proptest::collection::vec(literal_strategy().prop_map(Expr::Literal), 1..4),
                1..3
            )
        ).prop_map(|(table, columns, rows)| {
            // Column list must match row arity when present; normalise.
            let arity = rows[0].len();
            let rows: Vec<Vec<Expr>> = rows.into_iter().map(|mut r| { r.truncate(arity); r }).collect();
            let columns = if columns.len() == arity { columns } else { Vec::new() };
            Statement::Insert(InsertStatement { table, columns, rows })
        }),
        1 => (ident_strategy(), proptest::collection::vec((ident_strategy(), scalar_expr(1)), 1..3),
              proptest::option::of(predicate_strategy(false)))
            .prop_map(|(table, assignments, wh)| Statement::Update(UpdateStatement {
                table, assignments, where_clause: wh })),
        1 => (ident_strategy(), proptest::option::of(predicate_strategy(false)))
            .prop_map(|(table, wh)| Statement::Delete(DeleteStatement { table, where_clause: wh })),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printer's output re-parses to the identical AST.
    #[test]
    fn print_parse_roundtrip(stmt in statement_strategy()) {
        let sql = to_sql(&stmt);
        let reparsed = parse_statement(&sql)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse:\n{sql}\n{e}"));
        prop_assert_eq!(&reparsed, &stmt, "roundtrip mismatch for:\n{}", sql);
    }

    /// Canonicalisation is idempotent.
    #[test]
    fn canonicalize_idempotent(stmt in statement_strategy()) {
        let once = canonicalize(&stmt);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Constant stripping is idempotent.
    #[test]
    fn strip_idempotent(stmt in statement_strategy()) {
        let once = strip_constants(&stmt);
        let twice = strip_constants(&once);
        prop_assert_eq!(once, twice);
    }

    /// The canonical form survives a print/parse cycle (fingerprints are
    /// therefore stable when persisted as text).
    #[test]
    fn canonical_form_stable_through_text(stmt in statement_strategy()) {
        let c = canonicalize(&stmt);
        let sql = to_sql(&c);
        let reparsed = parse_statement(&sql).unwrap();
        prop_assert_eq!(structure_fingerprint(&reparsed), structure_fingerprint(&stmt));
        prop_assert_eq!(template_fingerprint(&reparsed), template_fingerprint(&stmt));
    }

    /// Uppercasing the entire SQL text never changes the structure
    /// fingerprint (identifier case-insensitivity).
    #[test]
    fn fingerprint_case_invariant(stmt in select_strategy()) {
        let sql = to_sql(&Statement::Select(stmt));
        let upper = sql.to_uppercase();
        // Uppercasing can corrupt string literals' content; skip those cases.
        prop_assume!(!sql.contains('\''));
        prop_assume!(!sql.contains('"'));
        let a = parse_statement(&sql).unwrap();
        let b = match parse_statement(&upper) {
            Ok(b) => b,
            Err(_) => return Ok(()), // e.g. an identifier uppercased into a keyword
        };
        prop_assert_eq!(structure_fingerprint(&a), structure_fingerprint(&b));
    }

    /// A query has no edits against itself, and diffs are antisymmetric in
    /// size (|diff(a,b)| == |diff(b,a)|).
    #[test]
    fn diff_reflexive_and_symmetric_size(a in select_strategy(), b in select_strategy()) {
        prop_assert!(diff_selects(&a, &a).is_empty());
        prop_assert_eq!(diff_selects(&a, &b).len(), diff_selects(&b, &a).len());
    }

    /// Lexer never panics on arbitrary input (errors are fine).
    #[test]
    fn lexer_total(input in "\\PC{0,100}") {
        let _ = sqlparse::Lexer::tokenize(&input);
    }

    /// Parser never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_total(input in "\\PC{0,100}") {
        let _ = parse_statement(&input);
    }
}
