//! Stable 64-bit query fingerprints.
//!
//! Two levels, mirroring the two canonicalisation passes:
//!
//! * [`structure_fingerprint`] — hash of the canonicalised statement
//!   (constants included). Two textually different but structurally identical
//!   queries (case, aliases, whitespace) collide *by design*.
//! * [`template_fingerprint`] — hash of the constant-stripped statement; the
//!   identity used for template popularity counts and clustering seeds
//!   (paper §4.3).
//!
//! Hashing is FNV-1a over a canonical serialisation of the AST. FNV is not
//! cryptographic; it is stable across processes and platforms, which is what
//! the Query Storage needs for persisted fingerprints (`std`'s `Hasher` is
//! explicitly not stable across releases).

use crate::ast::*;
use crate::canon::{canonicalize, strip_constants};
use crate::printer::to_sql;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Extend an existing FNV-1a state with more bytes.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the canonicalised statement (constants included).
pub fn structure_fingerprint(stmt: &Statement) -> u64 {
    fnv1a(to_sql(&canonicalize(stmt)).as_bytes())
}

/// Fingerprint of the constant-stripped template.
pub fn template_fingerprint(stmt: &Statement) -> u64 {
    fnv1a(to_sql(&strip_constants(stmt)).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn sfp(sql: &str) -> u64 {
        structure_fingerprint(&parse_statement(sql).unwrap())
    }

    fn tfp(sql: &str) -> u64 {
        template_fingerprint(&parse_statement(sql).unwrap())
    }

    #[test]
    fn structure_fp_ignores_case_and_aliases() {
        assert_eq!(
            sfp("SELECT S.temp FROM WaterTemp S WHERE S.temp < 18"),
            sfp("select w.TEMP from watertemp w where w.temp < 18")
        );
    }

    #[test]
    fn structure_fp_distinguishes_constants() {
        assert_ne!(
            sfp("SELECT * FROM t WHERE a < 18"),
            sfp("SELECT * FROM t WHERE a < 22")
        );
    }

    #[test]
    fn template_fp_ignores_constants() {
        assert_eq!(
            tfp("SELECT * FROM t WHERE a < 18"),
            tfp("SELECT * FROM t WHERE a < 22")
        );
        assert_ne!(
            tfp("SELECT * FROM t WHERE a < 18"),
            tfp("SELECT * FROM t WHERE b < 18")
        );
    }

    #[test]
    fn fnv_reference_values() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_matches_whole() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_extend(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let sql = "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake";
        assert_eq!(sfp(sql), sfp(sql));
        assert_eq!(tfp(sql), tfp(sql));
    }
}
