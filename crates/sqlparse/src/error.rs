//! Parse errors with byte-span positions.
//!
//! Spans are retained so the CQMS client can highlight the offending region
//! and the correction engine (paper §2.3) can anchor its suggestions.

use std::fmt;

/// A half-open byte range `[start, end)` into the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Slice `text` to this span, clamped to the text bounds.
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        let start = self.start.min(text.len());
        let end = self.end.min(text.len());
        &text[start..end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Where in the input the failure occurred.
    pub span: Span,
    /// Token kinds or keywords the parser would have accepted here.
    ///
    /// The CQMS completion engine uses this to offer context-appropriate
    /// suggestions when a partially typed query fails to parse.
    pub expected: Vec<String>,
}

impl ParseError {
    /// Construct an error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            expected: Vec::new(),
        }
    }

    /// Attach the set of inputs the parser would have accepted.
    pub fn with_expected(mut self, expected: Vec<String>) -> Self {
        self.expected = expected;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)?;
        if !self.expected.is_empty() {
            write!(f, " (expected one of: {})", self.expected.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn span_slice_clamps() {
        let s = Span::new(3, 100);
        assert_eq!(s.slice("SELECT"), "ECT");
    }

    #[test]
    fn error_display_includes_expected() {
        let e = ParseError::new("unexpected token", Span::new(0, 1))
            .with_expected(vec!["FROM".into(), "WHERE".into()]);
        let s = e.to_string();
        assert!(s.contains("unexpected token"));
        assert!(s.contains("FROM"));
    }

    #[test]
    fn empty_span() {
        assert!(Span::new(5, 5).is_empty());
        assert!(!Span::new(5, 6).is_empty());
    }
}
