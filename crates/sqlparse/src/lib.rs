//! # sqlparse — SQL frontend substrate for the CQMS
//!
//! A from-scratch SQL lexer, parser, printer and analysis toolkit covering the
//! dialect used throughout *"A Case for A Collaborative Query Management
//! System"* (Khoussainova et al., CIDR 2009): `SELECT` with comma- and
//! explicit joins, nested subqueries (`IN`, `EXISTS`, scalar), aggregates,
//! `GROUP BY` / `HAVING` / `ORDER BY` / `LIMIT`, plus the DDL/DML statements
//! (`CREATE TABLE`, `INSERT`, `UPDATE`, `DELETE`) required by the embedded
//! relational engine underneath the CQMS.
//!
//! Beyond parsing, this crate provides the query-analysis primitives the CQMS
//! paper calls for:
//!
//! * [`canon`] — canonicalisation (case folding, alias normalisation,
//!   constant stripping) so that structurally identical queries compare equal
//!   (paper §4.3: *"parse tree similarity, perhaps after removing the
//!   constants from the tree"*).
//! * [`fingerprint`] — stable 64-bit structure/template hashes.
//! * [`diff`] — a parse-tree differ producing the typed edit operations that
//!   label session-graph edges in the paper's Figure 2 (`+WaterSalinity`,
//!   `'temp < 22' → 'temp < 18'`, …).
//! * [`visit`] — an AST walker used by the CQMS feature extractor.

pub mod ast;
pub mod canon;
pub mod diff;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod tree;
pub mod visit;

pub use ast::{
    BinaryOp, ColumnRef, CreateTableStatement, DataType, DeleteStatement, Expr, InsertStatement,
    JoinKind, Literal, OrderByItem, SelectItem, SelectStatement, Statement, TableRef, UnaryOp,
    UpdateStatement,
};
pub use canon::{canonicalize, strip_constants};
pub use diff::{
    diff_selects, diff_statements, edit_distance_lower_bound, summarize_edits, EditOp,
    SelectProfile,
};
pub use error::{ParseError, Span};
pub use fingerprint::{structure_fingerprint, template_fingerprint};
pub use lexer::Lexer;
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
pub use printer::to_sql;
pub use token::{Keyword, Token, TokenKind};
pub use tree::{
    normalized_from_ted, normalized_tree_distance, normalized_tree_lower_bound, statement_tree,
    tree_edit_distance, tree_edit_lower_bound, TreeNode, TreeShape,
};

/// Parse a single SQL statement from text.
///
/// Convenience wrapper over [`parser::parse_statement`].
///
/// ```
/// let stmt = sqlparse::parse("SELECT temp FROM WaterTemp WHERE temp < 18").unwrap();
/// assert!(matches!(stmt, sqlparse::Statement::Select(_)));
/// ```
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    parser::parse_statement(sql)
}

/// Parse a statement and return it re-printed in canonical SQL.
pub fn normalize_sql(sql: &str) -> Result<String, ParseError> {
    Ok(printer::to_sql(&canon::canonicalize(&parse(sql)?)))
}
