//! Typed abstract syntax tree for the CQMS SQL dialect.
//!
//! The tree is owned and cheap to clone for the query-log sizes the CQMS
//! manages (queries are short programs, not documents). All analysis passes
//! (feature extraction, canonicalisation, diffing, fingerprinting) operate on
//! this representation.

use std::fmt;

/// Any SQL statement accepted by the dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    Insert(InsertStatement),
    CreateTable(CreateTableStatement),
    Update(UpdateStatement),
    Delete(DeleteStatement),
    /// `DROP TABLE name`
    DropTable(String),
    /// `ALTER TABLE t RENAME COLUMN a TO b`
    AlterRenameColumn {
        table: String,
        from: String,
        to: String,
    },
    /// `ALTER TABLE t DROP COLUMN a`
    AlterDropColumn {
        table: String,
        column: String,
    },
    /// `ALTER TABLE t ADD COLUMN a <type>`
    AlterAddColumn {
        table: String,
        column: String,
        data_type: DataType,
    },
    /// `ALTER TABLE t RENAME TO u`
    AlterRenameTable {
        table: String,
        to: String,
    },
}

impl Statement {
    /// Return the inner SELECT if this is a query statement.
    pub fn as_select(&self) -> Option<&SelectStatement> {
        match self {
            Statement::Select(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_query(&self) -> bool {
        matches!(self, Statement::Select(_))
    }
}

/// A `SELECT` statement (possibly a subquery).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table in the FROM clause, possibly followed by explicit joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
    /// Explicit `JOIN`s chained onto this factor.
    pub joins: Vec<JoinClause>,
}

impl TableRef {
    pub fn named(name: impl Into<String>) -> Self {
        TableRef {
            name: name.into(),
            alias: None,
            joins: Vec::new(),
        }
    }

    /// The name this table is referred to by in the rest of the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An explicit join clause (`JOIN t ON cond`).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: String,
    pub alias: Option<String>,
    /// `None` only for CROSS JOIN.
    pub on: Option<Expr>,
}

impl JoinClause {
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join flavors supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "JOIN",
            JoinKind::LeftOuter => "LEFT OUTER JOIN",
            JoinKind::RightOuter => "RIGHT OUTER JOIN",
            JoinKind::FullOuter => "FULL OUTER JOIN",
            JoinKind::Cross => "CROSS JOIN",
        };
        f.write_str(s)
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier (`S` in `S.loc_x`).
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `?` — produced by constant stripping; also accepted when parsing.
    Placeholder,
}

impl Literal {
    /// True for literals that carry a data constant (stripped by templating).
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            Literal::Int(_) | Literal::Float(_) | Literal::Str(_) | Literal::Bool(_)
        )
    }
}

/// Binary operators in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinaryOp {
    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }

    /// Parser precedence (higher binds tighter).
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    /// Is this a comparison operator (the predicate `op` of the paper's
    /// `Predicates(qid, attrName, relName, op, const)` relation)?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
    Plus,
}

impl UnaryOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Function call, e.g. `COUNT(*)`, `AVG(temp)`, `LOWER(city)`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        /// `COUNT(*)` has `star = true` and empty `args`.
        star: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<SelectStatement>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Exists {
        subquery: Box<SelectStatement>,
        negated: bool,
    },
    /// Scalar subquery: `(SELECT …)` used as a value.
    ScalarSubquery(Box<SelectStatement>),
    Case {
        /// `CASE operand WHEN … ` — operand is optional (searched CASE).
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    pub fn qcol(q: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(q, name))
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Or, right)
    }

    /// Split a predicate into its top-level AND conjuncts.
    ///
    /// `a AND (b OR c) AND d` → `[a, b OR c, d]`. Used by the feature
    /// extractor, the tree differ (Fig. 2 edge labels are per-conjunct), and
    /// the executor's join-condition extraction.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    left,
                    op: BinaryOp::And,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a predicate from conjuncts (inverse of [`Expr::conjuncts`]).
    /// Returns `None` for an empty list.
    pub fn from_conjuncts(mut parts: Vec<Expr>) -> Option<Expr> {
        let first = if parts.is_empty() {
            return None;
        } else {
            parts.remove(0)
        };
        Some(parts.into_iter().fold(first, Expr::and))
    }

    /// Does this expression (transitively) contain a subquery?
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_subquery(),
            Expr::Binary { left, right, .. } => {
                left.contains_subquery() || right.contains_subquery()
            }
            Expr::Function { args, .. } => args.iter().any(Expr::contains_subquery),
            Expr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(Expr::contains_subquery)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_subquery() || low.contains_subquery() || high.contains_subquery(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_subquery() || pattern.contains_subquery()
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                operand.as_deref().is_some_and(Expr::contains_subquery)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_subquery() || t.contains_subquery())
                    || else_branch.as_deref().is_some_and(Expr::contains_subquery)
            }
        }
    }
}

/// `INSERT INTO t [(cols)] VALUES (...), (...)`
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Expr>>,
}

/// `CREATE TABLE t (col type, ...)`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
}

/// `UPDATE t SET a = e, ... [WHERE ...]`
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM t [WHERE ...]`
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Column data types of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl DataType {
    pub fn as_str(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and(
            Expr::and(Expr::col("a"), Expr::or(Expr::col("b"), Expr::col("c"))),
            Expr::col("d"),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &Expr::col("a"));
        assert_eq!(parts[2], &Expr::col("d"));
    }

    #[test]
    fn conjuncts_roundtrip() {
        let e = Expr::and(Expr::and(Expr::col("a"), Expr::col("b")), Expr::col("c"));
        let parts: Vec<Expr> = e.conjuncts().into_iter().cloned().collect();
        let back = Expr::from_conjuncts(parts).unwrap();
        assert_eq!(back.conjuncts(), e.conjuncts());
    }

    #[test]
    fn from_conjuncts_empty_is_none() {
        assert_eq!(Expr::from_conjuncts(vec![]), None);
    }

    #[test]
    fn contains_subquery_deep() {
        let sub = SelectStatement {
            projection: vec![SelectItem::Wildcard],
            from: vec![TableRef::named("t")],
            ..Default::default()
        };
        let e = Expr::and(
            Expr::col("a"),
            Expr::InSubquery {
                expr: Box::new(Expr::col("b")),
                subquery: Box::new(sub),
                negated: false,
            },
        );
        assert!(e.contains_subquery());
        assert!(!Expr::col("a").contains_subquery());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let mut t = TableRef::named("WaterSalinity");
        assert_eq!(t.binding_name(), "WaterSalinity");
        t.alias = Some("S".into());
        assert_eq!(t.binding_name(), "S");
    }

    #[test]
    fn comparison_ops() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Plus.is_comparison());
        assert!(BinaryOp::And.precedence() < BinaryOp::Eq.precedence());
        assert!(BinaryOp::Plus.precedence() < BinaryOp::Mul.precedence());
    }
}
