//! SQL tokenizer.
//!
//! Hand-rolled single-pass lexer over the input bytes. Supports:
//! line comments (`-- …`), block comments (`/* … */`), single-quoted string
//! literals with `''` escaping, double-quoted identifiers, and the operator
//! set of the dialect. Produces [`Token`]s carrying byte spans into the
//! original text.

use crate::error::{ParseError, Span};
use crate::token::{Keyword, Token, TokenKind};

/// Streaming tokenizer over a SQL string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, ParseError> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::with_capacity(src.len() / 4 + 4);
        loop {
            let tok = lx.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lex the next token (skipping whitespace and comments).
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(start, start)));
        };

        let kind = match b {
            b'\'' => return self.lex_string(start),
            b'"' => return self.lex_quoted_ident(start),
            b'0'..=b'9' => return self.lex_number(start),
            b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                return self.lex_number(start)
            }
            c if c == b'_' || c.is_ascii_alphabetic() => return self.lex_word(start),
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new(
                        "unexpected character `!` (did you mean `!=`?)",
                        Span::new(start, self.pos),
                    ));
                }
            }
            b'|' => {
                self.pos += 1;
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::Concat
                } else {
                    return Err(ParseError::new(
                        "unexpected character `|` (did you mean `||`?)",
                        Span::new(start, self.pos),
                    ));
                }
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'/' => {
                self.pos += 1;
                TokenKind::Slash
            }
            b'%' => {
                self.pos += 1;
                TokenKind::Percent
            }
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b'.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'?' => {
                self.pos += 1;
                TokenKind::Placeholder
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, start + 1),
                ))
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn lex_word(&mut self, start: usize) -> Result<Token, ParseError> {
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = match Keyword::from_str_ci(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, ParseError> {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    // A dot not followed by a digit terminates the number
                    // (e.g. `1.` is allowed; `1.e3` too).
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    let save = self.pos;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                    if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        seen_exp = true;
                    } else {
                        // Not an exponent after all (e.g. `123e` = number then ident).
                        self.pos = save;
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        Ok(Token::new(
            TokenKind::NumberLit(text.to_string()),
            Span::new(start, self.pos),
        ))
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        // `''` escapes a single quote.
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(Token::new(
                            TokenKind::StringLit(value),
                            Span::new(start, self.pos),
                        ));
                    }
                }
                Some(b) => {
                    // Preserve multi-byte UTF-8 sequences verbatim.
                    value.push(b as char);
                    if b >= 0x80 {
                        // Re-decode: back up and copy the full char.
                        value.pop();
                        let rest = &self.src[self.pos - 1..];
                        let ch = rest.chars().next().unwrap();
                        value.push(ch);
                        self.pos += ch.len_utf8() - 1;
                    }
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
    }

    fn lex_quoted_ident(&mut self, start: usize) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        value.push('"');
                        self.pos += 1;
                    } else {
                        return Ok(Token::new(
                            TokenKind::QuotedIdent(value),
                            Span::new(start, self.pos),
                        ));
                    }
                }
                Some(b) => value.push(b as char),
                None => {
                    return Err(ParseError::new(
                        "unterminated quoted identifier",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT * FROM WaterTemp");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Star,
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("WaterTemp".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("a <= b <> c != d >= e || f");
        assert!(ks.contains(&TokenKind::LtEq));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::NotEq).count(), 2);
        assert!(ks.contains(&TokenKind::GtEq));
        assert!(ks.contains(&TokenKind::Concat));
    }

    #[test]
    fn lexes_numbers() {
        let ks = kinds("1 2.5 .5 1e3 1.5e-2 18");
        let nums: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::NumberLit(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1", "2.5", ".5", "1e3", "1.5e-2", "18"]);
    }

    #[test]
    fn number_followed_by_ident_splits() {
        let ks = kinds("123abc");
        assert_eq!(
            ks,
            vec![
                TokenKind::NumberLit("123".into()),
                TokenKind::Ident("abc".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        let ks = kinds("'Lake Washington' 'it''s'");
        assert_eq!(ks[0], TokenKind::StringLit("Lake Washington".into()));
        assert_eq!(ks[1], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn lexes_quoted_ident() {
        let ks = kinds(r#""Water Salinity""#);
        assert_eq!(ks[0], TokenKind::QuotedIdent("Water Salinity".into()));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("SELECT -- all columns\n * /* really\nall */ FROM t");
        assert_eq!(ks.len(), 5); // SELECT * FROM t EOF
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::tokenize("'oops").is_err());
        assert!(Lexer::tokenize("/* oops").is_err());
        assert!(Lexer::tokenize("\"oops").is_err());
    }

    #[test]
    fn spans_point_into_source() {
        let sql = "SELECT temp FROM WaterTemp";
        let toks = Lexer::tokenize(sql).unwrap();
        assert_eq!(toks[1].span.slice(sql), "temp");
        assert_eq!(toks[3].span.slice(sql), "WaterTemp");
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(Lexer::tokenize("a ! b").is_err());
        assert!(Lexer::tokenize("a | b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let ks = kinds("'Zürich — lake'");
        assert_eq!(ks[0], TokenKind::StringLit("Zürich — lake".into()));
    }

    #[test]
    fn placeholder_token() {
        let ks = kinds("temp < ?");
        assert!(ks.contains(&TokenKind::Placeholder));
    }
}
