//! Token model shared by the lexer and parser.

use crate::error::Span;
use std::fmt;

/// SQL keywords recognised by the dialect.
///
/// Keywords are matched case-insensitively by the lexer; anything not listed
/// here lexes as an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Offset,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    True,
    False,
    Exists,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    On,
    Insert,
    Into,
    Values,
    Create,
    Table,
    Update,
    Set,
    Delete,
    Drop,
    Alter,
    Rename,
    Column,
    To,
    Add,
    Int,
    Integer,
    Float,
    Real,
    Double,
    Text,
    Varchar,
    Boolean,
    Case,
    When,
    Then,
    Else,
    End,
    Union,
    All,
}

impl Keyword {
    /// Look up a keyword from an identifier, case-insensitively.
    pub fn from_str_ci(s: &str) -> Option<Keyword> {
        use Keyword::*;
        // Uppercase without allocating for the common short case.
        let mut buf = [0u8; 16];
        if s.len() > buf.len() {
            return None;
        }
        for (i, b) in s.bytes().enumerate() {
            buf[i] = b.to_ascii_uppercase();
        }
        let up = &buf[..s.len()];
        Some(match up {
            b"SELECT" => Select,
            b"DISTINCT" => Distinct,
            b"FROM" => From,
            b"WHERE" => Where,
            b"GROUP" => Group,
            b"BY" => By,
            b"HAVING" => Having,
            b"ORDER" => Order,
            b"ASC" => Asc,
            b"DESC" => Desc,
            b"LIMIT" => Limit,
            b"OFFSET" => Offset,
            b"AS" => As,
            b"AND" => And,
            b"OR" => Or,
            b"NOT" => Not,
            b"IN" => In,
            b"BETWEEN" => Between,
            b"LIKE" => Like,
            b"IS" => Is,
            b"NULL" => Null,
            b"TRUE" => True,
            b"FALSE" => False,
            b"EXISTS" => Exists,
            b"JOIN" => Join,
            b"INNER" => Inner,
            b"LEFT" => Left,
            b"RIGHT" => Right,
            b"FULL" => Full,
            b"OUTER" => Outer,
            b"CROSS" => Cross,
            b"ON" => On,
            b"INSERT" => Insert,
            b"INTO" => Into,
            b"VALUES" => Values,
            b"CREATE" => Create,
            b"TABLE" => Table,
            b"UPDATE" => Update,
            b"SET" => Set,
            b"DELETE" => Delete,
            b"DROP" => Drop,
            b"ALTER" => Alter,
            b"RENAME" => Rename,
            b"COLUMN" => Column,
            b"TO" => To,
            b"ADD" => Add,
            b"INT" => Int,
            b"INTEGER" => Integer,
            b"FLOAT" => Float,
            b"REAL" => Real,
            b"DOUBLE" => Double,
            b"TEXT" => Text,
            b"VARCHAR" => Varchar,
            b"BOOLEAN" => Boolean,
            b"CASE" => Case,
            b"WHEN" => When,
            b"THEN" => Then,
            b"ELSE" => Else,
            b"END" => End,
            b"UNION" => Union,
            b"ALL" => All,
            _ => return None,
        })
    }

    /// The canonical (uppercase) spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            Distinct => "DISTINCT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            By => "BY",
            Having => "HAVING",
            Order => "ORDER",
            Asc => "ASC",
            Desc => "DESC",
            Limit => "LIMIT",
            Offset => "OFFSET",
            As => "AS",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Between => "BETWEEN",
            Like => "LIKE",
            Is => "IS",
            Null => "NULL",
            True => "TRUE",
            False => "FALSE",
            Exists => "EXISTS",
            Join => "JOIN",
            Inner => "INNER",
            Left => "LEFT",
            Right => "RIGHT",
            Full => "FULL",
            Outer => "OUTER",
            Cross => "CROSS",
            On => "ON",
            Insert => "INSERT",
            Into => "INTO",
            Values => "VALUES",
            Create => "CREATE",
            Table => "TABLE",
            Update => "UPDATE",
            Set => "SET",
            Delete => "DELETE",
            Drop => "DROP",
            Alter => "ALTER",
            Rename => "RENAME",
            Column => "COLUMN",
            To => "TO",
            Add => "ADD",
            Int => "INT",
            Integer => "INTEGER",
            Float => "FLOAT",
            Real => "REAL",
            Double => "DOUBLE",
            Text => "TEXT",
            Varchar => "VARCHAR",
            Boolean => "BOOLEAN",
            Case => "CASE",
            When => "WHEN",
            Then => "THEN",
            Else => "ELSE",
            End => "END",
            Union => "UNION",
            All => "ALL",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier, original spelling preserved.
    Ident(String),
    /// `"double quoted"` identifier (case preserved, may contain spaces).
    QuotedIdent(String),
    /// A recognised SQL keyword.
    Keyword(Keyword),
    /// `'single quoted'` string literal with escapes resolved.
    StringLit(String),
    /// Numeric literal, original digits preserved (parsed later).
    NumberLit(String),
    /// `=`
    Eq,
    /// `<>` or `!=` (normalised to one kind)
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `?` placeholder (produced by constant stripping, accepted on re-parse)
    Placeholder,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::QuotedIdent(s) => format!("identifier \"{s}\""),
            TokenKind::Keyword(k) => format!("keyword {k}"),
            TokenKind::StringLit(_) => "string literal".to_string(),
            TokenKind::NumberLit(n) => format!("number `{n}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The literal source text for punctuation tokens; empty for others.
    pub fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Eq => "=",
            TokenKind::NotEq => "<>",
            TokenKind::Lt => "<",
            TokenKind::LtEq => "<=",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Concat => "||",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Semicolon => ";",
            TokenKind::Placeholder => "?",
            _ => "",
        }
    }

    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, TokenKind::Keyword(k) if *k == kw)
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str_ci("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("GROUP"), Some(Keyword::Group));
        assert_eq!(Keyword::from_str_ci("salinity"), None);
    }

    #[test]
    fn keyword_lookup_rejects_long_strings() {
        assert_eq!(Keyword::from_str_ci("averyveryverylongidentifier"), None);
    }

    #[test]
    fn roundtrip_keyword_spelling() {
        for kw in [Keyword::Select, Keyword::Between, Keyword::Varchar] {
            assert_eq!(Keyword::from_str_ci(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn describe_mentions_content() {
        assert!(TokenKind::Ident("WaterTemp".into())
            .describe()
            .contains("WaterTemp"));
        assert_eq!(TokenKind::LtEq.describe(), "`<=`");
    }
}
