//! Canonical SQL pretty-printer.
//!
//! `parse(to_sql(stmt)) == stmt` for every AST the parser can produce — a
//! property-tested invariant. Output uses uppercase keywords, single spaces,
//! and minimal parentheses (re-derived from operator precedence).

use crate::ast::*;
use std::fmt::Write;

/// Render a statement as canonical SQL text.
pub fn to_sql(stmt: &Statement) -> String {
    let mut out = String::with_capacity(64);
    write_statement(&mut out, stmt);
    out
}

/// Render a scalar expression as canonical SQL text.
pub fn expr_to_sql(expr: &Expr) -> String {
    let mut out = String::with_capacity(32);
    write_expr(&mut out, expr, 0);
    out
}

/// Render a SELECT statement as canonical SQL text.
pub fn select_to_sql(sel: &SelectStatement) -> String {
    let mut out = String::with_capacity(64);
    write_select(&mut out, sel);
    out
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Select(s) => write_select(out, s),
        Statement::Insert(i) => write_insert(out, i),
        Statement::CreateTable(c) => write_create(out, c),
        Statement::Update(u) => write_update(out, u),
        Statement::Delete(d) => write_delete(out, d),
        Statement::DropTable(t) => {
            let _ = write!(out, "DROP TABLE {}", ident(t));
        }
        Statement::AlterRenameColumn { table, from, to } => {
            let _ = write!(
                out,
                "ALTER TABLE {} RENAME COLUMN {} TO {}",
                ident(table),
                ident(from),
                ident(to)
            );
        }
        Statement::AlterDropColumn { table, column } => {
            let _ = write!(
                out,
                "ALTER TABLE {} DROP COLUMN {}",
                ident(table),
                ident(column)
            );
        }
        Statement::AlterAddColumn {
            table,
            column,
            data_type,
        } => {
            let _ = write!(
                out,
                "ALTER TABLE {} ADD COLUMN {} {}",
                ident(table),
                ident(column),
                data_type
            );
        }
        Statement::AlterRenameTable { table, to } => {
            let _ = write!(out, "ALTER TABLE {} RENAME TO {}", ident(table), ident(to));
        }
    }
}

/// Quote an identifier only when necessary (keyword collision or
/// non-identifier characters).
fn ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
        && !name.chars().next().unwrap().is_ascii_digit()
        && crate::token::Keyword::from_str_ci(name).is_none();
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn write_select(out: &mut String, s: &SelectStatement) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    if s.projection.is_empty() {
        // Partial query form accepted by the parser; keep round-trippable.
        out.pop(); // drop the trailing space
    }
    for (i, item) in s.projection.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(out, "{}.*", ident(q));
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr, 0);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {}", ident(a));
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, t) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, t);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h, 0);
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &o.expr, 0);
            if o.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = s.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    out.push_str(&ident(&t.name));
    if let Some(a) = &t.alias {
        let _ = write!(out, " AS {}", ident(a));
    }
    for j in &t.joins {
        let _ = write!(out, " {} {}", j.kind, ident(&j.table));
        if let Some(a) = &j.alias {
            let _ = write!(out, " AS {}", ident(a));
        }
        if let Some(on) = &j.on {
            out.push_str(" ON ");
            write_expr(out, on, 0);
        }
    }
}

fn write_insert(out: &mut String, i: &InsertStatement) {
    let _ = write!(out, "INSERT INTO {}", ident(&i.table));
    if !i.columns.is_empty() {
        out.push_str(" (");
        for (k, c) in i.columns.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&ident(c));
        }
        out.push(')');
    }
    out.push_str(" VALUES ");
    for (k, row) in i.rows.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        out.push('(');
        for (m, e) in row.iter().enumerate() {
            if m > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
        out.push(')');
    }
}

fn write_create(out: &mut String, c: &CreateTableStatement) {
    let _ = write!(out, "CREATE TABLE {} (", ident(&c.name));
    for (i, (name, ty)) in c.columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", ident(name), ty);
    }
    out.push(')');
}

fn write_update(out: &mut String, u: &UpdateStatement) {
    let _ = write!(out, "UPDATE {} SET ", ident(&u.table));
    for (i, (col, e)) in u.assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} = ", ident(col));
        write_expr(out, e, 0);
    }
    if let Some(w) = &u.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
}

fn write_delete(out: &mut String, d: &DeleteStatement) {
    let _ = write!(out, "DELETE FROM {}", ident(&d.table));
    if let Some(w) = &d.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
}

/// Precedence used for parenthesisation; aligned with the parser.
fn expr_precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        // Postfix predicates sit between AND and comparisons.
        Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => 3,
        _ => 10,
    }
}

fn write_expr(out: &mut String, e: &Expr, parent_bp: u8) {
    let my_bp = expr_precedence(e);
    let needs_parens = my_bp < parent_bp;
    if needs_parens {
        out.push('(');
    }
    match e {
        Expr::Column(c) => match &c.qualifier {
            Some(q) => {
                let _ = write!(out, "{}.{}", ident(q), ident(&c.name));
            }
            None => out.push_str(&ident(&c.name)),
        },
        Expr::Literal(l) => write_literal(out, l),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                out.push_str("NOT ");
                write_expr(out, expr, 4);
            }
            UnaryOp::Neg => {
                out.push('-');
                // `--x` would lex as a line comment; parenthesize any operand
                // that itself renders with a leading minus.
                let mut inner = String::new();
                write_expr(&mut inner, expr, 7);
                if inner.starts_with('-') {
                    out.push('(');
                    out.push_str(&inner);
                    out.push(')');
                } else {
                    out.push_str(&inner);
                }
            }
            UnaryOp::Plus => {
                out.push('+');
                write_expr(out, expr, 7);
            }
        },
        Expr::Binary { left, op, right } => {
            let bp = op.precedence();
            write_expr(out, left, bp);
            let _ = write!(out, " {} ", op.as_str());
            // Right operand binds one tighter: operators are left-associative.
            write_expr(out, right, bp + 1);
        }
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            let _ = write!(out, "{}(", name);
            if *distinct {
                out.push_str("DISTINCT ");
            }
            if *star {
                out.push('*');
            } else {
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, 0);
                }
            }
            out.push(')');
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            write_expr(out, expr, 4);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(')');
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            write_expr(out, expr, 4);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            write_select(out, subquery);
            out.push(')');
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_expr(out, expr, 4);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            write_expr(out, low, 4);
            out.push_str(" AND ");
            write_expr(out, high, 4);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            write_expr(out, expr, 4);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" LIKE ");
            write_expr(out, pattern, 4);
        }
        Expr::IsNull { expr, negated } => {
            write_expr(out, expr, 4);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_select(out, subquery);
            out.push(')');
        }
        Expr::ScalarSubquery(sub) => {
            out.push('(');
            write_select(out, sub);
            out.push(')');
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(out, op, 0);
            }
            for (when, then) in branches {
                out.push_str(" WHEN ");
                write_expr(out, when, 0);
                out.push_str(" THEN ");
                write_expr(out, then, 0);
            }
            if let Some(e) = else_branch {
                out.push_str(" ELSE ");
                write_expr(out, e, 0);
            }
            out.push_str(" END");
        }
    }
    if needs_parens {
        out.push(')');
    }
}

fn write_literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Literal::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                // Keep a decimal point so it re-parses as Float, not Int.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Literal::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Literal::Bool(true) => out.push_str("TRUE"),
        Literal::Bool(false) => out.push_str("FALSE"),
        Literal::Null => out.push_str("NULL"),
        Literal::Placeholder => out.push('?'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statement};

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let printed = to_sql(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}: {e}"));
        assert_eq!(stmt, reparsed, "roundtrip mismatch for: {printed}");
    }

    #[test]
    fn roundtrips_basic() {
        roundtrip("SELECT * FROM WaterTemp WHERE temp < 18");
        roundtrip("SELECT DISTINCT lake, COUNT(*) FROM WaterTemp GROUP BY lake");
        roundtrip("SELECT a AS x, T.b FROM t AS T ORDER BY x DESC LIMIT 3 OFFSET 1");
        roundtrip("SELECT * FROM a, b WHERE a.id = b.id AND (a.x > 1 OR b.y < 2)");
    }

    #[test]
    fn roundtrips_figure1() {
        roundtrip(
            "SELECT Q.qid, Q.qText FROM Queries Q, Attributes A1, Attributes A2 \
             WHERE Q.qid = A1.qid AND Q.qid = A2.qid AND A1.attrName = 'salinity' \
             AND A1.relName = 'WaterSalinity' AND A2.attrName = 'temp' \
             AND A2.relName = 'WaterTemp'",
        );
    }

    #[test]
    fn roundtrips_joins_and_subqueries() {
        roundtrip("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c");
        roundtrip("SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE z = 'w')");
        roundtrip(
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u) AND NOT EXISTS (SELECT * FROM v)",
        );
        roundtrip("SELECT (SELECT MAX(x) FROM u) AS m FROM t");
    }

    #[test]
    fn roundtrips_predicates() {
        roundtrip("SELECT * FROM t WHERE a NOT IN (1, 2, 3)");
        roundtrip("SELECT * FROM t WHERE b BETWEEN 1 AND 10 AND c NOT LIKE '%x%'");
        roundtrip("SELECT * FROM t WHERE d IS NOT NULL OR e IS NULL");
        roundtrip("SELECT * FROM t WHERE NOT a = 1 AND -b < +c");
    }

    #[test]
    fn roundtrips_ddl_dml() {
        roundtrip("CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOLEAN)");
        roundtrip("INSERT INTO t (a, b) VALUES (1, 2.5), (3, NULL)");
        roundtrip("UPDATE t SET a = a + 1 WHERE b = 'x'");
        roundtrip("DELETE FROM t WHERE a IS NULL");
        roundtrip("ALTER TABLE t RENAME COLUMN a TO b");
        roundtrip("DROP TABLE t");
    }

    #[test]
    fn parenthesizes_or_inside_and() {
        let e = parse_expression("a = 1 AND (b = 2 OR c = 3)").unwrap();
        assert_eq!(expr_to_sql(&e), "a = 1 AND (b = 2 OR c = 3)");
        let e2 = parse_expression("a = 1 AND b = 2 OR c = 3").unwrap();
        assert_eq!(expr_to_sql(&e2), "a = 1 AND b = 2 OR c = 3");
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        let e = parse_expression("x = 2.0").unwrap();
        assert_eq!(expr_to_sql(&e), "x = 2.0");
    }

    #[test]
    fn string_escaping() {
        let e = parse_expression("name = 'it''s'").unwrap();
        assert_eq!(expr_to_sql(&e), "name = 'it''s'");
    }

    #[test]
    fn quoted_identifier_when_needed() {
        roundtrip(r#"SELECT "Water Salinity" FROM "my table""#);
        // Identifier that collides with a keyword must be quoted on output.
        let stmt = Statement::Select(SelectStatement {
            projection: vec![SelectItem::Expr {
                expr: Expr::col("order"),
                alias: None,
            }],
            from: vec![TableRef::named("t")],
            ..Default::default()
        });
        let sql = to_sql(&stmt);
        assert!(sql.contains("\"order\""), "{sql}");
        assert_eq!(parse_statement(&sql).unwrap(), stmt);
    }

    #[test]
    fn case_roundtrip() {
        roundtrip("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t");
        roundtrip("SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t");
    }

    #[test]
    fn partial_query_roundtrip() {
        roundtrip("SELECT FROM WaterSalinity, WaterTemperature");
    }
}
