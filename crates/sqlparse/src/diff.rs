//! Parse-tree diff: the edit operations between two queries.
//!
//! Figure 2 of the paper visualises a query session as a chain of nodes whose
//! edges show *the difference between consecutive queries* — the user "added
//! the WaterSalinity relation to the FROM clause, tried different conditions
//! on temp, picked `temp < 18`, and added two more predicates". This module
//! computes exactly those typed edits. Figure 3's "Diff" column (`-1 col,
//! -1 pred`) is the aggregated summary of the same edits.
//!
//! Diffing operates on case-folded (but not alias-renamed) statements, so the
//! produced labels read like the user's own SQL.

use crate::ast::*;
use crate::printer::expr_to_sql;
use std::collections::HashMap;
use std::fmt;

/// One typed edit between two queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// A relation was added to FROM.
    AddTable(String),
    /// A relation was removed from FROM.
    RemoveTable(String),
    /// A projection item was added (rendered form).
    AddProjection(String),
    /// A projection item was removed.
    RemoveProjection(String),
    /// A WHERE conjunct was added (rendered form).
    AddPredicate(String),
    /// A WHERE conjunct was removed.
    RemovePredicate(String),
    /// A predicate whose structure is unchanged but whose constant(s)
    /// changed, e.g. `temp < 22` → `temp < 18`.
    ChangeConstant {
        /// The predicate's previous rendering.
        from: String,
        /// The predicate's new rendering.
        to: String,
    },
    /// A GROUP BY key was added.
    AddGroupBy(String),
    /// A GROUP BY key was removed.
    RemoveGroupBy(String),
    /// An ORDER BY key was added (`expr [DESC]`).
    AddOrderBy(String),
    /// An ORDER BY key was removed.
    RemoveOrderBy(String),
    /// LIMIT changed (None = no limit).
    ChangeLimit {
        /// Previous limit.
        from: Option<u64>,
        /// New limit.
        to: Option<u64>,
    },
    /// DISTINCT was switched on (`true`) or off.
    ToggleDistinct(bool),
    /// The two statements are not both SELECTs (or differ beyond SELECT
    /// structure); carries a coarse description.
    Replaced(String),
}

impl EditOp {
    /// Short label for session-graph edges (Fig. 2 style).
    pub fn label(&self) -> String {
        match self {
            EditOp::AddTable(t) => format!("+{t}"),
            EditOp::RemoveTable(t) => format!("-{t}"),
            EditOp::AddProjection(p) => format!("+col {p}"),
            EditOp::RemoveProjection(p) => format!("-col {p}"),
            EditOp::AddPredicate(p) => format!("+'{p}'"),
            EditOp::RemovePredicate(p) => format!("-'{p}'"),
            EditOp::ChangeConstant { from, to } => format!("'{from}' \u{2192} '{to}'"),
            EditOp::AddGroupBy(g) => format!("+group {g}"),
            EditOp::RemoveGroupBy(g) => format!("-group {g}"),
            EditOp::AddOrderBy(o) => format!("+order {o}"),
            EditOp::RemoveOrderBy(o) => format!("-order {o}"),
            EditOp::ChangeLimit { to: Some(n), .. } => format!("limit {n}"),
            EditOp::ChangeLimit { to: None, .. } => "-limit".to_string(),
            EditOp::ToggleDistinct(true) => "+distinct".to_string(),
            EditOp::ToggleDistinct(false) => "-distinct".to_string(),
            EditOp::Replaced(d) => d.clone(),
        }
    }

    /// Category key used by the edit-pattern miner.
    pub fn kind(&self) -> &'static str {
        match self {
            EditOp::AddTable(_) => "add_table",
            EditOp::RemoveTable(_) => "remove_table",
            EditOp::AddProjection(_) => "add_projection",
            EditOp::RemoveProjection(_) => "remove_projection",
            EditOp::AddPredicate(_) => "add_predicate",
            EditOp::RemovePredicate(_) => "remove_predicate",
            EditOp::ChangeConstant { .. } => "change_constant",
            EditOp::AddGroupBy(_) => "add_group_by",
            EditOp::RemoveGroupBy(_) => "remove_group_by",
            EditOp::AddOrderBy(_) => "add_order_by",
            EditOp::RemoveOrderBy(_) => "remove_order_by",
            EditOp::ChangeLimit { .. } => "change_limit",
            EditOp::ToggleDistinct(_) => "toggle_distinct",
            EditOp::Replaced(_) => "replaced",
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Diff two statements. Non-SELECT pairs produce a single [`EditOp::Replaced`].
pub fn diff_statements(a: &Statement, b: &Statement) -> Vec<EditOp> {
    match (a, b) {
        (Statement::Select(sa), Statement::Select(sb)) => diff_selects(sa, sb),
        _ if a == b => Vec::new(),
        _ => vec![EditOp::Replaced("different statement kind".into())],
    }
}

/// Diff two SELECT statements into typed edits.
pub fn diff_selects(a: &SelectStatement, b: &SelectStatement) -> Vec<EditOp> {
    diff_selects_folded(&fold_select(a), &fold_select(b))
}

/// [`diff_selects`] over statements already passed through
/// `fold_select`. Folding is idempotent, so this produces the exact
/// same edits as `diff_selects` on the originals — callers that compare
/// one query against many (kNN) fold each side once instead of per pair.
pub fn diff_selects_folded(a: &SelectStatement, b: &SelectStatement) -> Vec<EditOp> {
    let mut edits = Vec::new();

    // Tables (FROM + explicit joins), multiset diff by name.
    let ta = table_multiset(a);
    let tb = table_multiset(b);
    for (name, &ca) in &ta {
        let cb = tb.get(name).copied().unwrap_or(0);
        for _ in cb..ca {
            edits.push(EditOp::RemoveTable(name.clone()));
        }
    }
    for (name, &cb) in &tb {
        let ca = ta.get(name).copied().unwrap_or(0);
        for _ in ca..cb {
            edits.push(EditOp::AddTable(name.clone()));
        }
    }

    // Projections: set diff over printed items.
    let pa = projection_set(a);
    let pb = projection_set(b);
    for p in pa.iter().filter(|p| !pb.contains(*p)) {
        edits.push(EditOp::RemoveProjection(p.clone()));
    }
    for p in pb.iter().filter(|p| !pa.contains(*p)) {
        edits.push(EditOp::AddProjection(p.clone()));
    }

    // Predicates: conjunct diff with constant-change pairing.
    let ca = conjunct_list(a);
    let cb = conjunct_list(b);
    let removed: Vec<&Expr> = ca
        .iter()
        .filter(|e| !cb.iter().any(|f| f == *e))
        .copied()
        .collect();
    let added: Vec<&Expr> = cb
        .iter()
        .filter(|e| !ca.iter().any(|f| f == *e))
        .copied()
        .collect();
    // Pair removed/added conjuncts whose templates match → ChangeConstant.
    let mut used_added = vec![false; added.len()];
    for r in &removed {
        let r_tpl = conjunct_template(r);
        let mut matched = false;
        for (i, aconj) in added.iter().enumerate() {
            if used_added[i] {
                continue;
            }
            if conjunct_template(aconj) == r_tpl {
                edits.push(EditOp::ChangeConstant {
                    from: expr_to_sql(r),
                    to: expr_to_sql(aconj),
                });
                used_added[i] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            edits.push(EditOp::RemovePredicate(expr_to_sql(r)));
        }
    }
    for (i, aconj) in added.iter().enumerate() {
        if !used_added[i] {
            edits.push(EditOp::AddPredicate(expr_to_sql(aconj)));
        }
    }

    // GROUP BY.
    let ga: Vec<String> = a.group_by.iter().map(expr_to_sql).collect();
    let gb: Vec<String> = b.group_by.iter().map(expr_to_sql).collect();
    for g in ga.iter().filter(|g| !gb.contains(g)) {
        edits.push(EditOp::RemoveGroupBy(g.clone()));
    }
    for g in gb.iter().filter(|g| !ga.contains(g)) {
        edits.push(EditOp::AddGroupBy(g.clone()));
    }

    // ORDER BY (direction is part of the key).
    let oa: Vec<String> = a.order_by.iter().map(order_key).collect();
    let ob: Vec<String> = b.order_by.iter().map(order_key).collect();
    for o in oa.iter().filter(|o| !ob.contains(o)) {
        edits.push(EditOp::RemoveOrderBy(o.clone()));
    }
    for o in ob.iter().filter(|o| !oa.contains(o)) {
        edits.push(EditOp::AddOrderBy(o.clone()));
    }

    if a.limit != b.limit {
        edits.push(EditOp::ChangeLimit {
            from: a.limit,
            to: b.limit,
        });
    }
    if a.distinct != b.distinct {
        edits.push(EditOp::ToggleDistinct(b.distinct));
    }

    edits
}

/// Distance between two SELECTs measured as number of edits, normalised to
/// [0, 1] by the total number of structural elements. This is the
/// "parse-tree similarity" building block of §4.3.
pub fn edit_distance_normalized(a: &SelectStatement, b: &SelectStatement) -> f64 {
    let edits = diff_selects(a, b).len() as f64;
    let size = (select_size(a) + select_size(b)) as f64;
    if size == 0.0 {
        return 0.0;
    }
    (edits / size).min(1.0)
}

/// [`edit_distance_normalized`] over pre-`fold_select`ed statements —
/// float-for-float the same value (folding changes neither the edit list
/// nor [`select_size`]), without the two per-pair statement clones.
pub fn edit_distance_normalized_folded(a: &SelectStatement, b: &SelectStatement) -> f64 {
    let edits = diff_selects_folded(a, b).len() as f64;
    let size = (select_size(a) + select_size(b)) as f64;
    if size == 0.0 {
        return 0.0;
    }
    (edits / size).min(1.0)
}

/// Case-fold identifiers the way the differ does (aliases kept), exposed
/// so ingest-time signature building can cache the folded statement.
pub fn fold_for_diff(s: &SelectStatement) -> SelectStatement {
    fold_select(s)
}

/// Count of structural elements in a SELECT (tables + projections +
/// conjuncts + group/order items + limit/distinct flags).
pub fn select_size(s: &SelectStatement) -> usize {
    let tables: usize = s.from.iter().map(|t| 1 + t.joins.len()).sum();
    let conjuncts = s
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().len())
        .unwrap_or(0);
    tables
        + s.projection.len().max(1)
        + conjuncts
        + s.group_by.len()
        + s.order_by.len()
        + usize::from(s.limit.is_some())
        + usize::from(s.distinct)
}

/// Aggregate edits into the Fig. 3 "Diff" column, e.g. `-1 col, -1 pred`.
/// Returns `"none"` when the list is empty.
pub fn summarize_edits(edits: &[EditOp]) -> String {
    if edits.is_empty() {
        return "none".to_string();
    }
    let mut cols = 0i64;
    let mut preds = 0i64;
    let mut tables = 0i64;
    let mut consts = 0usize;
    let mut other = 0usize;
    for e in edits {
        match e {
            EditOp::AddProjection(_) => cols += 1,
            EditOp::RemoveProjection(_) => cols -= 1,
            EditOp::AddPredicate(_) => preds += 1,
            EditOp::RemovePredicate(_) => preds -= 1,
            EditOp::AddTable(_) => tables += 1,
            EditOp::RemoveTable(_) => tables -= 1,
            EditOp::ChangeConstant { .. } => consts += 1,
            _ => other += 1,
        }
    }
    let mut parts = Vec::new();
    if tables != 0 {
        parts.push(format!("{tables:+} tbl"));
    }
    if cols != 0 {
        parts.push(format!("{cols:+} col"));
    }
    if preds != 0 {
        parts.push(format!("{preds:+} pred"));
    }
    if consts > 0 {
        parts.push(format!("~{consts} const"));
    }
    if other > 0 {
        parts.push(format!("{other} other"));
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(", ")
    }
}

// ---------------------------------------------------------------------
// Diff profiles — cheap lower bound on the edit distance
// ---------------------------------------------------------------------

/// Precomputed multiset profile of one (folded) SELECT: the per-record data
/// behind [`edit_distance_lower_bound`], the O(profile-size) screen that
/// rejects a pair before [`diff_selects`] runs. Built once per query at
/// ingest; every clause is reduced to sorted FNV hashes of exactly the
/// strings [`diff_selects`] compares, so the bound tracks the true diff
/// term by term.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectProfile {
    /// [`select_size`] of the statement (the normalisation denominator).
    pub size: u32,
    /// Table-name hashes, one per FROM/join occurrence, sorted (multiset).
    pub tables: Vec<u64>,
    /// Printed-projection-item hashes, sorted (multiset).
    pub projections: Vec<u64>,
    /// `(printed conjunct hash, conjunct-template hash)` per WHERE
    /// conjunct, sorted by the printed hash.
    pub conjuncts: Vec<(u64, u64)>,
    /// The same conjuncts as `(template hash, printed hash)`, sorted —
    /// lets the bound walk template groups without allocating.
    pub conjuncts_by_template: Vec<(u64, u64)>,
    /// Printed GROUP BY key hashes, sorted.
    pub group_by: Vec<u64>,
    /// ORDER BY key hashes (direction folded in), sorted.
    pub order_by: Vec<u64>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

impl SelectProfile {
    /// Build the profile of `s` (folds identifiers exactly like
    /// [`diff_selects`] before hashing).
    pub fn build(s: &SelectStatement) -> SelectProfile {
        Self::of_folded(&fold_select(s))
    }

    /// Build from an already-folded statement (shares the fold with the
    /// cached folded statement the signature keeps for exact diffs).
    pub fn of_folded(s: &SelectStatement) -> SelectProfile {
        let h = |x: &str| crate::fingerprint::fnv1a(x.as_bytes());
        let mut tables: Vec<u64> = Vec::new();
        for t in &s.from {
            tables.push(h(&t.name));
            for j in &t.joins {
                tables.push(h(&j.table));
            }
        }
        tables.sort_unstable();
        let mut projections: Vec<u64> = projection_set(s).iter().map(|p| h(p)).collect();
        projections.sort_unstable();
        let mut conjuncts: Vec<(u64, u64)> = conjunct_list(s)
            .iter()
            .map(|e| (h(&expr_to_sql(e)), h(&conjunct_template(e))))
            .collect();
        conjuncts.sort_unstable();
        let mut conjuncts_by_template: Vec<(u64, u64)> =
            conjuncts.iter().map(|&(full, tpl)| (tpl, full)).collect();
        conjuncts_by_template.sort_unstable();
        let mut group_by: Vec<u64> = s.group_by.iter().map(|e| h(&expr_to_sql(e))).collect();
        group_by.sort_unstable();
        let mut order_by: Vec<u64> = s.order_by.iter().map(|o| h(&order_key(o))).collect();
        order_by.sort_unstable();
        SelectProfile {
            size: select_size(s) as u32,
            tables,
            projections,
            conjuncts,
            conjuncts_by_template,
            group_by,
            order_by,
            limit: s.limit,
            distinct: s.distinct,
        }
    }
}

/// Lower bound on [`edit_distance_normalized`] computed from two profiles —
/// no AST walk, no cloning, just sorted-hash merges. Sound: every term
/// undercounts (or matches) the edits [`diff_selects`] emits for that
/// clause, and hash collisions can only make two clauses look *more* equal.
///
/// * tables — the multiset L1 gap is exactly the Add/RemoveTable count;
/// * projections / GROUP BY / ORDER BY — occurrences whose printed form is
///   absent from the other side, matching the diff's `contains` semantics;
/// * conjuncts — removed/added occurrences by printed hash, then the
///   constant-change pairing is credited at its maximum: the diff emits at
///   least `Σ_template max(removed_t, added_t)` predicate edits;
/// * limit / distinct — exact.
pub fn edit_distance_lower_bound(a: &SelectProfile, b: &SelectProfile) -> f64 {
    let edits = multiset_l1(&a.tables, &b.tables)
        + one_sided(&a.projections, &b.projections)
        + conjunct_edit_bound(a, b)
        + one_sided(&a.group_by, &b.group_by)
        + one_sided(&a.order_by, &b.order_by)
        + usize::from(a.limit != b.limit)
        + usize::from(a.distinct != b.distinct);
    let size = (a.size + b.size) as f64;
    if size == 0.0 {
        return 0.0;
    }
    (edits as f64 / size).min(1.0)
}

/// Σ over distinct values of |count_a − count_b| (sorted multisets).
fn multiset_l1(a: &[u64], b: &[u64]) -> usize {
    let mut l1 = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let run = |s: &[u64], k: usize| {
            let v = s[k];
            let mut e = k;
            while e < s.len() && s[e] == v {
                e += 1;
            }
            (v, e)
        };
        match (i < a.len(), j < b.len()) {
            (true, false) => {
                l1 += a.len() - i;
                break;
            }
            (false, true) => {
                l1 += b.len() - j;
                break;
            }
            _ => {
                let (va, ea) = run(a, i);
                let (vb, eb) = run(b, j);
                match va.cmp(&vb) {
                    std::cmp::Ordering::Less => {
                        l1 += ea - i;
                        i = ea;
                    }
                    std::cmp::Ordering::Greater => {
                        l1 += eb - j;
                        j = eb;
                    }
                    std::cmp::Ordering::Equal => {
                        l1 += (ea - i).abs_diff(eb - j);
                        i = ea;
                        j = eb;
                    }
                }
            }
        }
    }
    l1
}

/// Occurrences on either side whose value does not appear on the other at
/// all — the diff's per-occurrence `contains` semantics for projections,
/// GROUP BY and ORDER BY.
fn one_sided(a: &[u64], b: &[u64]) -> usize {
    let count = |x: &[u64], y: &[u64]| x.iter().filter(|v| y.binary_search(v).is_err()).count();
    count(a, b) + count(b, a)
}

/// Lower bound on the WHERE-conjunct edits: removed/added occurrences by
/// printed hash, minus the best-case ChangeConstant pairing — i.e.
/// `Σ_template max(removed_t, added_t)`. Allocation-free: walks the two
/// template-sorted orders in lockstep, checking printed-hash membership
/// against the other side's printed-sorted order.
fn conjunct_edit_bound(a: &SelectProfile, b: &SelectProfile) -> usize {
    let (ta, tb) = (&a.conjuncts_by_template, &b.conjuncts_by_template);
    if ta.is_empty() && tb.is_empty() {
        return 0;
    }
    let absent =
        |full: u64, other: &[(u64, u64)]| other.binary_search_by_key(&full, |p| p.0).is_err();
    let (mut i, mut j, mut edits) = (0usize, 0usize, 0usize);
    while i < ta.len() || j < tb.len() {
        let t = match (ta.get(i), tb.get(j)) {
            (Some(&(x, _)), Some(&(y, _))) => x.min(y),
            (Some(&(x, _)), None) => x,
            (None, Some(&(y, _))) => y,
            (None, None) => unreachable!(),
        };
        let (mut removed, mut added) = (0usize, 0usize);
        while i < ta.len() && ta[i].0 == t {
            if absent(ta[i].1, &b.conjuncts) {
                removed += 1;
            }
            i += 1;
        }
        while j < tb.len() && tb[j].0 == t {
            if absent(tb[j].1, &a.conjuncts) {
                added += 1;
            }
            j += 1;
        }
        edits += removed.max(added);
    }
    edits
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

/// Case-fold identifiers without renaming aliases, so labels keep the user's
/// alias names while `Temp`/`temp` compare equal.
fn fold_select(s: &SelectStatement) -> SelectStatement {
    // Reuse canonicalize's folding via a cheap route: lowercase idents only.
    let mut out = s.clone();
    fold_in_place(&mut out);
    out
}

fn fold_in_place(s: &mut SelectStatement) {
    for t in &mut s.from {
        t.name = t.name.to_ascii_lowercase();
        if let Some(a) = &mut t.alias {
            *a = a.to_ascii_lowercase();
        }
        for j in &mut t.joins {
            j.table = j.table.to_ascii_lowercase();
            if let Some(a) = &mut j.alias {
                *a = a.to_ascii_lowercase();
            }
            if let Some(on) = &mut j.on {
                fold_expr(on);
            }
        }
    }
    for item in &mut s.projection {
        match item {
            SelectItem::QualifiedWildcard(q) => *q = q.to_ascii_lowercase(),
            SelectItem::Expr { expr, alias } => {
                fold_expr(expr);
                if let Some(a) = alias {
                    *a = a.to_ascii_lowercase();
                }
            }
            SelectItem::Wildcard => {}
        }
    }
    if let Some(w) = &mut s.where_clause {
        fold_expr(w);
    }
    for e in &mut s.group_by {
        fold_expr(e);
    }
    if let Some(h) = &mut s.having {
        fold_expr(h);
    }
    for o in &mut s.order_by {
        fold_expr(&mut o.expr);
    }
}

fn fold_expr(e: &mut Expr) {
    match e {
        Expr::Column(c) => {
            c.name = c.name.to_ascii_lowercase();
            if let Some(q) = &mut c.qualifier {
                *q = q.to_ascii_lowercase();
            }
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => fold_expr(expr),
        Expr::Binary { left, right, .. } => {
            fold_expr(left);
            fold_expr(right);
        }
        Expr::Function { name, args, .. } => {
            *name = name.to_ascii_uppercase();
            for a in args {
                fold_expr(a);
            }
        }
        Expr::InList { expr, list, .. } => {
            fold_expr(expr);
            for i in list {
                fold_expr(i);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            fold_expr(expr);
            fold_in_place(subquery);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            fold_expr(expr);
            fold_expr(low);
            fold_expr(high);
        }
        Expr::Like { expr, pattern, .. } => {
            fold_expr(expr);
            fold_expr(pattern);
        }
        Expr::Exists { subquery, .. } => fold_in_place(subquery),
        Expr::ScalarSubquery(sub) => fold_in_place(sub),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                fold_expr(op);
            }
            for (w, t) in branches {
                fold_expr(w);
                fold_expr(t);
            }
            if let Some(el) = else_branch {
                fold_expr(el);
            }
        }
    }
}

fn table_multiset(s: &SelectStatement) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for t in &s.from {
        *m.entry(t.name.clone()).or_insert(0) += 1;
        for j in &t.joins {
            *m.entry(j.table.clone()).or_insert(0) += 1;
        }
    }
    m
}

fn projection_set(s: &SelectStatement) -> Vec<String> {
    s.projection
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", expr_to_sql(expr)),
                None => expr_to_sql(expr),
            },
        })
        .collect()
}

fn conjunct_list(s: &SelectStatement) -> Vec<&Expr> {
    s.where_clause
        .as_ref()
        .map(|w| w.conjuncts())
        .unwrap_or_default()
}

/// Template of one conjunct: constants replaced by `?`, printed.
fn conjunct_template(e: &Expr) -> String {
    let mut c = e.clone();
    fn strip(e: &mut Expr) {
        match e {
            Expr::Literal(l) if l.is_constant() => *l = Literal::Placeholder,
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => strip(expr),
            Expr::Binary { left, right, .. } => {
                strip(left);
                strip(right);
            }
            Expr::Function { args, .. } => args.iter_mut().for_each(strip),
            Expr::InList { expr, list, .. } => {
                strip(expr);
                list.iter_mut().for_each(strip);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                strip(expr);
                strip(low);
                strip(high);
            }
            Expr::Like { expr, pattern, .. } => {
                strip(expr);
                strip(pattern);
            }
            // Subqueries participate as-is: changing a subquery is a
            // structural change, not a constant change.
            Expr::InSubquery { expr, .. } => strip(expr),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    strip(op);
                }
                for (w, t) in branches {
                    strip(w);
                    strip(t);
                }
                if let Some(el) = else_branch {
                    strip(el);
                }
            }
        }
    }
    strip(&mut c);
    expr_to_sql(&c)
}

fn order_key(o: &OrderByItem) -> String {
    if o.desc {
        format!("{} DESC", expr_to_sql(&o.expr))
    } else {
        expr_to_sql(&o.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn sel(sql: &str) -> SelectStatement {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        }
    }

    fn d(a: &str, b: &str) -> Vec<EditOp> {
        diff_selects(&sel(a), &sel(b))
    }

    #[test]
    fn figure2_add_table() {
        // First edge of Figure 2: "+WaterSalinity".
        let edits = d(
            "SELECT * FROM WaterTemp",
            "SELECT * FROM WaterTemp, WaterSalinity",
        );
        assert_eq!(edits, vec![EditOp::AddTable("watersalinity".into())]);
        assert_eq!(edits[0].label(), "+watersalinity");
    }

    #[test]
    fn figure2_constant_change() {
        // Middle edges of Figure 2: trying different conditions on temp.
        let edits = d(
            "SELECT * FROM WaterTemp WHERE temp < 22",
            "SELECT * FROM WaterTemp WHERE temp < 18",
        );
        assert_eq!(
            edits,
            vec![EditOp::ChangeConstant {
                from: "temp < 22".into(),
                to: "temp < 18".into()
            }]
        );
        assert_eq!(edits[0].label(), "'temp < 22' \u{2192} 'temp < 18'");
    }

    #[test]
    fn figure2_add_two_predicates() {
        // Last edge of Figure 2: added `S.loc_x = …` and `S.loc_y = …`.
        let edits = d(
            "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18",
            "SELECT * FROM WaterSalinity S, WaterTemp T \
             WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
        );
        assert_eq!(edits.len(), 2);
        assert!(edits.iter().all(|e| matches!(e, EditOp::AddPredicate(_))));
    }

    #[test]
    fn operator_change_is_not_constant_change() {
        let edits = d(
            "SELECT * FROM t WHERE temp < 18",
            "SELECT * FROM t WHERE temp > 18",
        );
        assert_eq!(edits.len(), 2);
        assert!(matches!(edits[0], EditOp::RemovePredicate(_)));
        assert!(matches!(edits[1], EditOp::AddPredicate(_)));
    }

    #[test]
    fn projection_changes() {
        let edits = d("SELECT temp, salinity FROM t", "SELECT temp FROM t");
        assert_eq!(edits, vec![EditOp::RemoveProjection("salinity".into())]);
    }

    #[test]
    fn identical_queries_no_edits() {
        assert!(d("SELECT * FROM t WHERE a = 1", "select * from T where A = 1").is_empty());
    }

    #[test]
    fn group_order_limit_distinct() {
        let edits = d(
            "SELECT lake FROM t",
            "SELECT DISTINCT lake FROM t GROUP BY lake ORDER BY lake DESC LIMIT 5",
        );
        let kinds: Vec<_> = edits.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"add_group_by"));
        assert!(kinds.contains(&"add_order_by"));
        assert!(kinds.contains(&"change_limit"));
        assert!(kinds.contains(&"toggle_distinct"));
    }

    #[test]
    fn self_join_multiset() {
        let edits = d(
            "SELECT * FROM Attributes A1",
            "SELECT * FROM Attributes A1, Attributes A2",
        );
        assert_eq!(edits, vec![EditOp::AddTable("attributes".into())]);
    }

    #[test]
    fn summary_matches_figure3() {
        // Figure 3 shows "-1 col" and "-1 col, -1 pred" for the two
        // recommended queries.
        let edits = vec![EditOp::RemoveProjection("x".into())];
        assert_eq!(summarize_edits(&edits), "-1 col");
        let edits = vec![
            EditOp::RemoveProjection("x".into()),
            EditOp::RemovePredicate("p".into()),
        ];
        assert_eq!(summarize_edits(&edits), "-1 col, -1 pred");
        assert_eq!(summarize_edits(&[]), "none");
    }

    #[test]
    fn normalized_distance_bounds() {
        let a = sel("SELECT * FROM a WHERE x = 1");
        let b = sel("SELECT * FROM b, c, d WHERE y = 2 AND z = 3");
        let dist = edit_distance_normalized(&a, &b);
        assert!(dist > 0.0 && dist <= 1.0);
        assert_eq!(edit_distance_normalized(&a, &a), 0.0);
    }

    #[test]
    fn profile_bound_never_exceeds_true_distance() {
        let pool = [
            "SELECT * FROM t",
            "SELECT * FROM t WHERE x < 1",
            "SELECT * FROM t WHERE x < 2",
            "SELECT a, b FROM t",
            "SELECT a FROM t, u WHERE t.x = u.y AND a < 5",
            "SELECT DISTINCT lake FROM WaterTemp GROUP BY lake ORDER BY lake DESC LIMIT 5",
            "SELECT * FROM Attributes A1, Attributes A2 WHERE A1.qid = A2.qid",
            "SELECT x, y, z FROM b, c, d WHERE y = 2 AND z = 3 ORDER BY z",
            "SELECT temp FROM WaterTemp WHERE temp < 18 AND month = 7",
        ];
        let sels: Vec<SelectStatement> = pool.iter().map(|q| sel(q)).collect();
        let profiles: Vec<SelectProfile> = sels.iter().map(SelectProfile::build).collect();
        for i in 0..sels.len() {
            for j in 0..sels.len() {
                let true_d = edit_distance_normalized(&sels[i], &sels[j]);
                let lb = edit_distance_lower_bound(&profiles[i], &profiles[j]);
                assert!(
                    lb <= true_d + 1e-12,
                    "pool pair ({i}, {j}): bound {lb} > distance {true_d}"
                );
                if i == j {
                    assert_eq!(lb, 0.0);
                }
            }
        }
    }

    #[test]
    fn profile_bound_is_tight_on_simple_edits() {
        // Pure structural edits (no constant pairing) are counted exactly.
        let a = sel("SELECT a FROM t");
        let b = sel("SELECT a, b FROM t, u ORDER BY a");
        let lb = edit_distance_lower_bound(&SelectProfile::build(&a), &SelectProfile::build(&b));
        assert!((lb - edit_distance_normalized(&a, &b)).abs() < 1e-12);
        // A constant change is credited as exactly one edit.
        let a = sel("SELECT * FROM t WHERE x < 1");
        let b = sel("SELECT * FROM t WHERE x < 2");
        let lb = edit_distance_lower_bound(&SelectProfile::build(&a), &SelectProfile::build(&b));
        assert!((lb - edit_distance_normalized(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn replaced_for_mixed_statements() {
        let a = parse_statement("SELECT * FROM t").unwrap();
        let b = parse_statement("DELETE FROM t").unwrap();
        assert_eq!(
            diff_statements(&a, &b),
            vec![EditOp::Replaced("different statement kind".into())]
        );
        assert!(diff_statements(&b, &b).is_empty());
    }
}
