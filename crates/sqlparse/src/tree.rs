//! Labeled ordered trees and exact tree edit distance (Zhang–Shasha).
//!
//! §4.3 of the CQMS paper proposes "parse tree similarity, perhaps after
//! removing the constants from the tree" as a query distance. The cheap
//! variant (diff-based, [`crate::diff::edit_distance_normalized`]) is the
//! default; this module provides the exact ordered-tree edit distance for
//! higher-fidelity comparisons and for calibrating the cheap one (ablation
//! A3 in the CQMS experiment suite).

use crate::ast::*;
use crate::fingerprint::fnv1a;
use crate::printer::expr_to_sql;

/// A labeled ordered tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Node label (compared for relabel cost).
    pub label: String,
    /// Ordered children.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A node with no children.
    pub fn leaf(label: impl Into<String>) -> TreeNode {
        TreeNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// An internal node.
    pub fn node(label: impl Into<String>, children: Vec<TreeNode>) -> TreeNode {
        TreeNode {
            label: label.into(),
            children,
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeNode::size).sum::<usize>()
    }
}

/// Convert a statement into its labeled tree (identifiers lower-cased;
/// constants kept — strip first with [`crate::canon::strip_constants`] for
/// template-level comparison).
pub fn statement_tree(stmt: &Statement) -> TreeNode {
    match stmt {
        Statement::Select(s) => select_tree(s),
        other => TreeNode::leaf(format!("{other:?}")),
    }
}

/// Convert a SELECT into its labeled tree.
pub fn select_tree(s: &SelectStatement) -> TreeNode {
    let mut children = Vec::new();
    if s.distinct {
        children.push(TreeNode::leaf("distinct"));
    }
    let proj_children: Vec<TreeNode> = s
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => TreeNode::leaf("*"),
            SelectItem::QualifiedWildcard(q) => TreeNode::leaf(format!("{}.​*", q.to_lowercase())),
            SelectItem::Expr { expr, .. } => expr_tree(expr),
        })
        .collect();
    children.push(TreeNode::node("projection", proj_children));

    let mut from_children = Vec::new();
    for t in &s.from {
        from_children.push(TreeNode::leaf(t.name.to_lowercase()));
        for j in &t.joins {
            let mut jc = vec![TreeNode::leaf(j.table.to_lowercase())];
            if let Some(on) = &j.on {
                jc.push(expr_tree(on));
            }
            from_children.push(TreeNode::node(format!("{}", j.kind), jc));
        }
    }
    children.push(TreeNode::node("from", from_children));

    if let Some(w) = &s.where_clause {
        children.push(TreeNode::node("where", vec![expr_tree(w)]));
    }
    if !s.group_by.is_empty() {
        children.push(TreeNode::node(
            "group_by",
            s.group_by.iter().map(expr_tree).collect(),
        ));
    }
    if let Some(h) = &s.having {
        children.push(TreeNode::node("having", vec![expr_tree(h)]));
    }
    if !s.order_by.is_empty() {
        children.push(TreeNode::node(
            "order_by",
            s.order_by
                .iter()
                .map(|o| {
                    let label = if o.desc { "desc" } else { "asc" };
                    TreeNode::node(label, vec![expr_tree(&o.expr)])
                })
                .collect(),
        ));
    }
    if let Some(l) = s.limit {
        children.push(TreeNode::leaf(format!("limit:{l}")));
    }
    TreeNode::node("select", children)
}

fn expr_tree(e: &Expr) -> TreeNode {
    match e {
        Expr::Column(c) => TreeNode::leaf(format!("col:{}", c.to_string().to_lowercase())),
        Expr::Literal(l) => TreeNode::leaf(format!("lit:{l:?}")),
        Expr::Unary { op, expr } => TreeNode::node(op.as_str(), vec![expr_tree(expr)]),
        Expr::Binary { left, op, right } => {
            TreeNode::node(op.as_str(), vec![expr_tree(left), expr_tree(right)])
        }
        Expr::Function { name, args, .. } => TreeNode::node(
            format!("fn:{}", name.to_lowercase()),
            args.iter().map(expr_tree).collect(),
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let mut c = vec![expr_tree(expr)];
            c.extend(list.iter().map(expr_tree));
            TreeNode::node(if *negated { "not_in" } else { "in" }, c)
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => TreeNode::node(
            if *negated { "not_in_sub" } else { "in_sub" },
            vec![expr_tree(expr), select_tree(subquery)],
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => TreeNode::node(
            if *negated { "not_between" } else { "between" },
            vec![expr_tree(expr), expr_tree(low), expr_tree(high)],
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => TreeNode::node(
            if *negated { "not_like" } else { "like" },
            vec![expr_tree(expr), expr_tree(pattern)],
        ),
        Expr::IsNull { expr, negated } => TreeNode::node(
            if *negated { "is_not_null" } else { "is_null" },
            vec![expr_tree(expr)],
        ),
        Expr::Exists { subquery, negated } => TreeNode::node(
            if *negated { "not_exists" } else { "exists" },
            vec![select_tree(subquery)],
        ),
        Expr::ScalarSubquery(sub) => TreeNode::node("scalar_sub", vec![select_tree(sub)]),
        Expr::Case { .. } => TreeNode::leaf(format!("case:{}", expr_to_sql(e).to_lowercase())),
    }
}

/// Exact ordered tree edit distance (Zhang & Shasha 1989) with unit costs
/// for insert, delete and relabel.
pub fn tree_edit_distance(a: &TreeNode, b: &TreeNode) -> usize {
    let ta = Flat::build(a);
    let tb = Flat::build(b);
    let na = ta.labels.len();
    let nb = tb.labels.len();
    // td[i][j] = distance between subtree rooted at postorder i of a and j of b.
    let mut td = vec![vec![0usize; nb]; na];

    for &i in &ta.keyroots {
        for &j in &tb.keyroots {
            tree_dist(&ta, &tb, i, j, &mut td);
        }
    }
    td[na - 1][nb - 1]
}

/// Normalised tree edit distance in [0, 1]: TED / max(size).
pub fn normalized_tree_distance(a: &TreeNode, b: &TreeNode) -> f64 {
    normalized_from_ted(tree_edit_distance(a, b), a.size(), b.size())
}

/// Normalise a (possibly lower-bounded) edit count by the larger tree size —
/// the single source of truth for the [0, 1] mapping, shared by
/// [`normalized_tree_distance`], [`normalized_tree_lower_bound`] and the
/// metric index (which must reproduce the exact same floats).
pub fn normalized_from_ted(ted: usize, size_a: usize, size_b: usize) -> f64 {
    let m = size_a.max(size_b) as f64;
    if m == 0.0 {
        0.0
    } else {
        (ted as f64 / m).min(1.0)
    }
}

/// Size + node-label histogram of a tree: the O(|labels|) screen that
/// rejects a pair before the O(tree²) Zhang–Shasha DP runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeShape {
    /// Node count of the tree.
    pub size: u32,
    /// `(label hash, occurrence count)`, sorted by hash.
    pub labels: Vec<(u64, u32)>,
}

impl TreeShape {
    /// Build the shape of `root` (one traversal, labels FNV-hashed).
    pub fn of(root: &TreeNode) -> TreeShape {
        fn rec(node: &TreeNode, hist: &mut std::collections::HashMap<u64, u32>, size: &mut u32) {
            *size += 1;
            *hist.entry(fnv1a(node.label.as_bytes())).or_insert(0) += 1;
            for c in &node.children {
                rec(c, hist, size);
            }
        }
        let mut hist = std::collections::HashMap::new();
        let mut size = 0u32;
        rec(root, &mut hist, &mut size);
        let mut labels: Vec<(u64, u32)> = hist.into_iter().collect();
        labels.sort_unstable();
        TreeShape { size, labels }
    }
}

/// Lower bound on [`tree_edit_distance`] from two [`TreeShape`]s:
///
/// ```text
/// TED(a, b) ≥ max(|a|, |b|) − Σ_label min(count_a, count_b)
/// ```
///
/// Any edit script keeps some set of nodes unchanged (not inserted, deleted
/// or relabelled); unchanged nodes carry equal labels on both sides, so at
/// most `M = Σ_label min(count_a, count_b)` nodes survive. With `R` relabels,
/// the script deletes `|a| − M − R` nodes and inserts `|b| − M − R`, hence
/// `TED = |a| + |b| − 2M − R ≥ max(|a|, |b|) − M` (using `R ≤ min − M`).
/// This subsumes the pure size bound `TED ≥ ||a| − |b||` since `M ≤ min`.
/// Equivalent to `(||a|−|b|| + L1(hist_a, hist_b)) / 2`.
pub fn tree_edit_lower_bound(a: &TreeShape, b: &TreeShape) -> usize {
    let mut shared: u64 = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.labels.len() && j < b.labels.len() {
        match a.labels[i].0.cmp(&b.labels[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += u64::from(a.labels[i].1.min(b.labels[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    (u64::from(a.size.max(b.size)) - shared) as usize
}

/// Lower bound on [`normalized_tree_distance`] from two [`TreeShape`]s.
pub fn normalized_tree_lower_bound(a: &TreeShape, b: &TreeShape) -> f64 {
    normalized_from_ted(
        tree_edit_lower_bound(a, b),
        a.size as usize,
        b.size as usize,
    )
}

/// Postorder-flattened tree with leftmost-leaf indices and keyroots.
struct Flat {
    labels: Vec<String>,
    /// l[i] = postorder index of the leftmost leaf of the subtree at i.
    l: Vec<usize>,
    keyroots: Vec<usize>,
}

impl Flat {
    fn build(root: &TreeNode) -> Flat {
        let mut labels = Vec::new();
        let mut l = Vec::new();
        fn rec(node: &TreeNode, labels: &mut Vec<String>, l: &mut Vec<usize>) -> usize {
            let mut leftmost = usize::MAX;
            for c in &node.children {
                let cl = rec(c, labels, l);
                if leftmost == usize::MAX {
                    leftmost = cl;
                }
            }
            labels.push(node.label.clone());
            let my_index = labels.len() - 1;
            let my_leftmost = if leftmost == usize::MAX {
                my_index
            } else {
                leftmost
            };
            l.push(my_leftmost);
            my_leftmost
        }
        rec(root, &mut labels, &mut l);
        // Keyroots: i such that no j > i has l[j] == l[i].
        let n = labels.len();
        let mut keyroots = Vec::new();
        for i in 0..n {
            if !(i + 1..n).any(|j| l[j] == l[i]) {
                keyroots.push(i);
            }
        }
        Flat {
            labels,
            l,
            keyroots,
        }
    }
}

fn tree_dist(a: &Flat, b: &Flat, i: usize, j: usize, td: &mut [Vec<usize>]) {
    let li = a.l[i];
    let lj = b.l[j];
    let m = i - li + 2;
    let n = j - lj + 2;
    // Forest distance table, indices offset by li/lj.
    let mut fd = vec![vec![0usize; n]; m];
    for x in 1..m {
        fd[x][0] = fd[x - 1][0] + 1; // delete
    }
    for y in 1..n {
        fd[0][y] = fd[0][y - 1] + 1; // insert
    }
    for x in 1..m {
        for y in 1..n {
            let ai = li + x - 1;
            let bj = lj + y - 1;
            if a.l[ai] == li && b.l[bj] == lj {
                // Both forests are whole trees.
                let relabel = usize::from(a.labels[ai] != b.labels[bj]);
                fd[x][y] = (fd[x - 1][y] + 1)
                    .min(fd[x][y - 1] + 1)
                    .min(fd[x - 1][y - 1] + relabel);
                td[ai][bj] = fd[x][y];
            } else {
                let fx = a.l[ai].saturating_sub(li);
                let fy = b.l[bj].saturating_sub(lj);
                fd[x][y] = (fd[x - 1][y] + 1)
                    .min(fd[x][y - 1] + 1)
                    .min(fd[fx][fy] + td[ai][bj]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn tree(sql: &str) -> TreeNode {
        statement_tree(&parse_statement(sql).unwrap())
    }

    #[test]
    fn identical_trees_distance_zero() {
        let a = tree("SELECT * FROM t WHERE x < 1");
        assert_eq!(tree_edit_distance(&a, &a), 0);
        assert_eq!(normalized_tree_distance(&a, &a), 0.0);
    }

    #[test]
    fn known_small_distances() {
        // Single relabel: constant changed.
        let a = tree("SELECT * FROM t WHERE x < 1");
        let b = tree("SELECT * FROM t WHERE x < 2");
        assert_eq!(tree_edit_distance(&a, &b), 1);
        // Single insertion: extra projection column.
        let a = tree("SELECT a FROM t");
        let b = tree("SELECT a, b FROM t");
        assert_eq!(tree_edit_distance(&a, &b), 1);
        // Added conjunct: AND node + comparison + column + literal = 4.
        let a = tree("SELECT * FROM t WHERE x < 1");
        let b = tree("SELECT * FROM t WHERE x < 1 AND y > 2");
        assert_eq!(tree_edit_distance(&a, &b), 4);
    }

    #[test]
    fn symmetric() {
        let a = tree("SELECT a, b FROM t, u WHERE t.x = u.y AND a < 5");
        let b = tree("SELECT a FROM t WHERE a < 9 ORDER BY a");
        assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let qs = [
            "SELECT * FROM t",
            "SELECT * FROM t WHERE x < 1",
            "SELECT a FROM t, u WHERE x < 1",
            "SELECT a, COUNT(*) FROM t GROUP BY a",
        ];
        for x in &qs {
            for y in &qs {
                for z in &qs {
                    let dxy = tree_edit_distance(&tree(x), &tree(y));
                    let dyz = tree_edit_distance(&tree(y), &tree(z));
                    let dxz = tree_edit_distance(&tree(x), &tree(z));
                    assert!(dxz <= dxy + dyz, "{x} {y} {z}");
                }
            }
        }
    }

    #[test]
    fn distance_scales_with_difference() {
        let base = tree("SELECT * FROM WaterTemp WHERE temp < 18");
        let close = tree("SELECT * FROM WaterTemp WHERE temp < 22");
        let far =
            tree("SELECT city, COUNT(*) FROM CityLocations GROUP BY city HAVING COUNT(*) > 2");
        assert!(tree_edit_distance(&base, &close) < tree_edit_distance(&base, &far));
    }

    #[test]
    fn normalized_bounds() {
        let a = tree("SELECT * FROM a");
        let b = tree("SELECT x, y, z FROM b, c, d WHERE x = 1 AND y = 2 ORDER BY z LIMIT 3");
        let d = normalized_tree_distance(&a, &b);
        assert!(d > 0.0 && d <= 1.0);
    }

    #[test]
    fn subquery_trees() {
        let a = tree("SELECT * FROM t WHERE x IN (SELECT y FROM u)");
        let b = tree("SELECT * FROM t WHERE x IN (SELECT y FROM v)");
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn shape_counts_labels() {
        let t = tree("SELECT a, a FROM t");
        let shape = TreeShape::of(&t);
        assert_eq!(shape.size as usize, t.size());
        assert!(shape.labels.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u32 = shape.labels.iter().map(|(_, c)| c).sum();
        assert_eq!(total, shape.size);
        // The duplicated projection column appears with count 2.
        assert!(shape.labels.iter().any(|&(_, c)| c == 2));
    }

    #[test]
    fn shape_bound_never_exceeds_zhang_shasha() {
        // A diverse pool covering relabels, insertions, subqueries,
        // aggregates and disjoint structures.
        let pool = [
            "SELECT * FROM t",
            "SELECT * FROM t WHERE x < 1",
            "SELECT * FROM t WHERE x < 2",
            "SELECT a FROM t",
            "SELECT a, b FROM t",
            "SELECT a, b FROM t, u WHERE t.x = u.y AND a < 5",
            "SELECT a FROM t WHERE a < 9 ORDER BY a",
            "SELECT city, COUNT(*) FROM CityLocations GROUP BY city HAVING COUNT(*) > 2",
            "SELECT * FROM t WHERE x IN (SELECT y FROM u)",
            "SELECT DISTINCT lake FROM WaterTemp WHERE temp < 18 LIMIT 5",
            "SELECT x, y, z FROM b, c, d WHERE x = 1 AND y = 2 ORDER BY z LIMIT 3",
        ];
        let trees: Vec<TreeNode> = pool.iter().map(|q| tree(q)).collect();
        let shapes: Vec<TreeShape> = trees.iter().map(TreeShape::of).collect();
        for i in 0..trees.len() {
            for j in 0..trees.len() {
                let true_ted = tree_edit_distance(&trees[i], &trees[j]);
                let lb = tree_edit_lower_bound(&shapes[i], &shapes[j]);
                assert!(
                    lb <= true_ted,
                    "pool pair ({i}, {j}): bound {lb} > TED {true_ted}"
                );
                let nd = normalized_tree_distance(&trees[i], &trees[j]);
                let nlb = normalized_tree_lower_bound(&shapes[i], &shapes[j]);
                assert!(nlb <= nd, "pool pair ({i}, {j}): {nlb} > {nd}");
                if i == j {
                    assert_eq!(lb, 0);
                }
            }
        }
        // The bound is non-trivial: identical shapes give 0, disjoint
        // label sets give the full larger size.
        let a = TreeShape::of(&trees[0]);
        let far = TreeShape {
            size: 7,
            labels: vec![(1, 3), (2, 4)],
        };
        assert_eq!(tree_edit_lower_bound(&a, &far), (a.size.max(7)) as usize);
    }
}
