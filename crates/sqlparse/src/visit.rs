//! AST walker used by feature extraction, canonicalisation and repair.
//!
//! Two facilities:
//!
//! * [`Visitor`] — read-only traversal with callbacks for the nodes the CQMS
//!   cares about (table references, column references, comparison predicates,
//!   subqueries).
//! * [`rewrite_columns`] / [`rewrite_tables`] — in-place identifier rewrites
//!   used by the Query Maintenance component to repair queries after schema
//!   evolution (paper §4.4).

use crate::ast::*;

/// Read-only visitor. Implement the callbacks you need; defaults are no-ops.
pub trait Visitor {
    /// Called for each table in FROM (including explicit joins) of every
    /// (sub)query. `depth` is 0 for the top-level query.
    fn visit_table(&mut self, _name: &str, _alias: Option<&str>, _depth: usize) {}

    /// Called for every column reference in any clause.
    fn visit_column(&mut self, _col: &ColumnRef, _depth: usize) {}

    /// Called for every comparison predicate `col op literal`.
    fn visit_comparison(&mut self, _col: &ColumnRef, _op: BinaryOp, _lit: &Literal, _depth: usize) {
    }

    /// Called when entering a subquery.
    fn enter_subquery(&mut self, _depth: usize) {}
}

/// Walk a full statement.
pub fn walk_statement<V: Visitor>(v: &mut V, stmt: &Statement) {
    match stmt {
        Statement::Select(s) => walk_select(v, s, 0),
        Statement::Insert(i) => {
            v.visit_table(&i.table, None, 0);
            for row in &i.rows {
                for e in row {
                    walk_expr(v, e, 0);
                }
            }
        }
        Statement::CreateTable(c) => v.visit_table(&c.name, None, 0),
        Statement::Update(u) => {
            v.visit_table(&u.table, None, 0);
            for (_, e) in &u.assignments {
                walk_expr(v, e, 0);
            }
            if let Some(w) = &u.where_clause {
                walk_expr(v, w, 0);
            }
        }
        Statement::Delete(d) => {
            v.visit_table(&d.table, None, 0);
            if let Some(w) = &d.where_clause {
                walk_expr(v, w, 0);
            }
        }
        Statement::DropTable(t) => v.visit_table(t, None, 0),
        Statement::AlterRenameColumn { table, .. }
        | Statement::AlterDropColumn { table, .. }
        | Statement::AlterAddColumn { table, .. }
        | Statement::AlterRenameTable { table, .. } => v.visit_table(table, None, 0),
    }
}

/// Walk a SELECT at the given subquery depth.
pub fn walk_select<V: Visitor>(v: &mut V, s: &SelectStatement, depth: usize) {
    for t in &s.from {
        v.visit_table(&t.name, t.alias.as_deref(), depth);
        for j in &t.joins {
            v.visit_table(&j.table, j.alias.as_deref(), depth);
            if let Some(on) = &j.on {
                walk_expr(v, on, depth);
            }
        }
    }
    for item in &s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(v, expr, depth);
        }
    }
    if let Some(w) = &s.where_clause {
        walk_expr(v, w, depth);
    }
    for e in &s.group_by {
        walk_expr(v, e, depth);
    }
    if let Some(h) = &s.having {
        walk_expr(v, h, depth);
    }
    for o in &s.order_by {
        walk_expr(v, &o.expr, depth);
    }
}

/// Walk an expression at the given subquery depth.
pub fn walk_expr<V: Visitor>(v: &mut V, e: &Expr, depth: usize) {
    match e {
        Expr::Column(c) => v.visit_column(c, depth),
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } => walk_expr(v, expr, depth),
        Expr::Binary { left, op, right } => {
            // Surface `col op literal` (either orientation) as a comparison.
            if op.is_comparison() {
                match (&**left, &**right) {
                    (Expr::Column(c), Expr::Literal(l)) => v.visit_comparison(c, *op, l, depth),
                    (Expr::Literal(l), Expr::Column(c)) => {
                        v.visit_comparison(c, flip_comparison(*op), l, depth)
                    }
                    _ => {}
                }
            }
            walk_expr(v, left, depth);
            walk_expr(v, right, depth);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(v, a, depth);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(v, expr, depth);
            for item in list {
                walk_expr(v, item, depth);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr(v, expr, depth);
            v.enter_subquery(depth + 1);
            walk_select(v, subquery, depth + 1);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(v, expr, depth);
            walk_expr(v, low, depth);
            walk_expr(v, high, depth);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(v, expr, depth);
            walk_expr(v, pattern, depth);
        }
        Expr::IsNull { expr, .. } => walk_expr(v, expr, depth),
        Expr::Exists { subquery, .. } => {
            v.enter_subquery(depth + 1);
            walk_select(v, subquery, depth + 1);
        }
        Expr::ScalarSubquery(sub) => {
            v.enter_subquery(depth + 1);
            walk_select(v, sub, depth + 1);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                walk_expr(v, op, depth);
            }
            for (w, t) in branches {
                walk_expr(v, w, depth);
                walk_expr(v, t, depth);
            }
            if let Some(e) = else_branch {
                walk_expr(v, e, depth);
            }
        }
    }
}

/// Mirror a comparison across its operands (`5 < x` ⇒ `x > 5`).
pub fn flip_comparison(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

// ---------------------------------------------------------------------
// Rewriters (used by Query Maintenance repair, §4.4)
// ---------------------------------------------------------------------

/// Rename every reference to column `old` of table `table` (matched through
/// aliases) to `new`, across all clauses and subqueries. Returns the number
/// of references rewritten.
pub fn rewrite_columns(s: &mut SelectStatement, table: &str, old: &str, new: &str) -> usize {
    let mut n = 0;
    rewrite_select(s, &mut |col, scope| {
        if !col.name.eq_ignore_ascii_case(old) {
            return;
        }
        let refers_to_table = match &col.qualifier {
            Some(q) => scope.iter().any(|(name, binding)| {
                name.eq_ignore_ascii_case(table) && q.eq_ignore_ascii_case(binding)
            }),
            // Unqualified: rewrite if the table is in scope at all. This can
            // over-approximate for ambiguous names; the maintenance engine
            // re-validates by compiling against the current schema.
            None => scope
                .iter()
                .any(|(name, _)| name.eq_ignore_ascii_case(table)),
        };
        if refers_to_table {
            col.name = new.to_string();
            n += 1;
        }
    });
    n
}

/// Rename every FROM-clause reference to `old` to `new`. Aliases are kept, so
/// qualified column references keep working. Returns count of renames.
pub fn rewrite_tables(s: &mut SelectStatement, old: &str, new: &str) -> usize {
    let mut n = 0;
    fn walk(s: &mut SelectStatement, old: &str, new: &str, n: &mut usize) {
        for t in &mut s.from {
            if t.name.eq_ignore_ascii_case(old) {
                // Preserve how columns referenced this table: if it had no
                // alias, unqualified/qualified-by-name refs must keep
                // resolving, so alias it to the old name.
                if t.alias.is_none() {
                    t.alias = Some(t.name.clone());
                }
                t.name = new.to_string();
                *n += 1;
            }
            for j in &mut t.joins {
                if j.table.eq_ignore_ascii_case(old) {
                    if j.alias.is_none() {
                        j.alias = Some(j.table.clone());
                    }
                    j.table = new.to_string();
                    *n += 1;
                }
            }
        }
        visit_subqueries_mut(s, &mut |sub| walk(sub, old, new, n));
    }
    walk(s, old, new, &mut n);
    n
}

/// Apply `f` to every column reference in the statement, passing the table
/// scope (name, binding-name) visible at that point.
fn rewrite_select(
    s: &mut SelectStatement,
    f: &mut impl FnMut(&mut ColumnRef, &[(String, String)]),
) {
    let scope: Vec<(String, String)> = s
        .from
        .iter()
        .flat_map(|t| {
            std::iter::once((t.name.clone(), t.binding_name().to_string())).chain(
                t.joins
                    .iter()
                    .map(|j| (j.table.clone(), j.binding_name().to_string())),
            )
        })
        .collect();

    fn rewrite_expr(
        e: &mut Expr,
        scope: &[(String, String)],
        f: &mut impl FnMut(&mut ColumnRef, &[(String, String)]),
    ) {
        match e {
            Expr::Column(c) => f(c, scope),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => rewrite_expr(expr, scope, f),
            Expr::Binary { left, right, .. } => {
                rewrite_expr(left, scope, f);
                rewrite_expr(right, scope, f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    rewrite_expr(a, scope, f);
                }
            }
            Expr::InList { expr, list, .. } => {
                rewrite_expr(expr, scope, f);
                for i in list {
                    rewrite_expr(i, scope, f);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                rewrite_expr(expr, scope, f);
                rewrite_select(subquery, f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                rewrite_expr(expr, scope, f);
                rewrite_expr(low, scope, f);
                rewrite_expr(high, scope, f);
            }
            Expr::Like { expr, pattern, .. } => {
                rewrite_expr(expr, scope, f);
                rewrite_expr(pattern, scope, f);
            }
            Expr::Exists { subquery, .. } => rewrite_select(subquery, f),
            Expr::ScalarSubquery(sub) => rewrite_select(sub, f),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    rewrite_expr(op, scope, f);
                }
                for (w, t) in branches {
                    rewrite_expr(w, scope, f);
                    rewrite_expr(t, scope, f);
                }
                if let Some(e) = else_branch {
                    rewrite_expr(e, scope, f);
                }
            }
        }
    }

    for item in &mut s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite_expr(expr, &scope, f);
        }
    }
    let mut on_exprs: Vec<&mut Expr> = Vec::new();
    for t in &mut s.from {
        for j in &mut t.joins {
            if let Some(on) = &mut j.on {
                on_exprs.push(on);
            }
        }
    }
    for on in on_exprs {
        rewrite_expr(on, &scope, f);
    }
    if let Some(w) = &mut s.where_clause {
        rewrite_expr(w, &scope, f);
    }
    for e in &mut s.group_by {
        rewrite_expr(e, &scope, f);
    }
    if let Some(h) = &mut s.having {
        rewrite_expr(h, &scope, f);
    }
    for o in &mut s.order_by {
        rewrite_expr(&mut o.expr, &scope, f);
    }
}

/// Apply `f` to each direct subquery of `s` (WHERE/HAVING/projection).
fn visit_subqueries_mut(s: &mut SelectStatement, f: &mut impl FnMut(&mut SelectStatement)) {
    fn in_expr(e: &mut Expr, f: &mut impl FnMut(&mut SelectStatement)) {
        match e {
            Expr::InSubquery { subquery, expr, .. } => {
                in_expr(expr, f);
                f(subquery);
            }
            Expr::Exists { subquery, .. } => f(subquery),
            Expr::ScalarSubquery(sub) => f(sub),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => in_expr(expr, f),
            Expr::Binary { left, right, .. } => {
                in_expr(left, f);
                in_expr(right, f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    in_expr(a, f);
                }
            }
            Expr::InList { expr, list, .. } => {
                in_expr(expr, f);
                for i in list {
                    in_expr(i, f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                in_expr(expr, f);
                in_expr(low, f);
                in_expr(high, f);
            }
            Expr::Like { expr, pattern, .. } => {
                in_expr(expr, f);
                in_expr(pattern, f);
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    in_expr(op, f);
                }
                for (w, t) in branches {
                    in_expr(w, f);
                    in_expr(t, f);
                }
                if let Some(e) = else_branch {
                    in_expr(e, f);
                }
            }
            Expr::Column(_) | Expr::Literal(_) => {}
        }
    }
    for item in &mut s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            in_expr(expr, f);
        }
    }
    if let Some(w) = &mut s.where_clause {
        in_expr(w, f);
    }
    if let Some(h) = &mut s.having {
        in_expr(h, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::printer::to_sql;

    #[derive(Default)]
    struct Collector {
        tables: Vec<(String, usize)>,
        columns: Vec<String>,
        comparisons: Vec<String>,
        subqueries: usize,
    }

    impl Visitor for Collector {
        fn visit_table(&mut self, name: &str, _alias: Option<&str>, depth: usize) {
            self.tables.push((name.to_string(), depth));
        }
        fn visit_column(&mut self, col: &ColumnRef, _depth: usize) {
            self.columns.push(col.to_string());
        }
        fn visit_comparison(&mut self, col: &ColumnRef, op: BinaryOp, lit: &Literal, _d: usize) {
            self.comparisons.push(format!("{col} {op} {lit:?}"));
        }
        fn enter_subquery(&mut self, _depth: usize) {
            self.subqueries += 1;
        }
    }

    fn collect(sql: &str) -> Collector {
        let stmt = parse_statement(sql).unwrap();
        let mut c = Collector::default();
        walk_statement(&mut c, &stmt);
        c
    }

    #[test]
    fn collects_tables_at_depths() {
        let c = collect(
            "SELECT * FROM a, b WHERE x IN (SELECT y FROM c WHERE EXISTS (SELECT * FROM d))",
        );
        assert_eq!(
            c.tables,
            vec![
                ("a".to_string(), 0),
                ("b".to_string(), 0),
                ("c".to_string(), 1),
                ("d".to_string(), 2)
            ]
        );
        assert_eq!(c.subqueries, 2);
    }

    #[test]
    fn collects_comparisons_both_orientations() {
        let c = collect("SELECT * FROM t WHERE temp < 18 AND 5 <= depth");
        assert_eq!(c.comparisons.len(), 2);
        assert!(c.comparisons[0].starts_with("temp <"));
        // `5 <= depth` is surfaced as `depth >= 5`.
        assert!(c.comparisons[1].starts_with("depth >="));
    }

    #[test]
    fn collects_join_on_columns() {
        let c = collect("SELECT * FROM a JOIN b ON a.x = b.y");
        assert!(c.columns.contains(&"a.x".to_string()));
        assert!(c.columns.contains(&"b.y".to_string()));
    }

    #[test]
    fn rewrite_column_qualified_by_alias() {
        let mut s = match parse_statement(
            "SELECT S.temp FROM WaterTemp S WHERE S.temp < 18 ORDER BY S.temp",
        )
        .unwrap()
        {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let n = rewrite_columns(&mut s, "WaterTemp", "temp", "temperature");
        assert_eq!(n, 3);
        let sql = to_sql(&Statement::Select(s));
        assert!(!sql.contains("temp <"), "{sql}");
        assert!(sql.contains("S.temperature"), "{sql}");
    }

    #[test]
    fn rewrite_column_skips_other_tables() {
        let mut s = match parse_statement(
            "SELECT S.temp, L.temp FROM WaterTemp S, AirTemp L WHERE S.temp < 18",
        )
        .unwrap()
        {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let n = rewrite_columns(&mut s, "AirTemp", "temp", "air_temp");
        assert_eq!(n, 1);
        let sql = to_sql(&Statement::Select(s));
        assert!(sql.contains("L.air_temp"), "{sql}");
        assert!(sql.contains("S.temp"), "{sql}");
    }

    #[test]
    fn rewrite_table_keeps_bindings() {
        let mut s =
            match parse_statement("SELECT WaterTemp.temp FROM WaterTemp WHERE temp < 9").unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
        let n = rewrite_tables(&mut s, "WaterTemp", "LakeTemp");
        assert_eq!(n, 1);
        let sql = to_sql(&Statement::Select(s));
        // New table name with the old name as alias keeps references valid.
        assert!(sql.contains("LakeTemp AS WaterTemp"), "{sql}");
    }

    #[test]
    fn rewrite_table_in_subquery() {
        let mut s =
            match parse_statement("SELECT * FROM t WHERE x IN (SELECT y FROM old_t)").unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
        let n = rewrite_tables(&mut s, "old_t", "new_t");
        assert_eq!(n, 1);
        assert!(to_sql(&Statement::Select(s)).contains("new_t"));
    }
}
