//! Recursive-descent parser with precedence-climbing expressions.
//!
//! The parser consumes the token stream produced by [`crate::lexer::Lexer`]
//! and produces the [`crate::ast`] types. Errors carry the span of the
//! offending token and the set of alternatives the parser would have
//! accepted, which the CQMS correction/completion engines exploit.

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::lexer::Lexer;
use crate::token::{Keyword, Token, TokenKind};

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.error_here("expected `;` between statements"));
        }
    }
}

/// Parse a standalone scalar expression (used by tests and meta-query tools).
pub fn parse_expression(sql: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Token-stream parser. Construct with [`Parser::new`], then call
/// [`Parser::statement`] or [`Parser::expr`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Tokenize `sql` and position the parser at the first token.
    pub fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: Lexer::tokenize(sql)?,
            pos: 0,
        })
    }

    // ------------------------------------------------------------------
    // Token-stream helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn advance(&mut self) -> &TokenKind {
        let idx = self.pos;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        &self.tokens[idx].kind
    }

    /// Has the parser consumed all input?
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        self.peek().is_keyword(kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self
                .error_here(format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ))
                .with_expected(vec![kind.describe()]))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self
                .error_here(format!(
                    "expected keyword {kw}, found {}",
                    self.peek().describe()
                ))
                .with_expected(vec![kw.as_str().to_string()]))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "unexpected trailing input: {}",
                self.peek().describe()
            )))
        }
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek_span())
    }

    /// Accept an identifier (bare or quoted). Keywords are *not* identifiers.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self
                .error_here(format!("expected identifier, found {}", other.describe()))
                .with_expected(vec!["identifier".into()])),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parse one statement at the current position.
    pub fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Create) => self.create_table(),
            TokenKind::Keyword(Keyword::Update) => self.update(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            TokenKind::Keyword(Keyword::Drop) => self.drop_table(),
            TokenKind::Keyword(Keyword::Alter) => self.alter(),
            other => Err(self
                .error_here(format!("expected a statement, found {}", other.describe()))
                .with_expected(
                    [
                        "SELECT", "INSERT", "CREATE", "UPDATE", "DELETE", "DROP", "ALTER",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                )),
        }
    }

    /// Parse a SELECT statement (entry point also used for subqueries).
    pub fn select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        if self.eat_kw(Keyword::All) {
            // `SELECT ALL` is the explicit default.
        }

        let projection = self.projection_list()?;

        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw(Keyword::Limit) {
            Some(self.unsigned_int("LIMIT")?)
        } else {
            None
        };
        let offset = if self.eat_kw(Keyword::Offset) {
            Some(self.unsigned_int("OFFSET")?)
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            projection,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned_int(&mut self, ctx: &str) -> Result<u64, ParseError> {
        match self.peek().clone() {
            TokenKind::NumberLit(n) => {
                let v = n.parse::<u64>().map_err(|_| {
                    self.error_here(format!("{ctx} expects a non-negative integer, got `{n}`"))
                })?;
                self.advance();
                Ok(v)
            }
            other => Err(self.error_here(format!(
                "{ctx} expects an integer, found {}",
                other.describe()
            ))),
        }
    }

    fn projection_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        // Tolerate the paper's partial query `SELECT FROM a, b` (empty
        // projection) only when immediately followed by FROM: the assisted
        // mode needs to parse exactly this shape (§2.2).
        if self.check_kw(Keyword::From) {
            return Ok(items);
        }
        loop {
            items.push(self.projection_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn projection_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek_ahead(1) == &TokenKind::Dot && self.peek_ahead(2) == &TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As)
            || matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let alias = self.table_alias()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_kw(Keyword::Inner) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.eat_kw(Keyword::Left) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::LeftOuter
            } else if self.eat_kw(Keyword::Right) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::RightOuter
            } else if self.eat_kw(Keyword::Full) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::FullOuter
            } else if self.eat_kw(Keyword::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.ident()?;
            let alias = self.table_alias()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw(Keyword::On)?;
                Some(self.expr()?)
            };
            joins.push(JoinClause {
                kind,
                table,
                alias,
                on,
            });
        }
        Ok(TableRef { name, alias, joins })
    }

    fn table_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.ident()?));
        }
        if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_)) {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parse an expression at the lowest precedence (OR).
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            // Postfix predicates (IS NULL, IN, BETWEEN, LIKE, NOT ...):
            // they bind tighter than AND/OR but looser than comparisons.
            const PREDICATE_BP: u8 = 3;
            if min_bp <= PREDICATE_BP {
                match self.try_postfix_predicate(lhs)? {
                    Ok(wrapped) => {
                        lhs = wrapped;
                        continue;
                    }
                    Err(original) => lhs = original, // fall through to binary ops
                }
            }

            let Some(op) = self.peek_binary_op() else {
                return Ok(lhs);
            };
            let bp = op.precedence();
            if bp < min_bp {
                return Ok(lhs);
            }
            self.advance();
            let rhs = self.expr_bp(bp + 1)?;
            lhs = Expr::binary(lhs, op, rhs);
        }
    }

    /// Try to wrap `lhs` with a postfix predicate. The outer `Result` is a
    /// parse failure; the inner value is `Ok(wrapped)` when a predicate was
    /// consumed and `Err(lhs)` (handing the expression back) when not.
    #[allow(clippy::type_complexity)]
    fn try_postfix_predicate(&mut self, lhs: Expr) -> Result<Result<Expr, Expr>, ParseError> {
        // IS [NOT] NULL
        if self.check_kw(Keyword::Is) {
            self.advance();
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            }));
        }

        // NOT IN / NOT BETWEEN / NOT LIKE
        let negated = if self.check_kw(Keyword::Not)
            && matches!(
                self.peek_ahead(1),
                TokenKind::Keyword(Keyword::In)
                    | TokenKind::Keyword(Keyword::Between)
                    | TokenKind::Keyword(Keyword::Like)
            ) {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            if self.check_kw(Keyword::Select) {
                let sub = self.select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    subquery: Box::new(sub),
                    negated,
                }));
            }
            let mut list = Vec::new();
            if !self.check(&TokenKind::RParen) {
                loop {
                    list.push(self.expr_bp(4)?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            }));
        }

        if self.eat_kw(Keyword::Between) {
            let low = self.expr_bp(4)?;
            self.expect_kw(Keyword::And)?;
            let high = self.expr_bp(4)?;
            return Ok(Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            }));
        }

        if self.eat_kw(Keyword::Like) {
            let pattern = self.expr_bp(4)?;
            return Ok(Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            }));
        }

        if negated {
            // We consumed NOT but no predicate followed — cannot happen
            // given the lookahead above.
            return Err(self.error_here("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(Err(lhs))
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        Some(match self.peek() {
            TokenKind::Keyword(Keyword::Or) => BinaryOp::Or,
            TokenKind::Keyword(Keyword::And) => BinaryOp::And,
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            TokenKind::Plus => BinaryOp::Plus,
            TokenKind::Minus => BinaryOp::Minus,
            TokenKind::Star => BinaryOp::Mul,
            TokenKind::Slash => BinaryOp::Div,
            TokenKind::Percent => BinaryOp::Mod,
            TokenKind::Concat => BinaryOp::Concat,
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let e = self.expr_bp(3)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            // Fold `-<numeric literal>` into a negative literal so that
            // predicate constants like `temp < -5` extract as the value -5.
            return Ok(match e {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(f)) => Expr::Literal(Literal::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Plus,
                expr: Box::new(e),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::NumberLit(n) => {
                self.advance();
                if let Ok(i) = n.parse::<i64>() {
                    Ok(Expr::Literal(Literal::Int(i)))
                } else {
                    let f = n
                        .parse::<f64>()
                        .map_err(|_| self.error_here(format!("invalid numeric literal `{n}`")))?;
                    Ok(Expr::Literal(Literal::Float(f)))
                }
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Placeholder => {
                self.advance();
                Ok(Expr::Literal(Literal::Placeholder))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let sub = self.select()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    subquery: Box::new(sub),
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Case) => self.case_expr(),
            TokenKind::LParen => {
                self.advance();
                if self.check_kw(Keyword::Select) {
                    let sub = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => self.ident_expr(),
            other => Err(self
                .error_here(format!("expected expression, found {}", other.describe()))
                .with_expected(vec![
                    "literal".into(),
                    "column".into(),
                    "function".into(),
                    "(".into(),
                ])),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.check_kw(Keyword::When) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }

    /// Identifier-led expression: column ref, qualified column or function.
    fn ident_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            if self.eat(&TokenKind::Star) {
                // `t.*` only valid in projections; handled there. Here it is
                // an error, but give a precise message.
                return Err(self.error_here("`.*` is only valid in the SELECT list"));
            }
            let name = self.ident()?;
            return Ok(Expr::Column(ColumnRef::qualified(first, name)));
        }
        if self.eat(&TokenKind::LParen) {
            // Function call.
            let distinct = self.eat_kw(Keyword::Distinct);
            if self.eat(&TokenKind::Star) {
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Function {
                    name: first,
                    args: Vec::new(),
                    distinct,
                    star: true,
                });
            }
            let mut args = Vec::new();
            if !self.check(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name: first,
                args,
                distinct,
                star: false,
            });
        }
        Ok(Expr::Column(ColumnRef::bare(first)))
    }

    // ------------------------------------------------------------------
    // Non-SELECT statements
    // ------------------------------------------------------------------

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            if !self.check(&TokenKind::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStatement {
            table,
            columns,
            rows,
        }))
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Create)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTableStatement {
            name,
            columns,
        }))
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::Int) | TokenKind::Keyword(Keyword::Integer) => {
                DataType::Int
            }
            TokenKind::Keyword(Keyword::Float)
            | TokenKind::Keyword(Keyword::Real)
            | TokenKind::Keyword(Keyword::Double) => DataType::Float,
            TokenKind::Keyword(Keyword::Text) | TokenKind::Keyword(Keyword::Varchar) => {
                DataType::Text
            }
            TokenKind::Keyword(Keyword::Boolean) => DataType::Bool,
            other => {
                return Err(self
                    .error_here(format!("expected data type, found {}", other.describe()))
                    .with_expected(vec![
                        "INT".into(),
                        "FLOAT".into(),
                        "TEXT".into(),
                        "BOOLEAN".into(),
                    ]))
            }
        };
        self.advance();
        // Accept and ignore VARCHAR(n) length.
        if self.eat(&TokenKind::LParen) {
            self.unsigned_int("VARCHAR length")?;
            self.expect(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let val = self.expr()?;
            assignments.push((col, val));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStatement {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStatement {
            table,
            where_clause,
        }))
    }

    fn drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        Ok(Statement::DropTable(self.ident()?))
    }

    fn alter(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Alter)?;
        self.expect_kw(Keyword::Table)?;
        let table = self.ident()?;
        if self.eat_kw(Keyword::Rename) {
            if self.eat_kw(Keyword::Column) {
                let from = self.ident()?;
                self.expect_kw(Keyword::To)?;
                let to = self.ident()?;
                return Ok(Statement::AlterRenameColumn { table, from, to });
            }
            self.expect_kw(Keyword::To)?;
            let to = self.ident()?;
            return Ok(Statement::AlterRenameTable { table, to });
        }
        if self.eat_kw(Keyword::Drop) {
            self.eat_kw(Keyword::Column);
            let column = self.ident()?;
            return Ok(Statement::AlterDropColumn { table, column });
        }
        if self.eat_kw(Keyword::Add) {
            self.eat_kw(Keyword::Column);
            let column = self.ident()?;
            let data_type = self.data_type()?;
            return Ok(Statement::AlterAddColumn {
                table,
                column,
                data_type,
            });
        }
        Err(self
            .error_here("expected RENAME, DROP or ADD after ALTER TABLE")
            .with_expected(vec!["RENAME".into(), "DROP".into(), "ADD".into()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStatement {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure1_meta_query() {
        // The verbatim meta-query from Figure 1 of the paper.
        let s = sel("SELECT Q.qid, Q.qText \
             FROM Queries Q, Attributes A1, Attributes A2 \
             WHERE Q.qid = A1.qid AND Q.qid = A2.qid \
             AND A1.attrName = 'salinity' \
             AND A1.relName = 'WaterSalinity' \
             AND A2.attrName = 'temp' \
             AND A2.relName = 'WaterTemp'");
        assert_eq!(s.projection.len(), 2);
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].name, "Attributes");
        assert_eq!(s.from[1].alias.as_deref(), Some("A1"));
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 6);
    }

    #[test]
    fn parses_figure3_query() {
        // The query being composed in Figure 3 (completed form).
        let s = sel(
            "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
             WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y \
             AND L.city IN (SELECT City FROM Cities WHERE State = 'WA')",
        );
        assert_eq!(s.from.len(), 3);
        let w = s.where_clause.unwrap();
        let conj = w.conjuncts();
        assert_eq!(conj.len(), 4);
        assert!(matches!(conj[3], Expr::InSubquery { .. }));
    }

    #[test]
    fn and_or_precedence() {
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        // Must parse as a=1 OR (b=2 AND c=3).
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("expected AND on the right, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Plus,
                right,
                ..
            } => assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::Mul,
                    ..
                }
            )),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_precedence() {
        let e = parse_expression("NOT a = 1 AND b = 2").unwrap();
        // NOT binds the comparison, not the conjunction.
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                ..
            } => assert!(matches!(
                *left,
                Expr::Unary {
                    op: UnaryOp::Not,
                    ..
                }
            )),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_boundary() {
        // The AND inside BETWEEN must not be confused with conjunction.
        let e = parse_expression("temp BETWEEN 10 AND 20 AND depth > 5").unwrap();
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[0], Expr::Between { .. }));
    }

    #[test]
    fn negated_predicates() {
        assert!(matches!(
            parse_expression("x NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT LIKE '%lake%'").unwrap(),
            Expr::Like { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT BETWEEN 1 AND 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = sel(
            "SELECT lake, COUNT(*), AVG(temp) AS avg_temp FROM WaterTemp \
             GROUP BY lake HAVING COUNT(*) > 10 ORDER BY avg_temp DESC LIMIT 5",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(5));
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Function { name, star, .. },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert!(*star);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_joins() {
        let s = sel("SELECT * FROM WaterSalinity S LEFT OUTER JOIN WaterTemp T \
             ON S.loc_x = T.loc_x CROSS JOIN CityLocations");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].joins.len(), 2);
        assert_eq!(s.from[0].joins[0].kind, JoinKind::LeftOuter);
        assert_eq!(s.from[0].joins[1].kind, JoinKind::Cross);
        assert!(s.from[0].joins[1].on.is_none());
    }

    #[test]
    fn nested_subqueries() {
        let s = sel("SELECT city FROM CityLocations WHERE pop > \
             (SELECT AVG(pop) FROM CityLocations) AND EXISTS \
             (SELECT * FROM Lakes WHERE Lakes.state = CityLocations.state)");
        let w = s.where_clause.unwrap();
        assert!(w.contains_subquery());
    }

    #[test]
    fn distinct_and_qualified_wildcard() {
        let s = sel("SELECT DISTINCT T.* FROM WaterTemp T");
        assert!(s.distinct);
        assert_eq!(s.projection[0], SelectItem::QualifiedWildcard("T".into()));
    }

    #[test]
    fn partial_query_empty_projection() {
        // §2.2: the client may send `SELECT FROM a, b` while the user is
        // still typing; the feature-query generator needs its FROM list.
        let s = sel("SELECT FROM WaterSalinity, WaterTemperature");
        assert!(s.projection.is_empty());
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn create_insert_update_delete() {
        let c = parse_statement("CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOLEAN)").unwrap();
        match c {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.columns.len(), 4);
                assert_eq!(ct.columns[1], ("b".into(), DataType::Float));
            }
            other => panic!("{other:?}"),
        }
        let i = parse_statement("INSERT INTO t (a, b) VALUES (1, 2.5), (3, 4.5)").unwrap();
        match i {
            Statement::Insert(ins) => {
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.columns, vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1 WHERE b = 2").unwrap(),
            Statement::Update(_)
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete(_)
        ));
    }

    #[test]
    fn alter_statements() {
        assert_eq!(
            parse_statement("ALTER TABLE t RENAME COLUMN a TO b").unwrap(),
            Statement::AlterRenameColumn {
                table: "t".into(),
                from: "a".into(),
                to: "b".into()
            }
        );
        assert_eq!(
            parse_statement("ALTER TABLE t DROP COLUMN a").unwrap(),
            Statement::AlterDropColumn {
                table: "t".into(),
                column: "a".into()
            }
        );
        assert_eq!(
            parse_statement("ALTER TABLE t ADD COLUMN x FLOAT").unwrap(),
            Statement::AlterAddColumn {
                table: "t".into(),
                column: "x".into(),
                data_type: DataType::Float
            }
        );
        assert_eq!(
            parse_statement("ALTER TABLE t RENAME TO u").unwrap(),
            Statement::AlterRenameTable {
                table: "t".into(),
                to: "u".into()
            }
        );
    }

    #[test]
    fn multi_statement_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_reports_expected() {
        let err = parse_statement("SELECT * FROM").unwrap_err();
        assert!(err.expected.contains(&"identifier".to_string()));
        let err = parse_statement("SELEC * FROM t").unwrap_err();
        assert!(err.message.contains("SELEC"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn case_expression() {
        let e = parse_expression(
            "CASE WHEN temp < 10 THEN 'cold' WHEN temp < 25 THEN 'mild' ELSE 'warm' END",
        )
        .unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 2);
                assert!(else_branch.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_of_strings() {
        let e = parse_expression("state IN ('WA', 'OR', 'ID')").unwrap();
        match e {
            Expr::InList { list, .. } => assert_eq!(list.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_with_distinct() {
        let e = parse_expression("COUNT(DISTINCT lake)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn limit_offset() {
        let s = sel("SELECT * FROM t LIMIT 10 OFFSET 20");
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(20));
    }
}
