//! Query canonicalisation.
//!
//! The paper (§4.3) proposes comparing queries via *"parse tree similarity,
//! perhaps after removing the constants from the tree"*. This module provides
//! the two normalisation passes behind that idea:
//!
//! * [`canonicalize`] — case-folds identifiers/function names and normalises
//!   table aliases to positional names (`t1`, `t2`, …), so that queries that
//!   differ only in capitalisation or alias choice become structurally equal.
//! * [`strip_constants`] — additionally replaces every data constant with a
//!   `?` placeholder, producing the query *template* used for clustering and
//!   popularity counting.

use crate::ast::*;
use std::collections::HashMap;

/// Canonicalize a statement: lowercase identifiers, uppercase function
/// names (via the printer), positional table aliases.
pub fn canonicalize(stmt: &Statement) -> Statement {
    let mut out = stmt.clone();
    match &mut out {
        Statement::Select(s) => canonicalize_select(s),
        Statement::Insert(i) => {
            i.table = fold(&i.table);
            for c in &mut i.columns {
                *c = fold(c);
            }
        }
        Statement::CreateTable(c) => {
            c.name = fold(&c.name);
            for (name, _) in &mut c.columns {
                *name = fold(name);
            }
        }
        Statement::Update(u) => {
            u.table = fold(&u.table);
            for (c, e) in &mut u.assignments {
                *c = fold(c);
                fold_expr(e);
            }
            if let Some(w) = &mut u.where_clause {
                fold_expr(w);
            }
        }
        Statement::Delete(d) => {
            d.table = fold(&d.table);
            if let Some(w) = &mut d.where_clause {
                fold_expr(w);
            }
        }
        Statement::DropTable(t) => *t = fold(t),
        Statement::AlterRenameColumn { table, from, to } => {
            *table = fold(table);
            *from = fold(from);
            *to = fold(to);
        }
        Statement::AlterDropColumn { table, column } => {
            *table = fold(table);
            *column = fold(column);
        }
        Statement::AlterAddColumn { table, column, .. } => {
            *table = fold(table);
            *column = fold(column);
        }
        Statement::AlterRenameTable { table, to } => {
            *table = fold(table);
            *to = fold(to);
        }
    }
    out
}

/// Canonicalize and strip constants, producing the query template.
pub fn strip_constants(stmt: &Statement) -> Statement {
    let mut out = canonicalize(stmt);
    if let Statement::Select(s) = &mut out {
        strip_select(s);
    }
    out
}

fn fold(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// Case-fold identifiers inside an expression (no alias mapping); used for
/// the DML statements that have no FROM-clause aliases.
fn fold_expr(e: &mut Expr) {
    let no_alias_map = |q: &mut Option<String>| {
        if let Some(qq) = q {
            *qq = qq.to_ascii_lowercase();
        }
    };
    fn walk(e: &mut Expr, map_q: &impl Fn(&mut Option<String>)) {
        match e {
            Expr::Column(c) => {
                c.name = c.name.to_ascii_lowercase();
                map_q(&mut c.qualifier);
            }
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk(expr, map_q),
            Expr::Binary { left, right, .. } => {
                walk(left, map_q);
                walk(right, map_q);
            }
            Expr::Function { name, args, .. } => {
                *name = name.to_ascii_uppercase();
                for a in args {
                    walk(a, map_q);
                }
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, map_q);
                for i in list {
                    walk(i, map_q);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                walk(expr, map_q);
                canonicalize_select(subquery);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, map_q);
                walk(low, map_q);
                walk(high, map_q);
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, map_q);
                walk(pattern, map_q);
            }
            Expr::Exists { subquery, .. } => canonicalize_select(subquery),
            Expr::ScalarSubquery(sub) => canonicalize_select(sub),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    walk(op, map_q);
                }
                for (w, t) in branches {
                    walk(w, map_q);
                    walk(t, map_q);
                }
                if let Some(el) = else_branch {
                    walk(el, map_q);
                }
            }
        }
    }
    walk(e, &no_alias_map);
}

/// Canonicalize a SELECT in place (recursing into subqueries).
pub fn canonicalize_select(s: &mut SelectStatement) {
    // Build the alias map: every table binding becomes `t<i>`.
    let mut alias_map: HashMap<String, String> = HashMap::new();
    let mut counter = 0usize;
    for t in &mut s.from {
        counter += 1;
        let new_alias = format!("t{counter}");
        alias_map.insert(fold(t.binding_name()), new_alias.clone());
        // Table name itself also resolves columns when unaliased.
        alias_map
            .entry(fold(&t.name))
            .or_insert_with(|| new_alias.clone());
        t.name = fold(&t.name);
        t.alias = Some(new_alias);
        for j in &mut t.joins {
            counter += 1;
            let ja = format!("t{counter}");
            alias_map.insert(fold(j.binding_name()), ja.clone());
            alias_map
                .entry(fold(&j.table))
                .or_insert_with(|| ja.clone());
            j.table = fold(&j.table);
            j.alias = Some(ja);
        }
    }

    let map_qualifier = |q: &mut Option<String>| {
        if let Some(qq) = q {
            let folded = fold(qq);
            if let Some(new) = alias_map.get(&folded) {
                *q = Some(new.clone());
            } else {
                *q = Some(folded);
            }
        }
    };

    fn canon_expr(e: &mut Expr, map_q: &impl Fn(&mut Option<String>)) {
        match e {
            Expr::Column(c) => {
                c.name = c.name.to_ascii_lowercase();
                map_q(&mut c.qualifier);
            }
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => canon_expr(expr, map_q),
            Expr::Binary { left, right, .. } => {
                canon_expr(left, map_q);
                canon_expr(right, map_q);
            }
            Expr::Function { name, args, .. } => {
                *name = name.to_ascii_uppercase();
                for a in args {
                    canon_expr(a, map_q);
                }
            }
            Expr::InList { expr, list, .. } => {
                canon_expr(expr, map_q);
                for i in list {
                    canon_expr(i, map_q);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                canon_expr(expr, map_q);
                canonicalize_select(subquery);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                canon_expr(expr, map_q);
                canon_expr(low, map_q);
                canon_expr(high, map_q);
            }
            Expr::Like { expr, pattern, .. } => {
                canon_expr(expr, map_q);
                canon_expr(pattern, map_q);
            }
            Expr::Exists { subquery, .. } => canonicalize_select(subquery),
            Expr::ScalarSubquery(sub) => canonicalize_select(sub),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    canon_expr(op, map_q);
                }
                for (w, t) in branches {
                    canon_expr(w, map_q);
                    canon_expr(t, map_q);
                }
                if let Some(el) = else_branch {
                    canon_expr(el, map_q);
                }
            }
        }
    }

    for item in &mut s.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(q) => {
                let folded = fold(q);
                if let Some(new) = alias_map.get(&folded) {
                    *q = new.clone();
                } else {
                    *q = folded;
                }
            }
            SelectItem::Expr { expr, alias } => {
                canon_expr(expr, &map_qualifier);
                if let Some(a) = alias {
                    *a = fold(a);
                }
            }
        }
    }
    let mut on_exprs: Vec<&mut Expr> = Vec::new();
    for t in &mut s.from {
        for j in &mut t.joins {
            if let Some(on) = &mut j.on {
                on_exprs.push(on);
            }
        }
    }
    for on in on_exprs {
        canon_expr(on, &map_qualifier);
    }
    if let Some(w) = &mut s.where_clause {
        canon_expr(w, &map_qualifier);
    }
    for e in &mut s.group_by {
        canon_expr(e, &map_qualifier);
    }
    if let Some(h) = &mut s.having {
        canon_expr(h, &map_qualifier);
    }
    for o in &mut s.order_by {
        canon_expr(&mut o.expr, &map_qualifier);
    }
}

/// Replace all data constants in a SELECT with placeholders, in place.
pub fn strip_select(s: &mut SelectStatement) {
    fn strip_expr(e: &mut Expr) {
        match e {
            Expr::Literal(l) => {
                if l.is_constant() {
                    *l = Literal::Placeholder;
                }
            }
            Expr::Column(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => strip_expr(expr),
            Expr::Binary { left, right, .. } => {
                strip_expr(left);
                strip_expr(right);
            }
            Expr::Function { args, .. } => args.iter_mut().for_each(strip_expr),
            Expr::InList { expr, list, .. } => {
                strip_expr(expr);
                list.iter_mut().for_each(strip_expr);
            }
            Expr::InSubquery { expr, subquery, .. } => {
                strip_expr(expr);
                strip_select(subquery);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                strip_expr(expr);
                strip_expr(low);
                strip_expr(high);
            }
            Expr::Like { expr, pattern, .. } => {
                strip_expr(expr);
                strip_expr(pattern);
            }
            Expr::Exists { subquery, .. } => strip_select(subquery),
            Expr::ScalarSubquery(sub) => strip_select(sub),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    strip_expr(op);
                }
                for (w, t) in branches {
                    strip_expr(w);
                    strip_expr(t);
                }
                if let Some(el) = else_branch {
                    strip_expr(el);
                }
            }
        }
    }
    for item in &mut s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            strip_expr(expr);
        }
    }
    let mut on_exprs: Vec<&mut Expr> = Vec::new();
    for t in &mut s.from {
        for j in &mut t.joins {
            if let Some(on) = &mut j.on {
                on_exprs.push(on);
            }
        }
    }
    for on in on_exprs {
        strip_expr(on);
    }
    if let Some(w) = &mut s.where_clause {
        strip_expr(w);
    }
    for e in &mut s.group_by {
        strip_expr(e);
    }
    if let Some(h) = &mut s.having {
        strip_expr(h);
    }
    for o in &mut s.order_by {
        strip_expr(&mut o.expr);
    }
    // LIMIT/OFFSET values are part of the template (they change semantics
    // more than a predicate constant does), so they are kept.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn canon(sql: &str) -> Statement {
        canonicalize(&parse_statement(sql).unwrap())
    }

    fn template(sql: &str) -> Statement {
        strip_constants(&parse_statement(sql).unwrap())
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            canon("SELECT Temp FROM WaterTemp WHERE TEMP < 18"),
            canon("select temp from watertemp where temp < 18")
        );
    }

    #[test]
    fn alias_normalisation() {
        assert_eq!(
            canon("SELECT S.temp FROM WaterTemp S WHERE S.temp < 18"),
            canon("SELECT W.temp FROM WaterTemp W WHERE W.temp < 18")
        );
        // Qualification via the table's own name also normalises.
        assert_eq!(
            canon("SELECT WaterTemp.temp FROM WaterTemp"),
            canon("SELECT X.temp FROM WaterTemp X")
        );
    }

    #[test]
    fn alias_normalisation_does_not_conflate_tables() {
        assert_ne!(canon("SELECT a.x FROM a, b"), canon("SELECT b.x FROM a, b"));
    }

    #[test]
    fn templates_equal_across_constants() {
        assert_eq!(
            template("SELECT * FROM t WHERE temp < 18"),
            template("SELECT * FROM t WHERE temp < 22")
        );
        assert_eq!(
            template("SELECT * FROM t WHERE city = 'Seattle'"),
            template("SELECT * FROM t WHERE city = 'Olympia'")
        );
    }

    #[test]
    fn templates_distinguish_structure() {
        assert_ne!(
            template("SELECT * FROM t WHERE temp < 18"),
            template("SELECT * FROM t WHERE temp > 18")
        );
        assert_ne!(
            template("SELECT * FROM t WHERE temp < 18"),
            template("SELECT * FROM t WHERE depth < 18")
        );
    }

    #[test]
    fn strip_keeps_limit() {
        let t = template("SELECT * FROM t WHERE a = 1 LIMIT 5");
        match t {
            Statement::Select(s) => assert_eq!(s.limit, Some(5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn canonical_output_reparses() {
        let sql = "SELECT S.temp, AVG(t.x) FROM WaterTemp S JOIN Other t ON S.id = t.id \
                   WHERE S.temp < 18 GROUP BY S.temp ORDER BY S.temp";
        let c = canon(sql);
        let printed = crate::printer::to_sql(&c);
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(canonicalize(&reparsed), c);
    }

    #[test]
    fn subquery_aliases_are_scoped() {
        let a = canon("SELECT * FROM a WHERE x IN (SELECT y FROM b B WHERE B.z = 1)");
        let b = canon("SELECT * FROM a WHERE x IN (SELECT y FROM b C WHERE C.z = 1)");
        assert_eq!(a, b);
    }

    #[test]
    fn placeholder_survives_roundtrip() {
        let t = template("SELECT * FROM t WHERE a = 5");
        let printed = crate::printer::to_sql(&t);
        assert!(printed.contains('?'), "{printed}");
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(strip_constants(&reparsed), t);
    }
}
