//! Offline shim for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so this path crate
//! provides a minimal, API-compatible bench harness covering the surface the
//! `cqms-bench` targets use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`. It measures wall-clock means over a
//! bounded number of samples and prints one line per benchmark:
//!
//! ```text
//! group/function/param ... mean 123.4 us (10 samples)
//! ```
//!
//! When the `CQMS_BENCH_JSON` environment variable names a file, each result
//! is also appended there as a JSON line
//! (`{"id": "...", "mean_ns": ..., "samples": ...}`) — the hook the
//! repo-level `BENCH_seed.json` baseline is collected through.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// (total elapsed, iterations) per sample, filled by `iter`.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run the routine until the warm-up budget elapses, and use
        // the observed rate to pick an iteration count per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std_black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }

    fn mean_ns(&self) -> f64 {
        let (total, iters) = self
            .samples
            .iter()
            .fold((Duration::ZERO, 0u64), |(d, n), (sd, sn)| (d + *sd, n + sn));
        if iters == 0 {
            return 0.0;
        }
        total.as_nanos() as f64 / iters as f64
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id().full);
        let mut b = self.bencher();
        f(&mut b);
        self.criterion.report(&full_id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.full);
        let mut b = self.bencher();
        f(&mut b, input);
        self.criterion.report(&full_id, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        }
    }
}

/// Conversions accepted where Criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// The harness entry point.
pub struct Criterion {
    json_sink: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            json_sink: std::env::var("CQMS_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = id.into_benchmark_id().full;
        let mut b = Bencher {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&full_id, &b);
        self
    }

    pub fn final_summary(&mut self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        let mean = b.mean_ns();
        let samples = b.samples.len();
        let human = if mean >= 1e9 {
            format!("{:.3} s", mean / 1e9)
        } else if mean >= 1e6 {
            format!("{:.3} ms", mean / 1e6)
        } else if mean >= 1e3 {
            format!("{:.3} us", mean / 1e3)
        } else {
            format!("{mean:.1} ns")
        };
        println!("{id:<50} mean {human} ({samples} samples)");
        if let Some(path) = &self.json_sink {
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(
                    f,
                    "{{\"id\": \"{id}\", \"mean_ns\": {mean:.1}, \"samples\": {samples}}}"
                );
            }
        }
    }
}

/// Define a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` / `--list` compatibility: a bare
            // `--list` run must not execute the benches.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { json_sink: None };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 500);
        assert_eq!(id.full, "f/500");
    }
}
