//! Offline shim for the `rand` crate.
//!
//! The build environment has no route to crates.io, so this path crate
//! provides the subset of `rand` 0.8's API the workspace uses — seeded
//! `StdRng`, `gen`, `gen_range` over integer and float ranges, and
//! `gen_bool` — on top of the xoshiro256++ generator (public-domain
//! algorithm by Blackman & Vigna) seeded via SplitMix64, exactly like the
//! real `rand`'s small-rng family. Streams are deterministic per seed; the
//! workload generators depend on that, not on matching upstream `rand`'s
//! byte-for-byte output.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Core 64-bit generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T` (for floats,
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty,
    /// matching `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable from the "standard" distribution.
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges `gen_range` accepts (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via Lemire's unbiased multiply-shift rejection.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * n as u128) >> 64) as u64;
        let lo = x.wrapping_mul(n);
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_sample_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // start + u*(end-start) can round up to exactly `end` for u near 1;
        // clamp to preserve the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f32::sample(rng) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    /// The standard deterministic generator (xoshiro256++ here; the real
    /// crate uses ChaCha12 — only determinism-per-seed is relied upon).
    pub type StdRng = super::Xoshiro256PlusPlus;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(1u32..=12);
            assert!((1..=12).contains(&y));
            let f = r.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
