//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no route to crates.io, so this path crate
//! provides the subset of `parking_lot`'s API the workspace uses, backed by
//! `std::sync`. Unlike std, `parking_lot` locks are not poisoned by a
//! panicking holder; the shim matches that by ignoring poison.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A reader-writer lock with `parking_lot`'s non-poisoning guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking read: `None` when a writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write: `None` when any other guard is held.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking lock: `None` when the mutex is currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_variants_fail_under_contention() {
        let m = Mutex::new(0);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());

        let rw = RwLock::new(0);
        {
            let _w = rw.write();
            assert!(rw.try_read().is_none());
            assert!(rw.try_write().is_none());
        }
        {
            let _r = rw.read();
            assert!(rw.try_read().is_some());
            assert!(rw.try_write().is_none());
        }
    }
}
