//! Case execution: configuration, RNG, and the run loop.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: discard the case without prejudice.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Wraps the workspace's deterministic
/// `StdRng`; strategies draw through `rand::Rng`.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Raw 64 uniform bits (used by `any`).
    pub fn next_raw(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runs the cases of one `proptest!` test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Stable per-name seed: failures reproduce without a persistence
        // file. `PROPTEST_SEED` perturbs every test's stream at once.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                seed ^= extra;
            }
        }
        TestRunner { config, name, seed }
    }

    /// Run until `config.cases` cases pass. Panics on the first failing
    /// case with the case index and seed; rejected cases are skipped (with
    /// a global budget so a pathological `prop_assume!` cannot spin
    /// forever).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_seed(self.seed);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_budget = u64::from(self.config.cases) * 16 + 1024;
        let mut index: u64 = 0;
        while passed < self.config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        // Matching proptest's spirit: too many rejects is a
                        // generator bug, not a property failure.
                        panic!(
                            "proptest '{}': too many rejected cases ({rejected})",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed at case {index} (seed {:#x}):\n{msg}",
                        self.name, self.seed
                    );
                }
            }
            index += 1;
        }
    }
}
