//! The [`Strategy`] trait and its combinators (generation-only; no
//! shrinking — see the crate docs for the accepted differences from the
//! real proptest).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree: `generate` directly
/// produces a value from the RNG.
pub trait Strategy: 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { source: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the recursive cases, to a maximum
    /// nesting of `depth`. (`_desired_size` / `_expected_branch_size` shape
    /// shrinking-era size control in the real crate and are ignored here.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T: 'static> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// String literals act as regex-subset string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// A `Vec` of strategies generates element-wise (needed by
/// `prop_flat_map` idioms that build one strategy per slot).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
