//! Offline shim for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so this path crate
//! provides the subset of proptest's API this workspace's property tests
//! use: the [`strategy::Strategy`] combinators (`prop_map`, `prop_flat_map`,
//! `prop_recursive`, `boxed`), range / tuple / `Vec` / `&str`-regex
//! strategies, `proptest::option::of`, `proptest::collection::vec`, and the
//! `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and message and
//!   panics; it does not minimise the input.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so CI failures reproduce locally without a seed file.
//! * `&str` strategies support the regex subset the workspace actually
//!   writes: character classes (with ranges and escapes), `\PC`, and
//!   `{m,n}` repetition.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};

/// `proptest::arbitrary` subset: [`arbitrary::any`] over primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_raw() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_raw() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Bounded "any" float: keeps arithmetic in tests finite.
            rng.gen_range(-1e9..1e9)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('a')
        }
    }

    /// Strategy yielding arbitrary values of `A`.
    pub struct AnyStrategy<A>(PhantomData<fn() -> A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The `proptest::prelude::any` entry point.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

/// `proptest::option` subset.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(value)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// `proptest::collection` subset.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element` values with length inside `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface test files rely on.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define a function returning a strategy composed from named sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($fnargs:tt)*)
        ($($field:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnargs)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($field,)+)| $body,
            )
        }
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n{}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case (does not count as a failure) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default());
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, rng);
                let mut case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}
