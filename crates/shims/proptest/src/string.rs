//! Regex-subset string generation for `&str` strategies.
//!
//! Supports exactly the constructs this workspace's tests write:
//! character classes `[a-z0-9_%-]` (ranges, escapes, literal `-` at the
//! edges), escape atoms (`\t`, `\n`, `\\`, …), the `\PC` "printable"
//! category, and `{m,n}` / `{n}` repetition. Anything else is treated as a
//! literal character.

use crate::test_runner::TestRng;
use rand::Rng;

/// One generatable atom plus its repetition bounds.
struct Item {
    set: CharSet,
    min: u32,
    max: u32,
}

enum CharSet {
    /// Inclusive codepoint ranges.
    Ranges(Vec<(char, char)>),
    /// `\PC`: printable characters (ASCII printable plus a few multibyte
    /// letters so lexer-totality tests see non-ASCII input).
    Printable,
}

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Printable => {
                const EXTRA: [char; 4] = ['é', 'λ', '中', '€'];
                if rng.gen_bool(0.05) {
                    EXTRA[rng.gen_range(0..EXTRA.len())]
                } else {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).unwrap();
                    }
                    pick -= span;
                }
                unreachable!("char pick out of range")
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in strategy pattern"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                break;
            }
            '-' => {
                // Range if we hold a start char and the next char closes
                // neither the class nor the pattern; else literal '-'.
                match (pending.take(), chars.peek()) {
                    (Some(lo), Some(&next)) if next != ']' => {
                        let hi = {
                            let n = chars.next().unwrap();
                            if n == '\\' {
                                unescape(chars.next().unwrap())
                            } else {
                                n
                            }
                        };
                        assert!(lo <= hi, "inverted class range in strategy pattern");
                        ranges.push((lo, hi));
                    }
                    (lo, _) => {
                        if let Some(p) = lo {
                            ranges.push((p, p));
                        }
                        ranges.push(('-', '-'));
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(unescape(chars.next().unwrap())) {
                    ranges.push((p, p));
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    ranges.push((p, p));
                }
            }
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in strategy pattern"
    );
    CharSet::Ranges(ranges)
}

/// Parse `{m,n}` / `{n}` if present; default is exactly one.
fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad {m,n} lower bound"),
            n.trim().parse().expect("bad {m,n} upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("bad {n} repetition");
            (n, n)
        }
    }
}

fn parse(pattern: &str) -> Vec<Item> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars),
            '\\' => {
                let esc = chars
                    .next()
                    .expect("dangling backslash in strategy pattern");
                if esc == 'P' || esc == 'p' {
                    // Unicode category atom; the only one used is `\PC`
                    // ("not Other" ≈ printable).
                    let _category = chars.next().expect("\\P needs a category");
                    CharSet::Printable
                } else {
                    let ch = unescape(esc);
                    CharSet::Ranges(vec![(ch, ch)])
                }
            }
            other => CharSet::Ranges(vec![(other, other)]),
        };
        let (min, max) = parse_repeat(&mut chars);
        items.push(Item { set, min, max });
    }
    items
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for item in parse(pattern) {
        let count = rng.gen_range(item.min..=item.max);
        for _ in 0..count {
            out.push(item.set.pick(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(1)
    }

    #[test]
    fn class_with_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literal_dash_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 \t\n\\\\'\"%_-]{0,40}", &mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " \t\n\\'\"%_-".contains(c)));
        }
    }

    #[test]
    fn printable_category() {
        let mut r = rng();
        let mut saw_len = [false; 2];
        for _ in 0..100 {
            let s = generate("\\PC{0,100}", &mut r);
            assert!(s.chars().count() <= 100);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_len[usize::from(!s.is_empty())] = true;
        }
        assert!(saw_len[1], "never generated a non-empty string");
    }

    #[test]
    fn fixed_repetition() {
        let mut r = rng();
        let s = generate("[x]{3}", &mut r);
        assert_eq!(s, "xxx");
    }
}
