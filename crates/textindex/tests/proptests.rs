//! Property tests: both indexes must agree exactly with the naïve
//! reference implementation over arbitrary documents and queries.

use proptest::prelude::*;
use textindex::{InvertedIndex, TrigramIndex};

fn doc_strategy() -> impl Strategy<Value = String> {
    // Words from a small vocabulary + punctuation, so queries actually hit.
    proptest::collection::vec(
        prop_oneof![
            Just("select"),
            Just("from"),
            Just("where"),
            Just("WaterTemp"),
            Just("WaterSalinity"),
            Just("temp"),
            Just("salinity"),
            Just("18"),
            Just("<"),
            Just("lake_x"),
        ],
        1..12,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trigram substring search = naive `contains` filter (case-insensitive).
    #[test]
    fn trigram_matches_naive(
        docs in proptest::collection::vec(doc_strategy(), 1..20),
        needle in prop_oneof![
            Just("water"), Just("temp"), Just("salin"), Just("18"),
            Just("waterTemp wh"), Just("zzz"), Just("e_x"),
        ],
    ) {
        let mut ix = TrigramIndex::new();
        for (i, d) in docs.iter().enumerate() {
            ix.add(i as u64, d);
        }
        let got = ix.search(needle);
        let want: Vec<u64> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.to_lowercase().contains(&needle.to_lowercase()))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Boolean-AND keyword search = naive all-terms filter over tokens.
    #[test]
    fn inverted_all_terms_matches_naive(
        docs in proptest::collection::vec(doc_strategy(), 1..20),
        q in prop_oneof![Just("water temp"), Just("salinity"), Just("select 18")],
    ) {
        let mut ix = InvertedIndex::new();
        for (i, d) in docs.iter().enumerate() {
            ix.add(i as u64, d);
        }
        let got = ix.search_all_terms(q);
        let qterms: Vec<String> = textindex::tokenize(q);
        let want: Vec<u64> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                let toks: std::collections::HashSet<String> =
                    textindex::tokenize(d).into_iter().collect();
                qterms.iter().all(|t| toks.contains(t))
            })
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Removal really removes; re-adding really restores.
    #[test]
    fn tombstone_lifecycle(
        docs in proptest::collection::vec(doc_strategy(), 2..10),
        victim in 0usize..10,
    ) {
        let victim = victim % docs.len();
        let mut inv = InvertedIndex::new();
        let mut tri = TrigramIndex::new();
        for (i, d) in docs.iter().enumerate() {
            inv.add(i as u64, d);
            tri.add(i as u64, d);
        }
        inv.remove(victim as u64);
        tri.remove(victim as u64);
        for hit in inv.search("select water temp salinity 18", 100) {
            prop_assert_ne!(hit.doc, victim as u64);
        }
        prop_assert!(!tri.search(&docs[victim]).contains(&(victim as u64)));
        // Restore.
        inv.add(victim as u64, &docs[victim]);
        tri.add(victim as u64, &docs[victim]);
        prop_assert!(inv.contains(victim as u64));
        prop_assert!(tri.search(&docs[victim]).contains(&(victim as u64)));
    }

    /// TF-IDF scores are deterministic and k-bounded.
    #[test]
    fn search_deterministic_and_bounded(
        docs in proptest::collection::vec(doc_strategy(), 1..15),
        k in 1usize..8,
    ) {
        let mut ix = InvertedIndex::new();
        for (i, d) in docs.iter().enumerate() {
            ix.add(i as u64, d);
        }
        let a = ix.search("water temp", k);
        let b = ix.search("water temp", k);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= k);
        for w in a.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }
}
