//! TF-IDF inverted index with top-k retrieval.
//!
//! The index is built on the copy-on-write collections from `cqms-cow` so
//! a [`Clone`] is a handful of `Arc` bumps plus the delta head — cheap
//! enough for the CQMS write path to publish a fresh `ReadSnapshot` per
//! logged query. Postings are **generation-stamped**: re-adding a document
//! bumps its generation instead of purging old postings, and an entry only
//! counts when its stamp matches the document's current generation and the
//! document is live. Stale entries are reclaimed by [`InvertedIndex::compact`].

use crate::tokenize::tokenize;
use cqms_cow::{CowMap, SegVec};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc: u64,
    pub score: f64,
}

/// One posting entry: `doc` contained the term `tf` times as of the
/// document's generation `gen`. Entries with a stale `gen` are masked.
#[derive(Debug, Clone, Copy)]
struct Posting {
    doc: u64,
    tf: u32,
    gen: u32,
}

/// Per-document bookkeeping: current generation, token count (for length
/// normalisation), live flag, and distinct-term count (for stale
/// accounting).
#[derive(Debug, Clone, Copy)]
struct DocInfo {
    gen: u32,
    len: u32,
    live: bool,
    terms: u32,
}

/// Inverted index mapping terms to generation-stamped postings, with
/// document lengths for cosine-style normalisation and tombstoned
/// deletion. Cloning shares all sealed state by pointer.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// term → (doc, tf, gen) postings, in insertion order.
    postings: CowMap<String, SegVec<Posting>>,
    /// doc → generation / length / liveness.
    docs: CowMap<u64, DocInfo>,
    /// Live (non-tombstoned) document count.
    live: usize,
    /// Posting entries masked by re-adds or tombstones since the last
    /// compaction.
    stale: usize,
    /// Total posting entries currently stored (live + stale).
    entries: usize,
}

impl InvertedIndex {
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Does `p` count under the current document state?
    fn is_current(&self, p: &Posting) -> bool {
        self.docs
            .get(&p.doc)
            .is_some_and(|i| i.live && i.gen == p.gen)
    }

    /// Add a document. Re-adding an id replaces the old content (the old
    /// postings are masked by the generation bump, not purged).
    pub fn add(&mut self, doc: u64, text: &str) {
        let prev = self.docs.get(&doc).copied();
        let gen = prev.map(|p| p.gen.wrapping_add(1)).unwrap_or(0);
        match prev {
            Some(p) => {
                if p.live {
                    // Old entries now masked by the generation bump.
                    self.stale += p.terms as usize;
                } else {
                    self.live += 1; // resurrect: entries already counted stale
                }
            }
            None => self.live += 1,
        }
        let tokens = tokenize(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        let distinct = tf.len() as u32;
        for (term, f) in tf {
            self.postings
                .entry_or_default(term)
                .push(Posting { doc, tf: f, gen });
            self.entries += 1;
        }
        self.docs.insert(
            doc,
            DocInfo {
                gen,
                len: tokens.len().max(1) as u32,
                live: true,
                terms: distinct,
            },
        );
    }

    /// Tombstone a document.
    pub fn remove(&mut self, doc: u64) {
        let Some(info) = self.docs.get(&doc).copied() else {
            return;
        };
        if info.live {
            if let Some(m) = self.docs.get_mut(&doc) {
                m.live = false;
            }
            self.live -= 1;
            self.stale += info.terms as usize;
        }
    }

    pub fn contains(&self, doc: u64) -> bool {
        self.docs.get(&doc).is_some_and(|i| i.live)
    }

    /// TF-IDF search returning the top `k` documents.
    ///
    /// Score = Σ_term tf(term, doc) · idf(term) / √len(doc); idf uses the
    /// classic `ln(1 + N/df)` damping, with N and df taken from this index.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let df = self.query_term_dfs(query);
        self.search_with_corpus(query, k, self.len() as u64, &df)
    }

    /// Document frequency of each distinct query term among live documents.
    /// Terms absent from the index report 0 so callers can sum df maps
    /// across shards without special-casing misses.
    pub fn query_term_dfs(&self, query: &str) -> HashMap<String, u64> {
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        let mut out = HashMap::with_capacity(qterms.len());
        for term in qterms {
            let df = self
                .postings
                .get(&term)
                .map(|posts| posts.iter().filter(|p| self.is_current(p)).count() as u64)
                .unwrap_or(0);
            out.insert(term, df);
        }
        out
    }

    /// TF-IDF search scored against externally supplied corpus statistics:
    /// `total_docs` live documents and per-term document frequencies `df`.
    ///
    /// This is what makes sharded keyword search score-identical to an
    /// unsharded index: each shard scans only its own postings but weighs
    /// terms with the *global* N and df (summed over shards via
    /// [`InvertedIndex::len`] and [`InvertedIndex::query_term_dfs`]), so a
    /// document's score is independent of which shard holds it.
    pub fn search_with_corpus(
        &self,
        query: &str,
        k: usize,
        total_docs: u64,
        df: &HashMap<String, u64>,
    ) -> Vec<SearchHit> {
        let n = total_docs.max(1) as f64;
        let mut scores: HashMap<u64, f64> = HashMap::new();
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        for term in &qterms {
            let Some(posts) = self.postings.get(term) else {
                continue;
            };
            let dfv = df.get(term).copied().unwrap_or(0).max(1) as f64;
            let idf = (1.0 + n / dfv).ln();
            for p in posts.iter() {
                let Some(info) = self.docs.get(&p.doc) else {
                    continue;
                };
                if !info.live || info.gen != p.gen {
                    continue;
                }
                let len = info.len as f64;
                *scores.entry(p.doc).or_insert(0.0) += (p.tf as f64) * idf / len.sqrt();
            }
        }
        top_k(scores, k)
    }

    /// Documents containing *all* query terms (boolean AND), unranked.
    pub fn search_all_terms(&self, query: &str) -> Vec<u64> {
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        if qterms.is_empty() {
            return Vec::new();
        }
        let mut sets: Vec<HashSet<u64>> = Vec::with_capacity(qterms.len());
        for term in &qterms {
            let set: HashSet<u64> = self
                .postings
                .get(term)
                .map(|posts| {
                    posts
                        .iter()
                        .filter(|p| self.is_current(p))
                        .map(|p| p.doc)
                        .collect()
                })
                .unwrap_or_default();
            if set.is_empty() {
                return Vec::new();
            }
            sets.push(set);
        }
        // Intersect starting from the smallest set.
        sets.sort_by_key(HashSet::len);
        let (first, rest) = sets.split_first().unwrap();
        let mut out: Vec<u64> = first
            .iter()
            .filter(|d| rest.iter().all(|s| s.contains(*d)))
            .copied()
            .collect();
        out.sort();
        out
    }

    /// Delta entries accumulated since the last [`InvertedIndex::seal`] —
    /// the per-clone copy cost.
    pub fn head_len(&self) -> usize {
        self.postings.head_len() + self.docs.head_len()
    }

    /// Fold the delta heads into fresh sealed generations so subsequent
    /// clones are pure `Arc` bumps.
    pub fn seal(&mut self) {
        self.postings.seal();
        self.docs.seal();
    }

    /// Are ≥¼ of the stored posting entries masked (stale generation or
    /// tombstoned document)?
    pub fn needs_compaction(&self) -> bool {
        self.stale > 0 && self.stale * 4 >= self.entries
    }

    /// Rebuild the postings keeping only current entries, dropping
    /// tombstoned documents entirely.
    pub fn compact(&mut self) {
        let mut entries = 0usize;
        let mut new_posts: HashMap<String, SegVec<Posting>> = HashMap::new();
        for (term, posts) in self.postings.iter() {
            let kept: SegVec<Posting> = posts
                .iter()
                .filter(|p| self.is_current(p))
                .copied()
                .collect();
            if !kept.is_empty() {
                entries += kept.len();
                new_posts.insert(term.clone(), kept);
            }
        }
        let new_docs: HashMap<u64, DocInfo> = self
            .docs
            .iter()
            .filter(|(_, i)| i.live)
            .map(|(d, i)| (*d, *i))
            .collect();
        self.postings.reseal_from(new_posts);
        self.docs.reseal_from(new_docs);
        self.entries = entries;
        self.stale = 0;
    }
}

/// Extract the `k` highest-scoring hits (stable by doc id on ties).
fn top_k(scores: HashMap<u64, f64>, k: usize) -> Vec<SearchHit> {
    #[derive(PartialEq)]
    struct Entry(f64, u64);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    let mut heap: BinaryHeap<Entry> = scores.into_iter().map(|(d, s)| Entry(s, d)).collect();
    let mut out = Vec::with_capacity(k.min(heap.len()));
    for _ in 0..k {
        match heap.pop() {
            Some(Entry(score, doc)) => out.push(SearchHit { doc, score }),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        ix.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        ix.add(
            3,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T",
        );
        ix.add(4, "SELECT city FROM CityLocations WHERE state = 'WA'");
        ix
    }

    #[test]
    fn finds_by_keyword() {
        let ix = index();
        let hits = ix.search("salinity", 10);
        let docs: Vec<u64> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&1));
        assert!(docs.contains(&3));
        assert!(!docs.contains(&2));
    }

    #[test]
    fn multi_term_prefers_doc_with_both() {
        let ix = index();
        let hits = ix.search("salinity temp", 10);
        assert_eq!(hits[0].doc, 3, "{hits:?}");
    }

    #[test]
    fn camel_case_components_searchable() {
        let ix = index();
        let hits = ix.search("water", 10);
        assert!(hits.len() >= 3);
    }

    #[test]
    fn k_limits_results() {
        let ix = index();
        assert_eq!(ix.search("select", 2).len(), 2);
    }

    #[test]
    fn removal_hides_documents() {
        let mut ix = index();
        assert!(ix.contains(1));
        ix.remove(1);
        assert!(!ix.contains(1));
        let docs: Vec<u64> = ix.search("salinity", 10).iter().map(|h| h.doc).collect();
        assert!(!docs.contains(&1));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn replacement_updates_content() {
        let mut ix = index();
        ix.add(2, "SELECT lake FROM Lakes");
        let docs: Vec<u64> = ix.search("temp", 10).iter().map(|h| h.doc).collect();
        assert!(!docs.contains(&2));
        let docs: Vec<u64> = ix.search("lakes", 10).iter().map(|h| h.doc).collect();
        assert!(docs.contains(&2));
    }

    #[test]
    fn boolean_and_search() {
        let ix = index();
        assert_eq!(ix.search_all_terms("salinity temp"), vec![3]);
        assert!(ix.search_all_terms("salinity nonexistent").is_empty());
        assert!(ix.search_all_terms("").is_empty());
    }

    #[test]
    fn empty_query_no_hits() {
        let ix = index();
        assert!(ix.search("", 5).is_empty());
        assert!(ix.search("zzz_unknown", 5).is_empty());
    }

    #[test]
    fn sharded_search_with_global_corpus_matches_unsharded() {
        // Split the corpus across two shards; searching each shard with the
        // summed (global) corpus statistics must reproduce the unsharded
        // scores bit-for-bit.
        let full = index();
        let mut shard_a = InvertedIndex::new();
        let mut shard_b = InvertedIndex::new();
        shard_a.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        shard_b.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        shard_a.add(
            3,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T",
        );
        shard_b.add(4, "SELECT city FROM CityLocations WHERE state = 'WA'");

        let q = "select water salinity";
        let n = (shard_a.len() + shard_b.len()) as u64;
        let mut df = shard_a.query_term_dfs(q);
        for (term, d) in shard_b.query_term_dfs(q) {
            *df.entry(term).or_insert(0) += d;
        }
        let mut merged: Vec<SearchHit> = shard_a
            .search_with_corpus(q, 10, n, &df)
            .into_iter()
            .chain(shard_b.search_with_corpus(q, 10, n, &df))
            .collect();
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.doc.cmp(&b.doc))
        });
        assert_eq!(merged, full.search(q, 10));
    }

    #[test]
    fn scores_are_positive_and_sorted() {
        let ix = index();
        let hits = ix.search("select water", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(hits.iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn clone_is_a_consistent_snapshot() {
        let mut ix = index();
        let snap = ix.clone();
        ix.add(2, "SELECT lake FROM Lakes");
        ix.remove(1);
        ix.add(9, "SELECT brand_new FROM Elsewhere");
        // The snapshot still answers from the pre-mutation state.
        let docs: Vec<u64> = snap.search("temp", 10).iter().map(|h| h.doc).collect();
        assert!(docs.contains(&2));
        assert!(snap.contains(1));
        assert!(!snap.contains(9));
        assert_eq!(snap.len(), 4);
        // And the live index sees the mutations.
        assert!(!ix.contains(1));
        assert!(ix.contains(9));
    }

    #[test]
    fn seal_and_compact_preserve_results() {
        let mut ix = index();
        ix.add(2, "SELECT lake FROM Lakes"); // replacement → stale postings
        ix.remove(4);
        let want_salinity = ix.search("salinity water", 10);
        let want_dfs = ix.query_term_dfs("select water temp");
        ix.seal();
        assert_eq!(ix.head_len(), 0);
        assert_eq!(ix.search("salinity water", 10), want_salinity);
        ix.compact();
        assert_eq!(ix.search("salinity water", 10), want_salinity);
        assert_eq!(ix.query_term_dfs("select water temp"), want_dfs);
        assert_eq!(ix.len(), 3);
        assert!(!ix.needs_compaction());
        assert!(!ix.contains(4));
        // A compacted index keeps accepting writes.
        ix.add(4, "SELECT city FROM CityLocations WHERE state = 'WA'");
        assert!(ix.contains(4));
        assert_eq!(ix.len(), 4);
    }

    #[test]
    fn stale_accounting_drives_needs_compaction() {
        let mut ix = InvertedIndex::new();
        for d in 0..8u64 {
            ix.add(d, "SELECT a FROM T WHERE b = 1");
        }
        assert!(!ix.needs_compaction());
        for d in 0..4u64 {
            ix.remove(d);
        }
        assert!(ix.needs_compaction());
        ix.compact();
        assert!(!ix.needs_compaction());
        assert_eq!(ix.len(), 4);
    }
}
