//! TF-IDF inverted index with top-k retrieval.

use crate::tokenize::tokenize;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc: u64,
    pub score: f64,
}

/// Inverted index mapping terms to postings, with document lengths for
/// cosine-style normalisation and tombstoned deletion.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// term → (doc, term frequency) postings, in insertion order.
    postings: HashMap<String, Vec<(u64, u32)>>,
    /// doc → token count (for length normalisation).
    doc_len: HashMap<u64, u32>,
    /// doc → its distinct terms (needed to purge postings on replacement).
    terms_of: HashMap<u64, Vec<String>>,
    deleted: HashSet<u64>,
}

impl InvertedIndex {
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.doc_len.len() - self.deleted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add a document. Re-adding an id replaces the old content.
    pub fn add(&mut self, doc: u64, text: &str) {
        // Replacement: purge the old postings first.
        if let Some(old_terms) = self.terms_of.remove(&doc) {
            for term in old_terms {
                if let Some(posts) = self.postings.get_mut(&term) {
                    posts.retain(|(d, _)| *d != doc);
                    if posts.is_empty() {
                        self.postings.remove(&term);
                    }
                }
            }
        }
        self.deleted.remove(&doc);
        let tokens = tokenize(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        let mut terms: Vec<String> = Vec::with_capacity(tf.len());
        for (term, f) in tf {
            self.postings
                .entry(term.clone())
                .or_default()
                .push((doc, f));
            terms.push(term);
        }
        self.terms_of.insert(doc, terms);
        self.doc_len.insert(doc, tokens.len().max(1) as u32);
    }

    /// Tombstone a document.
    pub fn remove(&mut self, doc: u64) {
        if self.doc_len.contains_key(&doc) {
            self.deleted.insert(doc);
        }
    }

    pub fn contains(&self, doc: u64) -> bool {
        self.doc_len.contains_key(&doc) && !self.deleted.contains(&doc)
    }

    /// TF-IDF search returning the top `k` documents.
    ///
    /// Score = Σ_term tf(term, doc) · idf(term) / √len(doc); idf uses the
    /// classic `ln(1 + N/df)` damping, with N and df taken from this index.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let df = self.query_term_dfs(query);
        self.search_with_corpus(query, k, self.len() as u64, &df)
    }

    /// Document frequency of each distinct query term among live documents.
    /// Terms absent from the index report 0 so callers can sum df maps
    /// across shards without special-casing misses.
    pub fn query_term_dfs(&self, query: &str) -> HashMap<String, u64> {
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        let mut out = HashMap::with_capacity(qterms.len());
        for term in qterms {
            let df = self
                .postings
                .get(&term)
                .map(|posts| {
                    posts
                        .iter()
                        .filter(|(d, _)| !self.deleted.contains(d))
                        .count() as u64
                })
                .unwrap_or(0);
            out.insert(term, df);
        }
        out
    }

    /// TF-IDF search scored against externally supplied corpus statistics:
    /// `total_docs` live documents and per-term document frequencies `df`.
    ///
    /// This is what makes sharded keyword search score-identical to an
    /// unsharded index: each shard scans only its own postings but weighs
    /// terms with the *global* N and df (summed over shards via
    /// [`InvertedIndex::len`] and [`InvertedIndex::query_term_dfs`]), so a
    /// document's score is independent of which shard holds it.
    pub fn search_with_corpus(
        &self,
        query: &str,
        k: usize,
        total_docs: u64,
        df: &HashMap<String, u64>,
    ) -> Vec<SearchHit> {
        let n = total_docs.max(1) as f64;
        let mut scores: HashMap<u64, f64> = HashMap::new();
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        for term in &qterms {
            let Some(posts) = self.postings.get(term) else {
                continue;
            };
            let dfv = df.get(term).copied().unwrap_or(0).max(1) as f64;
            let idf = (1.0 + n / dfv).ln();
            for (doc, tf) in posts {
                if self.deleted.contains(doc) {
                    continue;
                }
                let len = self.doc_len[doc] as f64;
                *scores.entry(*doc).or_insert(0.0) += (*tf as f64) * idf / len.sqrt();
            }
        }
        top_k(scores, k)
    }

    /// Documents containing *all* query terms (boolean AND), unranked.
    pub fn search_all_terms(&self, query: &str) -> Vec<u64> {
        let mut qterms = tokenize(query);
        qterms.sort();
        qterms.dedup();
        if qterms.is_empty() {
            return Vec::new();
        }
        let mut sets: Vec<HashSet<u64>> = Vec::with_capacity(qterms.len());
        for term in &qterms {
            let set: HashSet<u64> = self
                .postings
                .get(term)
                .map(|p| {
                    p.iter()
                        .filter(|(d, _)| !self.deleted.contains(d))
                        .map(|(d, _)| *d)
                        .collect()
                })
                .unwrap_or_default();
            if set.is_empty() {
                return Vec::new();
            }
            sets.push(set);
        }
        // Intersect starting from the smallest set.
        sets.sort_by_key(HashSet::len);
        let (first, rest) = sets.split_first().unwrap();
        let mut out: Vec<u64> = first
            .iter()
            .filter(|d| rest.iter().all(|s| s.contains(*d)))
            .copied()
            .collect();
        out.sort();
        out
    }
}

/// Extract the `k` highest-scoring hits (stable by doc id on ties).
fn top_k(scores: HashMap<u64, f64>, k: usize) -> Vec<SearchHit> {
    #[derive(PartialEq)]
    struct Entry(f64, u64);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    let mut heap: BinaryHeap<Entry> = scores.into_iter().map(|(d, s)| Entry(s, d)).collect();
    let mut out = Vec::with_capacity(k.min(heap.len()));
    for _ in 0..k {
        match heap.pop() {
            Some(Entry(score, doc)) => out.push(SearchHit { doc, score }),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        ix.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        ix.add(
            3,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T",
        );
        ix.add(4, "SELECT city FROM CityLocations WHERE state = 'WA'");
        ix
    }

    #[test]
    fn finds_by_keyword() {
        let ix = index();
        let hits = ix.search("salinity", 10);
        let docs: Vec<u64> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&1));
        assert!(docs.contains(&3));
        assert!(!docs.contains(&2));
    }

    #[test]
    fn multi_term_prefers_doc_with_both() {
        let ix = index();
        let hits = ix.search("salinity temp", 10);
        assert_eq!(hits[0].doc, 3, "{hits:?}");
    }

    #[test]
    fn camel_case_components_searchable() {
        let ix = index();
        let hits = ix.search("water", 10);
        assert!(hits.len() >= 3);
    }

    #[test]
    fn k_limits_results() {
        let ix = index();
        assert_eq!(ix.search("select", 2).len(), 2);
    }

    #[test]
    fn removal_hides_documents() {
        let mut ix = index();
        assert!(ix.contains(1));
        ix.remove(1);
        assert!(!ix.contains(1));
        let docs: Vec<u64> = ix.search("salinity", 10).iter().map(|h| h.doc).collect();
        assert!(!docs.contains(&1));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn replacement_updates_content() {
        let mut ix = index();
        ix.add(2, "SELECT lake FROM Lakes");
        let docs: Vec<u64> = ix.search("temp", 10).iter().map(|h| h.doc).collect();
        assert!(!docs.contains(&2));
        let docs: Vec<u64> = ix.search("lakes", 10).iter().map(|h| h.doc).collect();
        assert!(docs.contains(&2));
    }

    #[test]
    fn boolean_and_search() {
        let ix = index();
        assert_eq!(ix.search_all_terms("salinity temp"), vec![3]);
        assert!(ix.search_all_terms("salinity nonexistent").is_empty());
        assert!(ix.search_all_terms("").is_empty());
    }

    #[test]
    fn empty_query_no_hits() {
        let ix = index();
        assert!(ix.search("", 5).is_empty());
        assert!(ix.search("zzz_unknown", 5).is_empty());
    }

    #[test]
    fn sharded_search_with_global_corpus_matches_unsharded() {
        // Split the corpus across two shards; searching each shard with the
        // summed (global) corpus statistics must reproduce the unsharded
        // scores bit-for-bit.
        let full = index();
        let mut shard_a = InvertedIndex::new();
        let mut shard_b = InvertedIndex::new();
        shard_a.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        shard_b.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        shard_a.add(
            3,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T",
        );
        shard_b.add(4, "SELECT city FROM CityLocations WHERE state = 'WA'");

        let q = "select water salinity";
        let n = (shard_a.len() + shard_b.len()) as u64;
        let mut df = shard_a.query_term_dfs(q);
        for (term, d) in shard_b.query_term_dfs(q) {
            *df.entry(term).or_insert(0) += d;
        }
        let mut merged: Vec<SearchHit> = shard_a
            .search_with_corpus(q, 10, n, &df)
            .into_iter()
            .chain(shard_b.search_with_corpus(q, 10, n, &df))
            .collect();
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.doc.cmp(&b.doc))
        });
        assert_eq!(merged, full.search(q, 10));
    }

    #[test]
    fn scores_are_positive_and_sorted() {
        let ix = index();
        let hits = ix.search("select water", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(hits.iter().all(|h| h.score > 0.0));
    }
}
