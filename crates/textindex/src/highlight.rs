//! Match-span extraction for client display.
//!
//! The CQMS client underlines why a logged query matched a search (Fig. 3
//! shows matched queries in a panel); this module computes the byte spans to
//! underline.

use crate::tokenize::tokenize;

/// Byte ranges of `text` that match any of the query's terms (whole-token,
/// case-insensitive) — plus, for substring mode, direct occurrences of the
/// raw needle.
pub fn highlight_spans(text: &str, query: &str) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let lower_text = text.to_lowercase();

    // Token matches.
    let terms: Vec<String> = tokenize(query);
    for term in &terms {
        let mut start = 0;
        while let Some(pos) = lower_text[start..].find(term.as_str()) {
            let s = start + pos;
            let e = s + term.len();
            // Require loose word boundaries to avoid mid-token noise.
            let before_ok = s == 0 || !lower_text.as_bytes()[s - 1].is_ascii_alphanumeric();
            let after_ok =
                e >= lower_text.len() || !lower_text.as_bytes()[e].is_ascii_alphanumeric();
            if before_ok && after_ok {
                spans.push((s, e));
            }
            start = e.max(s + 1);
        }
    }

    // Raw needle occurrences (substring mode).
    let needle = query.to_lowercase();
    if needle.len() >= 3 {
        let mut start = 0;
        while let Some(pos) = lower_text[start..].find(&needle) {
            let s = start + pos;
            spans.push((s, s + needle.len()));
            start = s + 1;
        }
    }

    // Merge overlaps.
    spans.sort();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in spans {
        match merged.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Render `text` with `[` `]` markers around matched spans (terminal client).
pub fn render_highlighted(text: &str, query: &str) -> String {
    let spans = highlight_spans(text, query);
    let mut out = String::with_capacity(text.len() + spans.len() * 2);
    let mut pos = 0;
    for (s, e) in spans {
        out.push_str(&text[pos..s]);
        out.push('[');
        out.push_str(&text[s..e]);
        out.push(']');
        pos = e;
    }
    out.push_str(&text[pos..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highlights_whole_tokens() {
        let spans = highlight_spans("SELECT temp FROM WaterTemp", "temp");
        // `temp` as its own token and as a component of WaterTemp.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (7, 11));
    }

    #[test]
    fn highlights_substring_needles() {
        let s = render_highlighted("WHERE temp < 18", "temp < 18");
        assert_eq!(s, "WHERE [temp < 18]");
    }

    #[test]
    fn merges_overlapping_spans() {
        let spans = highlight_spans("temp temp", "temp temp");
        assert_eq!(spans, vec![(0, 9)]);
    }

    #[test]
    fn no_match_no_spans() {
        assert!(highlight_spans("SELECT x FROM t", "salinity").is_empty());
    }

    #[test]
    fn render_roundtrip_without_matches() {
        assert_eq!(render_highlighted("abc", "zzz"), "abc");
    }
}
