//! Trigram index for substring meta-queries.
//!
//! A substring query of length ≥ 3 is answered by intersecting the posting
//! lists of its trigrams and verifying candidates with a direct `contains`
//! check (trigram intersection over-approximates). Shorter queries fall back
//! to a scan over the stored texts, which is still bounded by the log size.

use std::collections::{HashMap, HashSet};

/// Case-insensitive trigram index over document texts.
#[derive(Debug, Default)]
pub struct TrigramIndex {
    grams: HashMap<[u8; 3], Vec<u64>>,
    texts: HashMap<u64, String>,
    deleted: HashSet<u64>,
}

impl TrigramIndex {
    pub fn new() -> Self {
        TrigramIndex::default()
    }

    pub fn len(&self) -> usize {
        self.texts.len() - self.deleted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn trigrams(text: &str) -> HashSet<[u8; 3]> {
        let lower = text.to_lowercase();
        let bytes = lower.as_bytes();
        let mut out = HashSet::new();
        if bytes.len() >= 3 {
            for w in bytes.windows(3) {
                out.insert([w[0], w[1], w[2]]);
            }
        }
        out
    }

    /// Add (or replace) a document.
    pub fn add(&mut self, doc: u64, text: &str) {
        if self.texts.contains_key(&doc) {
            // Replacement: purge old postings lazily via the verify step;
            // remove the doc from grams it no longer has is costly, so we
            // just re-verify against the stored text at query time.
            self.deleted.remove(&doc);
        }
        for g in Self::trigrams(text) {
            let posts = self.grams.entry(g).or_default();
            if posts.last() != Some(&doc) {
                posts.push(doc);
            }
        }
        self.texts.insert(doc, text.to_string());
        self.deleted.remove(&doc);
    }

    pub fn remove(&mut self, doc: u64) {
        if self.texts.contains_key(&doc) {
            self.deleted.insert(doc);
        }
    }

    /// All documents whose text contains `needle` (case-insensitive).
    pub fn search(&self, needle: &str) -> Vec<u64> {
        if needle.is_empty() {
            return Vec::new();
        }
        let lower = needle.to_lowercase();
        let candidates: Vec<u64> = if lower.len() >= 3 {
            let grams = Self::trigrams(&lower);
            let mut lists: Vec<&Vec<u64>> = Vec::new();
            for g in &grams {
                match self.grams.get(g) {
                    Some(l) => lists.push(l),
                    None => return Vec::new(),
                }
            }
            lists.sort_by_key(|l| l.len());
            let (first, rest) = lists.split_first().unwrap();
            let rest_sets: Vec<HashSet<&u64>> = rest.iter().map(|l| l.iter().collect()).collect();
            first
                .iter()
                .filter(|d| rest_sets.iter().all(|s| s.contains(d)))
                .copied()
                .collect()
        } else {
            self.texts.keys().copied().collect()
        };
        let mut out: Vec<u64> = candidates
            .into_iter()
            .filter(|d| !self.deleted.contains(d))
            .filter(|d| {
                self.texts
                    .get(d)
                    .is_some_and(|t| t.to_lowercase().contains(&lower))
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TrigramIndex {
        let mut ix = TrigramIndex::new();
        ix.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        ix.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        ix.add(3, "SELECT city FROM CityLocations");
        ix
    }

    #[test]
    fn substring_search_case_insensitive() {
        let ix = index();
        assert_eq!(ix.search("watersal"), vec![1]);
        assert_eq!(ix.search("WATERSAL"), vec![1]);
        assert_eq!(ix.search("temp <"), vec![2]);
        assert!(ix.search("nothing here").is_empty());
    }

    #[test]
    fn short_needle_fallback() {
        let ix = index();
        // 2-char needles scan; `ci` appears in "city" and "CityLocations".
        assert_eq!(ix.search("ci"), vec![3]);
        assert!(ix.search("").is_empty());
    }

    #[test]
    fn shared_substring_hits_multiple() {
        let ix = index();
        let hits = ix.search("SELECT");
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn removal() {
        let mut ix = index();
        ix.remove(2);
        assert!(ix.search("watertemp").is_empty());
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn replacement_verifies_against_new_text() {
        let mut ix = index();
        ix.add(1, "completely different");
        assert!(ix.search("watersalinity").is_empty());
        assert_eq!(ix.search("different"), vec![1]);
    }

    #[test]
    fn punctuation_substrings() {
        let ix = index();
        assert_eq!(ix.search("> 0.3"), vec![1]);
    }
}
