//! Trigram index for substring meta-queries.
//!
//! A substring query of length ≥ 3 is answered by intersecting the posting
//! lists of its trigrams and verifying candidates with a direct `contains`
//! check (trigram intersection over-approximates). Shorter queries fall back
//! to a scan over the stored texts, which is still bounded by the log size.
//!
//! Built on the `cqms-cow` collections so a [`Clone`] shares all sealed
//! state by pointer — the CQMS read path snapshots this index per request.

use cqms_cow::{CowMap, CowSet, SegVec};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Case-insensitive trigram index over document texts.
#[derive(Debug, Default, Clone)]
pub struct TrigramIndex {
    grams: CowMap<[u8; 3], SegVec<u64>>,
    texts: CowMap<u64, Arc<str>>,
    deleted: CowSet<u64>,
    live: usize,
}

impl TrigramIndex {
    pub fn new() -> Self {
        TrigramIndex::default()
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn trigrams(text: &str) -> HashSet<[u8; 3]> {
        let lower = text.to_lowercase();
        let bytes = lower.as_bytes();
        let mut out = HashSet::new();
        if bytes.len() >= 3 {
            for w in bytes.windows(3) {
                out.insert([w[0], w[1], w[2]]);
            }
        }
        out
    }

    /// Add (or replace) a document.
    pub fn add(&mut self, doc: u64, text: &str) {
        if self.texts.contains_key(&doc) {
            // Replacement: old postings are purged lazily — candidates are
            // re-verified against the stored text at query time, so leftover
            // grams only cost a failed verify until the next compaction.
            if self.deleted.remove(&doc) {
                self.live += 1;
            }
        } else {
            self.live += 1;
        }
        for g in Self::trigrams(text) {
            let posts = self.grams.entry_or_default(g);
            if posts.last() != Some(&doc) {
                posts.push(doc);
            }
        }
        self.texts.insert(doc, Arc::from(text));
        self.deleted.remove(&doc);
    }

    pub fn remove(&mut self, doc: u64) {
        if self.texts.contains_key(&doc) && self.deleted.insert(doc) {
            self.live -= 1;
        }
    }

    /// All documents whose text contains `needle` (case-insensitive).
    pub fn search(&self, needle: &str) -> Vec<u64> {
        if needle.is_empty() {
            return Vec::new();
        }
        let lower = needle.to_lowercase();
        let candidates: Vec<u64> = if lower.len() >= 3 {
            let grams = Self::trigrams(&lower);
            let mut lists: Vec<&SegVec<u64>> = Vec::new();
            for g in &grams {
                match self.grams.get(g) {
                    Some(l) => lists.push(l),
                    None => return Vec::new(),
                }
            }
            lists.sort_by_key(|l| l.len());
            let (first, rest) = lists.split_first().unwrap();
            let rest_sets: Vec<HashSet<u64>> =
                rest.iter().map(|l| l.iter().copied().collect()).collect();
            first
                .iter()
                .filter(|d| rest_sets.iter().all(|s| s.contains(d)))
                .copied()
                .collect()
        } else {
            self.texts.keys().copied().collect()
        };
        let mut out: Vec<u64> = candidates
            .into_iter()
            .filter(|d| !self.deleted.contains(d))
            .filter(|d| {
                self.texts
                    .get(d)
                    .is_some_and(|t| t.to_lowercase().contains(&lower))
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Delta entries accumulated since the last [`TrigramIndex::seal`] —
    /// the per-clone copy cost.
    pub fn head_len(&self) -> usize {
        self.grams.head_len() + self.texts.head_len() + self.deleted.head_len()
    }

    /// Fold the delta heads into fresh sealed generations so subsequent
    /// clones are pure `Arc` bumps.
    pub fn seal(&mut self) {
        self.grams.seal();
        self.texts.seal();
        self.deleted.seal();
    }

    /// Rebuild the gram postings from the live texts, dropping tombstoned
    /// documents and replacement leftovers.
    pub fn compact(&mut self) {
        let mut live_docs: Vec<(u64, Arc<str>)> = self
            .texts
            .iter()
            .filter(|(d, _)| !self.deleted.contains(d))
            .map(|(d, t)| (*d, t.clone()))
            .collect();
        live_docs.sort_by_key(|(d, _)| *d);
        let mut new_grams: HashMap<[u8; 3], SegVec<u64>> = HashMap::new();
        for (doc, text) in &live_docs {
            for g in Self::trigrams(text) {
                new_grams.entry(g).or_default().push(*doc);
            }
        }
        self.grams.reseal_from(new_grams);
        self.texts.reseal_from(live_docs.into_iter().collect());
        self.deleted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TrigramIndex {
        let mut ix = TrigramIndex::new();
        ix.add(1, "SELECT * FROM WaterSalinity WHERE salinity > 0.3");
        ix.add(2, "SELECT * FROM WaterTemp WHERE temp < 18");
        ix.add(3, "SELECT city FROM CityLocations");
        ix
    }

    #[test]
    fn substring_search_case_insensitive() {
        let ix = index();
        assert_eq!(ix.search("watersal"), vec![1]);
        assert_eq!(ix.search("WATERSAL"), vec![1]);
        assert_eq!(ix.search("temp <"), vec![2]);
        assert!(ix.search("nothing here").is_empty());
    }

    #[test]
    fn short_needle_fallback() {
        let ix = index();
        // 2-char needles scan; `ci` appears in "city" and "CityLocations".
        assert_eq!(ix.search("ci"), vec![3]);
        assert!(ix.search("").is_empty());
    }

    #[test]
    fn shared_substring_hits_multiple() {
        let ix = index();
        let hits = ix.search("SELECT");
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn removal() {
        let mut ix = index();
        ix.remove(2);
        assert!(ix.search("watertemp").is_empty());
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn replacement_verifies_against_new_text() {
        let mut ix = index();
        ix.add(1, "completely different");
        assert!(ix.search("watersalinity").is_empty());
        assert_eq!(ix.search("different"), vec![1]);
    }

    #[test]
    fn punctuation_substrings() {
        let ix = index();
        assert_eq!(ix.search("> 0.3"), vec![1]);
    }

    #[test]
    fn clone_is_a_consistent_snapshot() {
        let mut ix = index();
        let snap = ix.clone();
        ix.remove(1);
        ix.add(2, "replaced entirely");
        ix.add(7, "brand new row");
        assert_eq!(snap.search("watersal"), vec![1]);
        assert_eq!(snap.search("temp <"), vec![2]);
        assert!(snap.search("brand new").is_empty());
        assert_eq!(snap.len(), 3);
        assert!(ix.search("watersal").is_empty());
        assert_eq!(ix.search("brand new"), vec![7]);
    }

    #[test]
    fn seal_and_compact_preserve_results() {
        let mut ix = index();
        ix.add(2, "replaced entirely");
        ix.remove(3);
        let want = ix.search("e");
        ix.seal();
        assert_eq!(ix.head_len(), 0);
        assert_eq!(ix.search("e"), want);
        ix.compact();
        assert_eq!(ix.search("e"), want);
        assert_eq!(ix.search("replaced"), vec![2]);
        assert!(ix.search("city").is_empty());
        assert_eq!(ix.len(), 2);
        // A compacted index keeps accepting writes.
        ix.add(3, "SELECT city FROM CityLocations");
        assert_eq!(ix.search("city"), vec![3]);
        assert_eq!(ix.len(), 3);
    }
}
