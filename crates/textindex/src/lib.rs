//! # textindex — keyword & substring search substrate
//!
//! The CQMS must "at minimum provide substring matching and keyword search"
//! over logged query text (paper §2.2). This crate supplies both:
//!
//! * [`inverted::InvertedIndex`] — a TF-IDF-scored inverted index with an
//!   identifier-aware tokenizer (splits `WaterSalinity` and `loc_x` into
//!   searchable terms) and top-k retrieval;
//! * [`trigram::TrigramIndex`] — a trigram index answering arbitrary
//!   substring queries without scanning every document;
//! * [`highlight`] — match-span extraction for client-side display.
//!
//! Documents are identified by caller-provided `u64` ids (the CQMS uses its
//! query ids). Removal is supported via tombstones so the Administrative
//! Interaction Mode can delete queries (§2.4).

pub mod highlight;
pub mod inverted;
pub mod tokenize;
pub mod trigram;

pub use highlight::highlight_spans;
pub use inverted::{InvertedIndex, SearchHit};
pub use tokenize::tokenize;
pub use trigram::TrigramIndex;
