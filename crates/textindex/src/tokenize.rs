//! Identifier-aware tokenizer.
//!
//! SQL text is mostly identifiers, keywords and literals. Users searching a
//! query log type things like `salinity temp` and expect to find
//! `SELECT * FROM WaterSalinity, WaterTemp`, so the tokenizer:
//!
//! * lowercases everything,
//! * splits on non-alphanumerics,
//! * additionally splits `snake_case` and `CamelCase` identifiers into their
//!   components **and** keeps the whole identifier as a token,
//! * keeps numbers as tokens.

/// Tokenize `text` into lowercase terms.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric() && c != '_') {
        if raw.is_empty() {
            continue;
        }
        let whole = raw.to_lowercase();
        let parts = split_identifier(raw);
        if parts.len() > 1 {
            for p in &parts {
                out.push(p.clone());
            }
        }
        out.push(whole);
    }
    out
}

/// Split an identifier on `_` boundaries and lower↔upper transitions.
/// `WaterSalinity` → `["water", "salinity"]`; `loc_x` → `["loc", "x"]`.
fn split_identifier(s: &str) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = s.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' {
            if !cur.is_empty() {
                parts.push(std::mem::take(&mut cur));
            }
            continue;
        }
        // CamelCase boundary: lowercase/digit followed by uppercase, or
        // uppercase followed by uppercase+lowercase (`SQLQuery` → sql query).
        if !cur.is_empty() && c.is_uppercase() {
            let prev = chars[i - 1];
            let next_lower = chars.get(i + 1).is_some_and(|n| n.is_lowercase());
            if prev.is_lowercase() || prev.is_numeric() || (prev.is_uppercase() && next_lower) {
                parts.push(std::mem::take(&mut cur));
            }
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_camel_case() {
        assert_eq!(split_identifier("WaterSalinity"), vec!["water", "salinity"]);
        assert_eq!(split_identifier("SQLQuery"), vec!["sql", "query"]);
        assert_eq!(split_identifier("loc_x"), vec!["loc", "x"]);
        assert_eq!(split_identifier("simple"), vec!["simple"]);
    }

    #[test]
    fn tokenizes_sql() {
        let toks = tokenize("SELECT * FROM WaterSalinity WHERE temp < 18");
        assert!(toks.contains(&"select".to_string()));
        assert!(toks.contains(&"watersalinity".to_string()));
        assert!(toks.contains(&"water".to_string()));
        assert!(toks.contains(&"salinity".to_string()));
        assert!(toks.contains(&"18".to_string()));
    }

    #[test]
    fn keeps_whole_and_parts() {
        let toks = tokenize("loc_x");
        assert!(toks.contains(&"loc_x".to_string()));
        assert!(toks.contains(&"loc".to_string()));
        assert!(toks.contains(&"x".to_string()));
    }

    #[test]
    fn empty_and_punctuation() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("();,.").is_empty());
    }

    #[test]
    fn quoted_strings_tokenize_their_words() {
        let toks = tokenize("lake = 'Lake Washington'");
        assert!(toks.contains(&"washington".to_string()));
    }
}
