//! SQL semantics edge cases for the executor, beyond the module unit tests:
//! expression grouping, null handling in joins/aggregates, nested
//! correlation, CASE, scalar functions, self-joins.

use relstore::{Engine, Value};

fn engine() -> Engine {
    let mut e = Engine::new();
    e.execute("CREATE TABLE readings (id INT, lake TEXT, temp FLOAT, month INT)")
        .unwrap();
    e.execute(
        "INSERT INTO readings VALUES \
         (1, 'washington', 12.0, 1), \
         (2, 'washington', 14.0, 2), \
         (3, 'union', 20.0, 1), \
         (4, 'union', 22.0, 7), \
         (5, 'sammamish', 9.0, 8), \
         (6, NULL, NULL, NULL)",
    )
    .unwrap();
    e
}

#[test]
fn group_by_expression() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT month % 2 AS parity, COUNT(*) FROM readings \
             WHERE month IS NOT NULL GROUP BY month % 2 ORDER BY parity",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Int(0)); // months 2, 8
    assert_eq!(r.rows[0][1], Value::Int(2));
    assert_eq!(r.rows[1][1], Value::Int(3)); // months 1, 1, 7
}

#[test]
fn count_distinct_and_nulls() {
    let mut e = engine();
    let r = e
        .execute("SELECT COUNT(lake), COUNT(DISTINCT lake), COUNT(*) FROM readings")
        .unwrap();
    // COUNT(col) skips NULL; DISTINCT collapses; COUNT(*) counts all.
    assert_eq!(r.rows[0][0], Value::Int(5));
    assert_eq!(r.rows[0][1], Value::Int(3));
    assert_eq!(r.rows[0][2], Value::Int(6));
}

#[test]
fn order_by_expression_not_projected() {
    let mut e = engine();
    let r = e
        .execute("SELECT id FROM readings WHERE temp IS NOT NULL ORDER BY temp * -1")
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![4, 3, 2, 1, 5]); // descending temp
}

#[test]
fn having_without_group_by() {
    let mut e = engine();
    let r = e
        .execute("SELECT COUNT(*) FROM readings HAVING COUNT(*) > 100")
        .unwrap();
    assert!(r.rows.is_empty());
    let r = e
        .execute("SELECT COUNT(*) FROM readings HAVING COUNT(*) > 2")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn in_list_null_semantics() {
    let mut e = engine();
    // `month IN (1, NULL)`: matches month=1; unknown (not false) otherwise,
    // so non-matching rows are filtered, not errored.
    let r = e
        .execute("SELECT id FROM readings WHERE month IN (1, NULL) ORDER BY id")
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![1, 3]);
    // NOT IN with NULL in the list never matches anything (UNKNOWN).
    let r = e
        .execute("SELECT id FROM readings WHERE month NOT IN (1, NULL)")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn self_join() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT a.id, b.id FROM readings a, readings b \
             WHERE a.lake = b.lake AND a.id < b.id",
        )
        .unwrap();
    // washington: (1,2); union: (3,4). NULL lakes never join.
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn doubly_nested_correlated_subquery() {
    let mut e = engine();
    e.execute("CREATE TABLE lakes (lake TEXT, state TEXT)")
        .unwrap();
    e.execute("INSERT INTO lakes VALUES ('washington', 'WA'), ('union', 'WA'), ('tahoe', 'CA')")
        .unwrap();
    let r = e
        .execute(
            "SELECT lake FROM lakes WHERE EXISTS \
             (SELECT * FROM readings WHERE readings.lake = lakes.lake AND EXISTS \
               (SELECT * FROM readings r2 WHERE r2.lake = readings.lake AND r2.temp > 19))",
        )
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert_eq!(names, vec!["union"]);
}

#[test]
fn case_expression_in_projection() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT id, CASE WHEN temp < 10 THEN 'cold' WHEN temp < 18 THEN 'mild' \
             ELSE 'warm' END AS band FROM readings WHERE temp IS NOT NULL ORDER BY id",
        )
        .unwrap();
    let bands: Vec<String> = r.rows.iter().map(|row| row[1].render()).collect();
    assert_eq!(bands, vec!["mild", "mild", "warm", "warm", "cold"]);
}

#[test]
fn scalar_functions() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT UPPER(lake), LENGTH(lake), ROUND(temp, 0), ABS(0 - temp), \
             COALESCE(lake, 'unknown'), SUBSTR(lake, 1, 4) \
             FROM readings WHERE id = 1",
        )
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0].render(), "WASHINGTON");
    assert_eq!(row[1], Value::Int(10));
    assert_eq!(row[2], Value::Float(12.0));
    assert_eq!(row[3], Value::Float(12.0));
    assert_eq!(row[4].render(), "washington");
    assert_eq!(row[5].render(), "wash");
    // COALESCE on the NULL row.
    let r = e
        .execute("SELECT COALESCE(lake, 'unknown') FROM readings WHERE id = 6")
        .unwrap();
    assert_eq!(r.rows[0][0].render(), "unknown");
}

#[test]
fn like_patterns() {
    let mut e = engine();
    let r = e
        .execute("SELECT id FROM readings WHERE lake LIKE '%ington' ORDER BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = e
        .execute("SELECT id FROM readings WHERE lake LIKE '_nion'")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = e
        .execute("SELECT id FROM readings WHERE lake NOT LIKE '%n%'")
        .unwrap();
    // Only 'sammamish' lacks an n; NULL lake row is UNKNOWN → filtered.
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn outer_join_then_filter_on_nullable_side() {
    let mut e = engine();
    e.execute("CREATE TABLE notes (lake TEXT, note TEXT)")
        .unwrap();
    e.execute("INSERT INTO notes VALUES ('washington', 'deep')")
        .unwrap();
    // WHERE on the nullable side after a LEFT JOIN removes padded rows.
    let r = e
        .execute(
            "SELECT readings.id, notes.note FROM readings LEFT OUTER JOIN notes \
             ON readings.lake = notes.lake WHERE notes.note IS NOT NULL",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // Without the filter, all 6 rows survive (padded with NULL note).
    let r = e
        .execute(
            "SELECT readings.id, notes.note FROM readings LEFT OUTER JOIN notes \
             ON readings.lake = notes.lake",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    assert_eq!(r.rows.iter().filter(|row| row[1].is_null()).count(), 4);
}

#[test]
fn union_of_filters_via_or_and_parens() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT id FROM readings WHERE (lake = 'union' AND month = 1) \
             OR (lake = 'washington' AND month = 2) ORDER BY id",
        )
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![2, 3]);
}

#[test]
fn arithmetic_type_behaviour() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (a INT, b FLOAT)").unwrap();
    e.execute("INSERT INTO t VALUES (7, 2.0)").unwrap();
    let r = e
        .execute("SELECT a / 2, a % 3, a / b, a + b, a || '!' FROM t")
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Int(3)); // integer division
    assert_eq!(row[1], Value::Int(1));
    assert_eq!(row[2], Value::Float(3.5)); // mixed → float
    assert_eq!(row[3], Value::Float(9.0));
    assert_eq!(row[4].render(), "7!");
}

#[test]
fn limit_zero_and_offset_past_end() {
    let mut e = engine();
    assert!(e
        .execute("SELECT * FROM readings LIMIT 0")
        .unwrap()
        .rows
        .is_empty());
    assert!(e
        .execute("SELECT * FROM readings LIMIT 5 OFFSET 100")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn qualified_wildcard_projection() {
    let mut e = engine();
    e.execute("CREATE TABLE tiny (x INT)").unwrap();
    e.execute("INSERT INTO tiny VALUES (1)").unwrap();
    let r = e
        .execute("SELECT r.id, t.* FROM readings r, tiny t WHERE r.id = 1")
        .unwrap();
    assert_eq!(r.columns, vec!["id", "x"]);
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn aggregate_inside_expression() {
    let mut e = engine();
    let r = e
        .execute(
            "SELECT lake, MAX(temp) - MIN(temp) AS spread FROM readings \
             WHERE lake IS NOT NULL GROUP BY lake ORDER BY spread DESC",
        )
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Float(2.0));
    assert_eq!(r.rows.last().unwrap()[1], Value::Float(0.0)); // sammamish
}
