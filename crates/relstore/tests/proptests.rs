//! Property-based tests for the relational engine.
//!
//! The key invariants: the hash-join fast path agrees with the nested-loop
//! general path, filters compose like set intersection, ORDER BY really
//! sorts, DISTINCT really deduplicates, and LIMIT bounds cardinality.

use proptest::prelude::*;
use relstore::{Engine, Value};

/// Build an engine with two small integer tables derived from the inputs.
fn engine_with(a: &[(i64, i64)], b: &[(i64, i64)]) -> Engine {
    let mut e = Engine::new();
    e.execute("CREATE TABLE a (k INT, v INT)").unwrap();
    e.execute("CREATE TABLE b (k INT, w INT)").unwrap();
    for (k, v) in a {
        e.execute(&format!("INSERT INTO a VALUES ({k}, {v})"))
            .unwrap();
    }
    for (k, w) in b {
        e.execute(&format!("INSERT INTO b VALUES ({k}, {w})"))
            .unwrap();
    }
    e
}

fn sorted_rows(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect())
        .collect();
    out.sort();
    out
}

fn pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec(((-5i64..5), (-20i64..20)), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equi-join via hash join equals the brute-force nested loop (forced by
    /// writing the same condition as two inequalities).
    #[test]
    fn hash_join_matches_nested_loop(a in pairs(), b in pairs()) {
        let mut e = engine_with(&a, &b);
        let hash = e
            .execute("SELECT a.k, v, w FROM a, b WHERE a.k = b.k")
            .unwrap();
        prop_assert!(hash.metrics.plan.contains("HashJoin"), "{}", hash.metrics.plan);
        let nested = e
            .execute("SELECT a.k, v, w FROM a, b WHERE a.k <= b.k AND a.k >= b.k")
            .unwrap();
        prop_assert!(!nested.metrics.plan.contains("HashJoin"), "{}", nested.metrics.plan);
        prop_assert_eq!(sorted_rows(&hash.rows), sorted_rows(&nested.rows));
    }

    /// WHERE p AND q behaves like set intersection of the individual filters.
    #[test]
    fn conjunction_is_intersection(a in pairs(), lo in -5i64..5, hi in -5i64..5) {
        let mut e = engine_with(&a, &[]);
        let both = e
            .execute(&format!("SELECT k, v FROM a WHERE k >= {lo} AND v < {hi}"))
            .unwrap();
        let p = e.execute(&format!("SELECT k, v FROM a WHERE k >= {lo}")).unwrap();
        let q = e.execute(&format!("SELECT k, v FROM a WHERE v < {hi}")).unwrap();
        let ps = sorted_rows(&p.rows);
        let qs = sorted_rows(&q.rows);
        let mut expected: Vec<Vec<String>> = Vec::new();
        let mut qs_pool = qs.clone();
        for row in ps {
            if let Some(pos) = qs_pool.iter().position(|r| r == &row) {
                qs_pool.remove(pos);
                expected.push(row);
            }
        }
        expected.sort();
        prop_assert_eq!(sorted_rows(&both.rows), expected);
    }

    /// ORDER BY produces a sorted column.
    #[test]
    fn order_by_sorts(a in pairs()) {
        let mut e = engine_with(&a, &[]);
        let r = e.execute("SELECT v FROM a ORDER BY v").unwrap();
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let r = e.execute("SELECT v FROM a ORDER BY v DESC").unwrap();
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// DISTINCT removes exactly the duplicates.
    #[test]
    fn distinct_deduplicates(a in pairs()) {
        let mut e = engine_with(&a, &[]);
        let d = e.execute("SELECT DISTINCT k FROM a").unwrap();
        let mut uniq: Vec<i64> = a.iter().map(|(k, _)| *k).collect();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(d.rows.len(), uniq.len());
        let mut got: Vec<i64> = d.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort();
        prop_assert_eq!(got, uniq);
    }

    /// LIMIT bounds the result size; OFFSET skips.
    #[test]
    fn limit_offset_bounds(a in pairs(), lim in 0u64..30, off in 0u64..30) {
        let mut e = engine_with(&a, &[]);
        let r = e
            .execute(&format!("SELECT k FROM a ORDER BY k LIMIT {lim} OFFSET {off}"))
            .unwrap();
        let expect = a.len().saturating_sub(off as usize).min(lim as usize);
        prop_assert_eq!(r.rows.len(), expect);
    }

    /// COUNT/SUM/MIN/MAX agree with hand computation.
    #[test]
    fn aggregates_match_reference(a in pairs()) {
        let mut e = engine_with(&a, &[]);
        let r = e
            .execute("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM a")
            .unwrap();
        let row = &r.rows[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), a.len() as i64);
        if a.is_empty() {
            prop_assert!(row[1].is_null());
            prop_assert!(row[2].is_null());
        } else {
            let sum: i64 = a.iter().map(|(_, v)| v).sum();
            let min = a.iter().map(|(_, v)| *v).min().unwrap();
            let max = a.iter().map(|(_, v)| *v).max().unwrap();
            prop_assert_eq!(row[1].as_i64().unwrap(), sum);
            prop_assert_eq!(row[2].as_i64().unwrap(), min);
            prop_assert_eq!(row[3].as_i64().unwrap(), max);
        }
    }

    /// GROUP BY partitions the rows: group COUNT(*)s sum to the table size.
    #[test]
    fn group_counts_partition(a in pairs()) {
        let mut e = engine_with(&a, &[]);
        let r = e.execute("SELECT k, COUNT(*) FROM a GROUP BY k").unwrap();
        let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total, a.len() as i64);
        // One group per distinct k.
        let mut uniq: Vec<i64> = a.iter().map(|(k, _)| *k).collect();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(r.rows.len(), uniq.len());
    }

    /// An index never changes results, only the plan.
    #[test]
    fn index_is_transparent(a in pairs(), probe in -5i64..5) {
        let mut e = engine_with(&a, &[]);
        let plain = e
            .execute(&format!("SELECT v FROM a WHERE k = {probe} ORDER BY v"))
            .unwrap();
        e.create_index("a", "k").unwrap();
        let indexed = e
            .execute(&format!("SELECT v FROM a WHERE k = {probe} ORDER BY v"))
            .unwrap();
        prop_assert_eq!(plain.rows, indexed.rows);
    }

    /// IN subquery equals the equivalent join semantics (set membership).
    #[test]
    fn in_subquery_is_semijoin(a in pairs(), b in pairs()) {
        let mut e = engine_with(&a, &b);
        let r = e
            .execute("SELECT k, v FROM a WHERE k IN (SELECT k FROM b)")
            .unwrap();
        let bkeys: std::collections::HashSet<i64> = b.iter().map(|(k, _)| *k).collect();
        let expect = a.iter().filter(|(k, _)| bkeys.contains(k)).count();
        prop_assert_eq!(r.rows.len(), expect);
    }
}
