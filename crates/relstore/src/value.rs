//! Runtime values and SQL comparison semantics.

use sqlparse::ast::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The declared type this value conforms to, if any.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Numeric view (Int and Float are mutually coercible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` when either side is
    /// NULL, otherwise the comparison result. Int and Float compare
    /// numerically; mismatched non-numeric types are unequal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering under three-valued logic. `None` when either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used by ORDER BY and index keys: NULL sorts first, then
    /// bools, then numerics (cross-type), then text. NaN sorts after all
    /// other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().unwrap();
                let y = b.as_f64().unwrap();
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Grouping/join key with SQL equality semantics (Int 1 groups with
    /// Float 1.0). NULLs group together (SQL GROUP BY semantics).
    pub fn group_key(&self) -> Key {
        match self {
            Value::Null => Key::Null,
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(i) => Key::Num((*i as f64).to_bits()),
            Value::Float(f) => {
                // Normalise -0.0 to 0.0 and all NaNs to one bit pattern so
                // equal-by-SQL values produce identical keys.
                let f = if *f == 0.0 { 0.0 } else { *f };
                let f = if f.is_nan() { f64::NAN } else { f };
                Key::Num(f.to_bits())
            }
            Value::Text(s) => Key::Text(s.clone()),
        }
    }

    /// Render as the engine's textual form (used by CSV export and the CQMS
    /// output summaries). NULL renders as the empty marker `NULL`.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Text(s) => s.clone(),
        }
    }

    /// Does this value conform to (or is coercible into) the column type?
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Int(_), DataType::Float) => true, // widening
            (Value::Float(_), DataType::Float) => true,
            (Value::Text(_), DataType::Text) => true,
            (Value::Bool(_), DataType::Bool) => true,
            _ => false,
        }
    }

    /// Coerce into the column type where lossless (Int → Float).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Hashable key with SQL equality semantics, used for hash joins, GROUP BY
/// and DISTINCT.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    Null,
    Bool(bool),
    /// Bit pattern of the numeric value as f64 (Int coerced).
    Num(u64),
    Text(String),
}

/// Hash a full row into a composite key.
pub fn row_key(values: &[Value]) -> Vec<Key> {
    values.iter().map(Value::group_key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_and_numbers_incomparable() {
        assert_eq!(Value::Text("1".into()).sql_eq(&Value::Int(1)), None);
    }

    #[test]
    fn group_keys_unify_int_float() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.5).group_key());
        assert_eq!(
            Value::Float(0.0).group_key(),
            Value::Float(-0.0).group_key()
        );
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = [
            Value::Text("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::Text("a".into()));
    }

    #[test]
    fn conformance_and_coercion() {
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert_eq!(Value::Int(2).coerce(DataType::Float), Value::Float(2.0));
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Bool(false).render(), "FALSE");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Text("x".into()).render(), "x");
    }
}
