//! Query executor.
//!
//! The executor plans and runs one SELECT at a time, directly from the AST:
//!
//! 1. **FROM resolution** — every table factor becomes a [`Binding`]; the
//!    joined relation is built left-to-right. Equality conjuncts (from
//!    explicit `ON` clauses or from the WHERE clause for comma joins) turn
//!    the step into a *hash join*; otherwise it degrades to a filtered
//!    cartesian product.
//! 2. **Predicate pushdown** — WHERE conjuncts touching a single table are
//!    applied during that table's scan; an equality conjunct against a
//!    literal uses a hash index when one exists.
//! 3. **Grouping/aggregation** — hash aggregation with COUNT/SUM/AVG/MIN/MAX
//!    (+DISTINCT), HAVING, and aggregate references in ORDER BY.
//! 4. **DISTINCT, ORDER BY, LIMIT/OFFSET.**
//!
//! Every run reports [`ExecStats`]: base rows scanned and a plan string —
//! these become the "runtime features" the CQMS Query Profiler logs (§4.1).

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::{AggKind, AggSpec, Binding, CompiledExpr, Compiler, EvalCtx, Scope};
use crate::index::IndexAccess;
use crate::table::Row;
use crate::value::{row_key, Key, Value};
use sqlparse::ast::*;
use sqlparse::printer::expr_to_sql;
use std::collections::{HashMap, HashSet};

/// Execution statistics for one SELECT.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Base-table rows read (before any filtering).
    pub rows_scanned: u64,
    /// Human-readable plan description, e.g.
    /// `Scan(attributes idx[attrname]) -> HashJoin(attributes) -> Filter(2)`.
    pub plan: String,
}

/// A fully-evaluated SELECT result.
pub struct SelectOutput {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    pub stats: ExecStats,
}

/// Run a top-level SELECT.
pub fn run_select(
    catalog: &Catalog,
    stmt: &SelectStatement,
    indexes: Option<&mut dyn IndexAccess>,
) -> Result<SelectOutput, EngineError> {
    run_select_inner(catalog, stmt, &[], &[], indexes)
}

/// Run a (possibly correlated) subquery: `outer` carries the binding chain of
/// the enclosing scopes (outermost first) and `env` the matching row stack.
pub fn run_subquery(
    catalog: &Catalog,
    stmt: &SelectStatement,
    outer: &[Vec<Binding>],
    env: &[&[Value]],
) -> Result<Vec<Row>, EngineError> {
    Ok(run_select_inner(catalog, stmt, outer, env, None)?.rows)
}

/// Resolve the FROM clause of `stmt` into bindings with row offsets.
pub fn bindings_for(
    catalog: &Catalog,
    stmt: &SelectStatement,
) -> Result<Vec<Binding>, EngineError> {
    let mut bindings = Vec::new();
    let mut offset = 0usize;
    let push = |name: &str,
                binding_name: &str,
                bindings: &mut Vec<Binding>,
                offset: &mut usize|
     -> Result<(), EngineError> {
        let table = catalog.table(name)?;
        let columns: Vec<String> = table
            .schema
            .columns
            .iter()
            .map(|c| c.name.to_ascii_lowercase())
            .collect();
        let arity = columns.len();
        bindings.push(Binding {
            binding: binding_name.to_ascii_lowercase(),
            table: name.to_ascii_lowercase(),
            columns,
            offset: *offset,
        });
        *offset += arity;
        Ok(())
    };
    for t in &stmt.from {
        push(&t.name, t.binding_name(), &mut bindings, &mut offset)?;
        for j in &t.joins {
            push(&j.table, j.binding_name(), &mut bindings, &mut offset)?;
        }
    }
    Ok(bindings)
}

/// One factor to join, in FROM order.
struct Factor<'a> {
    binding_idx: usize,
    join_kind: Option<JoinKind>,
    on: Option<&'a Expr>,
}

fn run_select_inner(
    catalog: &Catalog,
    stmt: &SelectStatement,
    outer: &[Vec<Binding>],
    env: &[&[Value]],
    mut indexes: Option<&mut dyn IndexAccess>,
) -> Result<SelectOutput, EngineError> {
    if stmt.from.is_empty() {
        return run_fromless(catalog, stmt, outer, env);
    }
    let bindings = bindings_for(catalog, stmt)?;

    // Build the scope chain: outer scopes first, then this SELECT's scope.
    let chains: Vec<Vec<Binding>> = outer.to_vec();
    let scope = build_scope_chain(&chains, bindings.clone());

    // Collect the factor list in join order.
    let mut factors = Vec::new();
    {
        let mut idx = 0usize;
        for t in &stmt.from {
            factors.push(Factor {
                binding_idx: idx,
                join_kind: None,
                on: None,
            });
            idx += 1;
            for j in &t.joins {
                factors.push(Factor {
                    binding_idx: idx,
                    join_kind: Some(j.kind),
                    on: j.on.as_ref(),
                });
                idx += 1;
            }
        }
    }

    // Split WHERE into conjuncts and classify.
    let conjuncts: Vec<&Expr> = stmt
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts())
        .unwrap_or_default();
    let mut consumed = vec![false; conjuncts.len()];

    let mut plan_steps: Vec<String> = Vec::new();
    let mut rows_scanned = 0u64;

    // --- Stage 1: join pipeline -------------------------------------------------
    let mut acc_rows: Vec<Row> = Vec::new();
    let mut acc_bindings: Vec<Binding> = Vec::new();

    for (fi, factor) in factors.iter().enumerate() {
        let b = &bindings[factor.binding_idx];
        let table = catalog.table(&b.table)?;
        rows_scanned += table.len() as u64;

        // Single-table pushdown predicates for this factor (comma joins pull
        // them from WHERE; they also apply inside INNER joins).
        let outer_join = matches!(
            factor.join_kind,
            Some(JoinKind::LeftOuter) | Some(JoinKind::RightOuter) | Some(JoinKind::FullOuter)
        );
        let mut pushed: Vec<usize> = Vec::new();
        if !outer_join {
            for (ci, c) in conjuncts.iter().enumerate() {
                if !consumed[ci] && references_only(c, b, &scope) {
                    pushed.push(ci);
                }
            }
        }

        // Try an index for an `col = literal` pushdown conjunct.
        let mut index_note = String::new();
        let mut base_rows: Vec<Row> = Vec::new();
        let mut used_index = false;
        if let Some(idxs) = indexes.as_mut() {
            for &ci in &pushed {
                if let Some((col_name, lit)) = as_col_eq_literal(conjuncts[ci], b) {
                    let col_idx = b.columns.iter().position(|c| c == &col_name).unwrap();
                    if let Some(idx) = idxs.prepared(&b.table, &col_name, table, col_idx) {
                        let val = literal_value(&lit);
                        for &pos in idx.lookup(&val) {
                            base_rows.push(table.rows[pos].clone());
                        }
                        used_index = true;
                        index_note = format!(" idx[{col_name}]");
                        break;
                    }
                }
            }
        }
        if !used_index {
            base_rows = table.rows.clone();
        }

        // Apply remaining pushdown filters on the factor alone.
        let filtered: Vec<Row> = if pushed.is_empty() {
            base_rows
        } else {
            // Compile pushdown predicates against a factor-local scope so the
            // offsets match the standalone row.
            let mut local = b.clone();
            local.offset = 0;
            let local_scope = build_scope_chain(&chains, vec![local]);
            let compiled: Vec<CompiledExpr> = local_scope.with(|sc| {
                pushed
                    .iter()
                    .map(|&ci| Compiler::new(sc, catalog).compile(conjuncts[ci]))
                    .collect::<Result<Vec<_>, _>>()
            })?;
            let mut out = Vec::new();
            'row: for row in base_rows {
                let mut ctx = EvalCtx::new(catalog, &row);
                ctx.env = env
                    .iter()
                    .copied()
                    .chain(std::iter::once(&row[..]))
                    .collect();
                for ce in &compiled {
                    if !ce.eval_predicate(&ctx)? {
                        continue 'row;
                    }
                }
                out.push(row);
            }
            for &ci in &pushed {
                consumed[ci] = true;
            }
            out
        };
        let scan_note = format!(
            "Scan({}{}{})",
            b.table,
            index_note,
            if pushed.is_empty() {
                String::new()
            } else {
                format!(" +{}f", pushed.len())
            }
        );

        if fi == 0 {
            acc_rows = filtered;
            acc_bindings.push(b.clone());
            plan_steps.push(scan_note);
            continue;
        }

        // Determine the join condition for this step.
        let kind = factor.join_kind.unwrap_or(JoinKind::Inner);
        let mut join_conjuncts: Vec<&Expr> = Vec::new();
        if let Some(on) = factor.on {
            join_conjuncts.extend(on.conjuncts());
        }
        if factor.join_kind.is_none() {
            // Comma join: claim applicable WHERE equi-conjuncts now.
            for (ci, c) in conjuncts.iter().enumerate() {
                if !consumed[ci] && is_equi_between(c, &acc_bindings, b) {
                    join_conjuncts.push(c);
                    consumed[ci] = true;
                }
            }
        }

        let (joined, note) = join_step(
            catalog,
            &chains,
            env,
            &acc_bindings,
            acc_rows,
            b,
            filtered,
            kind,
            &join_conjuncts,
        )?;
        plan_steps.push(format!("{scan_note} -> {note}"));
        acc_rows = joined;
        acc_bindings.push(b.clone());
    }

    // --- Stage 2: residual WHERE -------------------------------------------------
    let residual: Vec<&Expr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(ci, _)| !consumed[*ci])
        .map(|(_, c)| *c)
        .collect();
    if !residual.is_empty() {
        let compiled: Vec<CompiledExpr> = scope.with(|sc| {
            residual
                .iter()
                .map(|c| Compiler::new(sc, catalog).compile(c))
                .collect::<Result<Vec<_>, _>>()
        })?;
        let mut out = Vec::with_capacity(acc_rows.len());
        'row: for row in acc_rows {
            let mut ctx = EvalCtx::new(catalog, &row);
            ctx.env = env
                .iter()
                .copied()
                .chain(std::iter::once(&row[..]))
                .collect();
            for ce in &compiled {
                if !ce.eval_predicate(&ctx)? {
                    continue 'row;
                }
            }
            out.push(row);
        }
        acc_rows = out;
        plan_steps.push(format!("Filter({})", residual.len()));
    }

    // --- Stage 3: grouping / projection -------------------------------------------
    let needs_group = !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || projection_has_aggregate(stmt)
        || order_by_has_aggregate(stmt);

    let (columns, mut out_rows) = if needs_group {
        let r = run_grouped(catalog, stmt, &scope, env, acc_rows, &mut plan_steps)?;
        (r.0, r.1)
    } else {
        run_projection(catalog, stmt, &scope, env, acc_rows, &mut plan_steps)?
    };

    // --- Stage 4: DISTINCT --------------------------------------------------------
    if stmt.distinct {
        let mut seen: HashSet<Vec<Key>> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|kr| seen.insert(row_key(&kr.1)));
        plan_steps.push("Distinct".into());
    }

    // --- Stage 5: ORDER BY / LIMIT -------------------------------------------------
    if !stmt.order_by.is_empty() {
        let descs: Vec<bool> = stmt.order_by.iter().map(|o| o.desc).collect();
        out_rows.sort_by(|(ka, _), (kb, _)| {
            for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                let ord = a.total_cmp(b);
                let ord = if descs[i] { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        plan_steps.push("Sort".into());
    }

    let mut rows: Vec<Row> = out_rows.into_iter().map(|(_, r)| r).collect();
    if let Some(offset) = stmt.offset {
        let n = (offset as usize).min(rows.len());
        rows.drain(..n);
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit as usize);
        plan_steps.push(format!("Limit({limit})"));
    }

    Ok(SelectOutput {
        columns,
        rows,
        stats: ExecStats {
            rows_scanned,
            plan: plan_steps.join(" -> "),
        },
    })
}

/// Rows paired with their ORDER BY keys.
type KeyedRows = Vec<(Vec<Value>, Row)>;

/// SELECT without FROM (e.g. `SELECT 1 + 1`).
fn run_fromless(
    catalog: &Catalog,
    stmt: &SelectStatement,
    outer: &[Vec<Binding>],
    env: &[&[Value]],
) -> Result<SelectOutput, EngineError> {
    let chains: Vec<Vec<Binding>> = outer.to_vec();
    let scope = build_scope_chain(&chains, Vec::new());
    let mut columns = Vec::new();
    let mut row = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Expr { expr, alias } => {
                let ce = scope.with(|sc| Compiler::new(sc, catalog).compile(expr))?;
                let empty: Row = Vec::new();
                let mut ctx = EvalCtx::new(catalog, &empty);
                ctx.env = env
                    .iter()
                    .copied()
                    .chain(std::iter::once(&empty[..]))
                    .collect();
                row.push(ce.eval(&ctx)?);
                columns.push(output_name(expr, alias));
            }
            _ => {
                return Err(EngineError::Unsupported(
                    "wildcard requires a FROM clause".into(),
                ))
            }
        }
    }
    Ok(SelectOutput {
        columns,
        rows: vec![row],
        stats: ExecStats {
            rows_scanned: 0,
            plan: "Const".into(),
        },
    })
}

/// Build a `Scope` chain from owned binding vectors. The chain is rebuilt on
/// each call (cheap: bindings are small) to sidestep self-referential
/// lifetimes.
fn build_scope_chain(outer: &[Vec<Binding>], current: Vec<Binding>) -> OwnedScope {
    OwnedScope {
        chain: outer.to_vec(),
        current,
    }
}

/// An owned scope chain that can hand out a borrowed `Scope` view.
struct OwnedScope {
    chain: Vec<Vec<Binding>>,
    current: Vec<Binding>,
}

impl OwnedScope {
    /// Run `f` with the borrowed `Scope` chain assembled on the stack.
    fn with<R>(&self, f: impl for<'s, 't> FnOnce(&'s Scope<'t>) -> R) -> R {
        fn rec<R, F: for<'s, 't> FnOnce(&'s Scope<'t>) -> R>(
            chain: &[Vec<Binding>],
            parent: Option<&Scope<'_>>,
            current: &[Binding],
            f: F,
        ) -> R {
            match chain.split_first() {
                None => {
                    let scope = Scope {
                        bindings: current.to_vec(),
                        parent,
                    };
                    f(&scope)
                }
                Some((first, rest)) => {
                    let scope = Scope {
                        bindings: first.clone(),
                        parent,
                    };
                    rec(rest, Some(&scope), current, f)
                }
            }
        }
        rec(&self.chain, None, &self.current, f)
    }
}

fn projection_has_aggregate(stmt: &SelectStatement) -> bool {
    stmt.projection.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr_has_aggregate(expr),
        _ => false,
    })
}

fn order_by_has_aggregate(stmt: &SelectStatement) -> bool {
    stmt.order_by.iter().any(|o| expr_has_aggregate(&o.expr))
}

fn expr_has_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, star, .. } => AggKind::from_name(name, *star).is_some(),
        Expr::Column(_) | Expr::Literal(_) => false,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr_has_aggregate(expr),
        Expr::Binary { left, right, .. } => expr_has_aggregate(left) || expr_has_aggregate(right),
        Expr::InList { expr, list, .. } => {
            expr_has_aggregate(expr) || list.iter().any(expr_has_aggregate)
        }
        Expr::InSubquery { expr, .. } => expr_has_aggregate(expr),
        Expr::Between {
            expr, low, high, ..
        } => expr_has_aggregate(expr) || expr_has_aggregate(low) || expr_has_aggregate(high),
        Expr::Like { expr, pattern, .. } => expr_has_aggregate(expr) || expr_has_aggregate(pattern),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().is_some_and(expr_has_aggregate)
                || branches
                    .iter()
                    .any(|(w, t)| expr_has_aggregate(w) || expr_has_aggregate(t))
                || else_branch.as_deref().is_some_and(expr_has_aggregate)
        }
    }
}

// ---------------------------------------------------------------------
// Join machinery
// ---------------------------------------------------------------------

/// Does conjunct `c` reference only binding `b` (and no subqueries, no outer
/// columns)? Such predicates can be pushed down to the factor scan.
fn references_only(c: &Expr, b: &Binding, _scope: &OwnedScope) -> bool {
    if c.contains_subquery() {
        return false;
    }
    let mut only = true;
    let mut any = false;
    collect_columns(c, &mut |col| {
        any = true;
        match &col.qualifier {
            Some(q) => {
                if !q.eq_ignore_ascii_case(&b.binding) {
                    only = false;
                }
            }
            None => {
                if !b
                    .columns
                    .iter()
                    .any(|cc| cc.eq_ignore_ascii_case(&col.name))
                {
                    only = false;
                }
            }
        }
    });
    only && any
}

/// Is `c` an equality between a column of the accumulated bindings and a
/// column of the new binding?
fn is_equi_between(c: &Expr, acc: &[Binding], b: &Binding) -> bool {
    equi_key_columns(c, acc, b).is_some()
}

/// For an equi-join conjunct, return (left column ref, right column ref)
/// where left resolves in `acc` and right in `b`.
fn equi_key_columns<'e>(
    c: &'e Expr,
    acc: &[Binding],
    b: &Binding,
) -> Option<(&'e ColumnRef, &'e ColumnRef)> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = c
    else {
        return None;
    };
    let (Expr::Column(cl), Expr::Column(cr)) = (&**left, &**right) else {
        return None;
    };
    let in_acc = |col: &ColumnRef| resolves_in(col, acc);
    let in_b = |col: &ColumnRef| resolves_in(col, std::slice::from_ref(b));
    if in_acc(cl) && in_b(cr) {
        Some((cl, cr))
    } else if in_acc(cr) && in_b(cl) {
        Some((cr, cl))
    } else {
        None
    }
}

fn resolves_in(col: &ColumnRef, bindings: &[Binding]) -> bool {
    bindings.iter().any(|b| {
        let qual_ok = match &col.qualifier {
            Some(q) => q.eq_ignore_ascii_case(&b.binding),
            None => true,
        };
        qual_ok && b.columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name))
    })
}

fn collect_columns(e: &Expr, f: &mut impl FnMut(&ColumnRef)) {
    match e {
        Expr::Column(c) => f(c),
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_columns(expr, f),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, f);
            collect_columns(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, f);
            for i in list {
                collect_columns(i, f);
            }
        }
        Expr::InSubquery { expr, .. } => collect_columns(expr, f),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, f);
            collect_columns(low, f);
            collect_columns(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, f);
            collect_columns(pattern, f);
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                collect_columns(op, f);
            }
            for (w, t) in branches {
                collect_columns(w, f);
                collect_columns(t, f);
            }
            if let Some(el) = else_branch {
                collect_columns(el, f);
            }
        }
    }
}

/// Column offset of `col` within the row of `bindings` (first match).
fn offset_in(col: &ColumnRef, bindings: &[Binding]) -> Option<usize> {
    for b in bindings {
        if let Some(q) = &col.qualifier {
            if !q.eq_ignore_ascii_case(&b.binding) {
                continue;
            }
        }
        if let Some(i) = b
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(&col.name))
        {
            return Some(b.offset + i);
        }
    }
    None
}

/// Execute one join step, returning joined rows and a plan note.
#[allow(clippy::too_many_arguments)]
fn join_step(
    catalog: &Catalog,
    chains: &[Vec<Binding>],
    env: &[&[Value]],
    acc_bindings: &[Binding],
    acc_rows: Vec<Row>,
    right_binding: &Binding,
    right_rows: Vec<Row>,
    kind: JoinKind,
    join_conjuncts: &[&Expr],
) -> Result<(Vec<Row>, String), EngineError> {
    let right_arity = right_binding.arity();
    let acc_width: usize = acc_bindings.iter().map(Binding::arity).sum();

    // Partition conjuncts into hashable equi keys vs residual conditions.
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut residual: Vec<&Expr> = Vec::new();
    for c in join_conjuncts {
        if let Some((lcol, rcol)) = equi_key_columns(c, acc_bindings, right_binding) {
            if let (Some(lo), Some(ro)) = (
                offset_in(lcol, acc_bindings),
                offset_in(rcol, std::slice::from_ref(right_binding))
                    .map(|o| o - right_binding.offset),
            ) {
                left_keys.push(lo);
                right_keys.push(ro);
                continue;
            }
        }
        residual.push(c);
    }

    // Compile residual conditions against the combined scope.
    let combined: Vec<Binding> = acc_bindings
        .iter()
        .cloned()
        .chain(std::iter::once({
            let mut rb = right_binding.clone();
            rb.offset = acc_width;
            rb
        }))
        .collect();
    let owned = build_scope_chain(chains, combined);
    let compiled_residual: Vec<CompiledExpr> = owned.with(|scope| {
        residual
            .iter()
            .map(|c| Compiler::new(scope, catalog).compile(c))
            .collect::<Result<Vec<_>, _>>()
    })?;

    let eval_residual = |row: &Row| -> Result<bool, EngineError> {
        let mut ctx = EvalCtx::new(catalog, row);
        ctx.env = env
            .iter()
            .copied()
            .chain(std::iter::once(&row[..]))
            .collect();
        for ce in &compiled_residual {
            if !ce.eval_predicate(&ctx)? {
                return Ok(false);
            }
        }
        Ok(true)
    };

    let use_hash = !left_keys.is_empty() && kind != JoinKind::Cross;
    let mut out: Vec<Row> = Vec::new();
    let note;

    if use_hash {
        // Build hash table over the right side.
        let mut table: HashMap<Vec<Key>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
        for (i, r) in right_rows.iter().enumerate() {
            let key: Vec<Key> = right_keys.iter().map(|&k| r[k].group_key()).collect();
            if right_keys.iter().any(|&k| r[k].is_null()) {
                continue; // NULL keys never join
            }
            table.entry(key).or_default().push(i);
        }
        let mut right_matched = vec![false; right_rows.len()];
        for lrow in &acc_rows {
            let mut matched = false;
            if !left_keys.iter().any(|&k| lrow[k].is_null()) {
                let key: Vec<Key> = left_keys.iter().map(|&k| lrow[k].group_key()).collect();
                if let Some(cands) = table.get(&key) {
                    for &ri in cands {
                        let mut row = lrow.clone();
                        row.extend(right_rows[ri].iter().cloned());
                        if eval_residual(&row)? {
                            right_matched[ri] = true;
                            matched = true;
                            out.push(row);
                        }
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_arity));
                out.push(row);
            }
        }
        if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
            for (ri, r) in right_rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut row: Row = std::iter::repeat_n(Value::Null, acc_width).collect();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
        note = format!(
            "HashJoin({} on {} keys)",
            right_binding.table,
            left_keys.len()
        );
    } else {
        // Nested loop (also the CROSS JOIN path).
        let mut right_matched = vec![false; right_rows.len()];
        for lrow in &acc_rows {
            let mut matched = false;
            for (ri, rrow) in right_rows.iter().enumerate() {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if eval_residual(&row)? {
                    matched = true;
                    right_matched[ri] = true;
                    out.push(row);
                }
            }
            if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_arity));
                out.push(row);
            }
        }
        if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
            for (ri, r) in right_rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut row: Row = std::iter::repeat_n(Value::Null, acc_width).collect();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
        note = if kind == JoinKind::Cross {
            format!("CrossJoin({})", right_binding.table)
        } else {
            format!("NestedLoopJoin({})", right_binding.table)
        };
    }

    Ok((out, note))
}

// ---------------------------------------------------------------------
// Projection (non-grouped)
// ---------------------------------------------------------------------

fn output_name(expr: &Expr, alias: &Option<String>) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column(c) => c.name.clone(),
        other => expr_to_sql(other),
    }
}

fn run_projection(
    catalog: &Catalog,
    stmt: &SelectStatement,
    scope: &OwnedScope,
    env: &[&[Value]],
    input: Vec<Row>,
    plan_steps: &mut Vec<String>,
) -> Result<(Vec<String>, KeyedRows), EngineError> {
    // Expand the projection into (name, source) pairs.
    enum Source {
        Offset(usize),
        Expr(CompiledExpr),
    }
    let mut columns: Vec<String> = Vec::new();
    let mut sources: Vec<Source> = Vec::new();
    let mut alias_to_pos: HashMap<String, usize> = HashMap::new();

    scope.with(|sc| -> Result<(), EngineError> {
        let current = &sc.bindings;
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    for b in current {
                        for (i, cname) in b.columns.iter().enumerate() {
                            columns.push(cname.clone());
                            sources.push(Source::Offset(b.offset + i));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let ql = q.to_ascii_lowercase();
                    let b = current
                        .iter()
                        .find(|b| b.binding == ql)
                        .ok_or_else(|| EngineError::UnknownTable(q.clone()))?;
                    for (i, cname) in b.columns.iter().enumerate() {
                        columns.push(cname.clone());
                        sources.push(Source::Offset(b.offset + i));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let mut c = Compiler::new(sc, catalog);
                    let ce = c.compile(expr)?;
                    let name = output_name(expr, alias);
                    if let Some(a) = alias {
                        alias_to_pos.insert(a.to_ascii_lowercase(), sources.len());
                    }
                    columns.push(name);
                    sources.push(Source::Expr(ce));
                }
            }
        }
        Ok(())
    })?;

    // ORDER BY keys: projection aliases first, then scope columns.
    enum OrderSource {
        Projected(usize),
        Expr(CompiledExpr),
    }
    let order_sources: Vec<OrderSource> = scope.with(|sc| {
        stmt.order_by
            .iter()
            .map(|o| {
                if let Expr::Column(c) = &o.expr {
                    if c.qualifier.is_none() {
                        if let Some(&pos) = alias_to_pos.get(&c.name.to_ascii_lowercase()) {
                            return Ok(OrderSource::Projected(pos));
                        }
                    }
                }
                let mut comp = Compiler::new(sc, catalog);
                Ok(OrderSource::Expr(comp.compile(&o.expr)?))
            })
            .collect::<Result<Vec<_>, EngineError>>()
    })?;

    let mut out: KeyedRows = Vec::with_capacity(input.len());
    for row in input {
        let mut ctx = EvalCtx::new(catalog, &row);
        ctx.env = env
            .iter()
            .copied()
            .chain(std::iter::once(&row[..]))
            .collect();
        let mut projected: Row = Vec::with_capacity(sources.len());
        for s in &sources {
            projected.push(match s {
                Source::Offset(o) => row[*o].clone(),
                Source::Expr(ce) => ce.eval(&ctx)?,
            });
        }
        let mut keys: Vec<Value> = Vec::with_capacity(order_sources.len());
        for os in &order_sources {
            keys.push(match os {
                OrderSource::Projected(p) => projected[*p].clone(),
                OrderSource::Expr(ce) => ce.eval(&ctx)?,
            });
        }
        out.push((keys, projected));
    }
    plan_steps.push(format!("Project({})", columns.len()));
    Ok((columns, out))
}

// ---------------------------------------------------------------------
// Grouping / aggregation
// ---------------------------------------------------------------------

/// Accumulator for one aggregate slot within one group.
enum AggState {
    Count(i64),
    Sum {
        sum_f: f64,
        any_float: bool,
        sum_i: i64,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
}

impl AggState {
    fn new(kind: AggKind) -> AggState {
        match kind {
            AggKind::Count | AggKind::CountStar => AggState::Count(0),
            AggKind::Sum => AggState::Sum {
                sum_f: 0.0,
                any_float: false,
                sum_i: 0,
                seen: false,
            },
            AggKind::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggKind::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggKind::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<(), EngineError> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None-arg (count every row); COUNT(x) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum {
                sum_f,
                any_float,
                sum_i,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Null => {}
                        Value::Int(i) => {
                            *sum_i += i;
                            *sum_f += *i as f64;
                            *seen = true;
                        }
                        Value::Float(f) => {
                            *sum_f += f;
                            *any_float = true;
                            *seen = true;
                        }
                        other => {
                            return Err(EngineError::TypeError(format!(
                                "SUM over non-numeric {other:?}"
                            )))
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *n += 1;
                    } else if !val.is_null() {
                        return Err(EngineError::TypeError(format!(
                            "AVG over non-numeric {val:?}"
                        )));
                    }
                }
            }
            AggState::MinMax { best, is_min } => {
                if let Some(val) = v {
                    if val.is_null() {
                        return Ok(());
                    }
                    match best {
                        None => *best = Some(val.clone()),
                        Some(b) => {
                            let ord = val.total_cmp(b);
                            let better = if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            };
                            if better {
                                *best = Some(val.clone());
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                sum_f,
                any_float,
                sum_i,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(sum_f)
                } else {
                    Value::Int(sum_i)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
        }
    }
}

fn run_grouped(
    catalog: &Catalog,
    stmt: &SelectStatement,
    scope: &OwnedScope,
    env: &[&[Value]],
    input: Vec<Row>,
    plan_steps: &mut Vec<String>,
) -> Result<(Vec<String>, KeyedRows), EngineError> {
    struct Compiled {
        group_exprs: Vec<CompiledExpr>,
        aggs: Vec<AggSpec>,
        proj: Vec<(String, CompiledExpr)>,
        having: Option<CompiledExpr>,
        order: Vec<CompiledExpr>,
    }

    let compiled: Compiled = scope.with(|sc| -> Result<Compiled, EngineError> {
        let mut aggs: Vec<AggSpec> = Vec::new();
        let group_exprs = stmt
            .group_by
            .iter()
            .map(|g| Compiler::new(sc, catalog).compile(g))
            .collect::<Result<Vec<_>, _>>()?;
        let mut proj = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let mut c = Compiler::with_aggregates(sc, catalog, &mut aggs);
                    let ce = c.compile(expr)?;
                    proj.push((output_name(expr, alias), ce));
                }
                _ => {
                    return Err(EngineError::Unsupported(
                        "wildcard projection cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
            }
        }
        let having = match &stmt.having {
            Some(h) => {
                let mut c = Compiler::with_aggregates(sc, catalog, &mut aggs);
                Some(c.compile(h)?)
            }
            None => None,
        };
        let order = stmt
            .order_by
            .iter()
            .map(|o| {
                // Aliases refer to projected expressions; check them first.
                if let Expr::Column(cr) = &o.expr {
                    if cr.qualifier.is_none() {
                        if let Some(pos) = stmt.projection.iter().position(|p| {
                            matches!(p, SelectItem::Expr { alias: Some(a), .. }
                                if a.eq_ignore_ascii_case(&cr.name))
                        }) {
                            // Re-compile the aliased projection expression.
                            if let SelectItem::Expr { expr, .. } = &stmt.projection[pos] {
                                let mut c = Compiler::with_aggregates(sc, catalog, &mut aggs);
                                return c.compile(expr);
                            }
                        }
                    }
                }
                let mut c = Compiler::with_aggregates(sc, catalog, &mut aggs);
                c.compile(&o.expr)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Compiled {
            group_exprs,
            aggs,
            proj,
            having,
            order,
        })
    })?;

    // Accumulate groups.
    struct Group {
        rep_row: Row,
        states: Vec<AggState>,
        distinct_seen: Vec<Option<HashSet<Key>>>,
    }
    let mut groups: HashMap<Vec<Key>, Group> = HashMap::new();
    let scalar_query = stmt.group_by.is_empty();
    let width: usize = scope.with(|sc| sc.width());

    for row in input {
        let mut ctx = EvalCtx::new(catalog, &row);
        ctx.env = env
            .iter()
            .copied()
            .chain(std::iter::once(&row[..]))
            .collect();
        let key: Vec<Key> = compiled
            .group_exprs
            .iter()
            .map(|g| g.eval(&ctx).map(|v| v.group_key()))
            .collect::<Result<_, _>>()?;
        let group = groups.entry(key).or_insert_with(|| Group {
            rep_row: row.clone(),
            states: compiled
                .aggs
                .iter()
                .map(|a| AggState::new(a.kind))
                .collect(),
            distinct_seen: compiled
                .aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        });
        for (i, spec) in compiled.aggs.iter().enumerate() {
            let arg_val = match &spec.arg {
                None => None,
                Some(a) => Some(a.eval(&ctx)?),
            };
            if let (Some(seen), Some(v)) = (&mut group.distinct_seen[i], &arg_val) {
                if !v.is_null() && !seen.insert(v.group_key()) {
                    continue; // duplicate under DISTINCT
                }
            }
            group.states[i].update(arg_val.as_ref())?;
        }
    }

    // A scalar aggregate over zero rows still yields one output row.
    if scalar_query && groups.is_empty() {
        groups.insert(
            Vec::new(),
            Group {
                rep_row: std::iter::repeat_n(Value::Null, width).collect(),
                states: compiled
                    .aggs
                    .iter()
                    .map(|a| AggState::new(a.kind))
                    .collect(),
                distinct_seen: compiled.aggs.iter().map(|_| None).collect(),
            },
        );
    }

    let columns: Vec<String> = compiled.proj.iter().map(|(n, _)| n.clone()).collect();
    let mut out: KeyedRows = Vec::with_capacity(groups.len());
    for (_, group) in groups {
        let agg_values: Vec<Value> = group.states.into_iter().map(AggState::finish).collect();
        let rep = group.rep_row;
        let mut ctx = EvalCtx::new(catalog, &rep);
        ctx.env = env
            .iter()
            .copied()
            .chain(std::iter::once(&rep[..]))
            .collect();
        ctx.agg_values = Some(&agg_values);
        if let Some(h) = &compiled.having {
            if !h.eval_predicate(&ctx)? {
                continue;
            }
        }
        let mut prow: Row = Vec::with_capacity(compiled.proj.len());
        for (_, ce) in &compiled.proj {
            prow.push(ce.eval(&ctx)?);
        }
        let mut keys: Vec<Value> = Vec::with_capacity(compiled.order.len());
        for oe in &compiled.order {
            keys.push(oe.eval(&ctx)?);
        }
        out.push((keys, prow));
    }
    plan_steps.push(format!(
        "Group({} keys, {} aggs)",
        compiled.group_exprs.len(),
        compiled.aggs.len()
    ));
    Ok((columns, out))
}

// ---------------------------------------------------------------------
// small helpers
// ---------------------------------------------------------------------

/// If `c` is `col = <literal>` (either orientation) on binding `b`, return
/// the lower-cased column name and the literal.
fn as_col_eq_literal(c: &Expr, b: &Binding) -> Option<(String, Literal)> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = c
    else {
        return None;
    };
    let (col, lit) = match (&**left, &**right) {
        (Expr::Column(col), Expr::Literal(l)) if l.is_constant() => (col, l),
        (Expr::Literal(l), Expr::Column(col)) if l.is_constant() => (col, l),
        _ => return None,
    };
    if let Some(q) = &col.qualifier {
        if !q.eq_ignore_ascii_case(&b.binding) {
            return None;
        }
    }
    let name = col.name.to_ascii_lowercase();
    if b.columns.iter().any(|c| c == &name) {
        Some((name, lit.clone()))
    } else {
        None
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null | Literal::Placeholder => Value::Null,
    }
}
