//! Table schemas with version tracking.

use crate::error::EngineError;
use sqlparse::ast::DataType;

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
        }
    }
}

/// A table schema. `version` increments on every schema change; the catalog
/// additionally records *when* (logical time) each change happened, which the
/// CQMS Query Maintenance component compares against query timestamps (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub version: u64,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            version: 0,
        }
    }

    /// Builder-style helper used heavily in tests and the workload crate.
    pub fn build(name: &str, cols: &[(&str, DataType)]) -> Self {
        TableSchema::new(
            name,
            cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        )
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Apply a column rename, bumping the version.
    pub fn rename_column(&mut self, from: &str, to: &str) -> Result<(), EngineError> {
        if self.column_index(to).is_some() {
            return Err(EngineError::AlreadyExists(to.to_string()));
        }
        let idx = self
            .column_index(from)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: from.to_string(),
                context: format!("table `{}`", self.name),
            })?;
        self.columns[idx].name = to.to_string();
        self.version += 1;
        Ok(())
    }

    /// Drop a column, bumping the version. Returns its former index.
    pub fn drop_column(&mut self, name: &str) -> Result<usize, EngineError> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.to_string(),
                context: format!("table `{}`", self.name),
            })?;
        self.columns.remove(idx);
        self.version += 1;
        Ok(idx)
    }

    /// Add a column, bumping the version.
    pub fn add_column(&mut self, name: &str, ty: DataType) -> Result<(), EngineError> {
        if self.column_index(name).is_some() {
            return Err(EngineError::AlreadyExists(name.to_string()));
        }
        self.columns.push(ColumnDef::new(name, ty));
        self.version += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::build(
            "WaterTemp",
            &[
                ("loc_x", DataType::Float),
                ("loc_y", DataType::Float),
                ("temp", DataType::Float),
                ("lake", DataType::Text),
            ],
        )
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("TEMP"), Some(2));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn rename_bumps_version() {
        let mut s = schema();
        assert_eq!(s.version, 0);
        s.rename_column("temp", "temperature").unwrap();
        assert_eq!(s.version, 1);
        assert!(s.column("temperature").is_some());
        assert!(s.column("temp").is_none());
    }

    #[test]
    fn rename_to_existing_fails() {
        let mut s = schema();
        assert!(matches!(
            s.rename_column("temp", "lake"),
            Err(EngineError::AlreadyExists(_))
        ));
        assert_eq!(s.version, 0);
    }

    #[test]
    fn drop_and_add() {
        let mut s = schema();
        let idx = s.drop_column("loc_y").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(s.arity(), 3);
        s.add_column("depth", DataType::Float).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.version, 2);
        assert!(matches!(
            s.add_column("depth", DataType::Int),
            Err(EngineError::AlreadyExists(_))
        ));
    }
}
