//! Expression compilation and evaluation.
//!
//! Expressions are compiled against a [`Scope`] (the tables visible in the
//! current query, with a parent pointer for correlated subqueries) into
//! [`CompiledExpr`], which resolves every column reference to a
//! `(scope level, row offset)` pair. Evaluation follows SQL three-valued
//! logic: comparisons against NULL yield NULL, `AND`/`OR` use Kleene
//! semantics, and a WHERE clause keeps a row only when its predicate
//! evaluates to exactly `TRUE`.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::table::Row;
use crate::value::{Key, Value};
use sqlparse::ast::*;
use std::collections::HashSet;

/// One table visible in a scope.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Lower-cased binding name (alias if present, else table name).
    pub binding: String,
    /// Lower-cased underlying table name.
    pub table: String,
    /// Lower-cased column names in row order.
    pub columns: Vec<String>,
    /// Offset of this binding's first column in the concatenated row.
    pub offset: usize,
}

impl Binding {
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A compilation scope: the bindings of one SELECT, with a link to the
/// enclosing query's scope for correlated references.
pub struct Scope<'a> {
    pub bindings: Vec<Binding>,
    pub parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    pub fn root(bindings: Vec<Binding>) -> Self {
        Scope {
            bindings,
            parent: None,
        }
    }

    pub fn child(&'a self, bindings: Vec<Binding>) -> Scope<'a> {
        Scope {
            bindings,
            parent: Some(self),
        }
    }

    /// Total width of the concatenated row at this scope.
    pub fn width(&self) -> usize {
        self.bindings.iter().map(Binding::arity).sum()
    }

    /// The binding chain from the outermost scope to this one. Stored inside
    /// correlated subquery plans so they can be re-compiled per row.
    pub fn chain(&self) -> Vec<Vec<Binding>> {
        let mut chain = Vec::new();
        let mut cur = Some(self);
        while let Some(s) = cur {
            chain.push(s.bindings.clone());
            cur = s.parent;
        }
        chain.reverse();
        chain
    }

    /// Resolve a column reference. Returns `(levels_up, offset)`.
    fn resolve(&self, col: &ColumnRef) -> Result<(usize, usize), EngineError> {
        let name = col.name.to_ascii_lowercase();
        let qualifier = col.qualifier.as_ref().map(|q| q.to_ascii_lowercase());
        let mut scope = Some(self);
        let mut level = 0usize;
        while let Some(s) = scope {
            let mut hits = Vec::new();
            for b in &s.bindings {
                if let Some(q) = &qualifier {
                    if &b.binding != q {
                        continue;
                    }
                }
                if let Some(i) = b.columns.iter().position(|c| c == &name) {
                    hits.push(b.offset + i);
                }
            }
            match hits.len() {
                0 => {
                    scope = s.parent;
                    level += 1;
                }
                1 => return Ok((level, hits[0])),
                _ => return Err(EngineError::AmbiguousColumn(col.to_string())),
            }
        }
        Err(EngineError::UnknownColumn {
            column: col.to_string(),
            context: "scope".to_string(),
        })
    }
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    pub fn from_name(name: &str, star: bool) -> Option<AggKind> {
        let up = name.to_ascii_uppercase();
        Some(match (up.as_str(), star) {
            ("COUNT", true) => AggKind::CountStar,
            ("COUNT", false) => AggKind::Count,
            ("SUM", false) => AggKind::Sum,
            ("AVG", false) => AggKind::Avg,
            ("MIN", false) => AggKind::Min,
            ("MAX", false) => AggKind::Max,
            _ => return None,
        })
    }
}

/// A single aggregate slot extracted from a grouped query's expressions.
pub struct AggSpec {
    pub kind: AggKind,
    /// Argument expression (None for `COUNT(*)`).
    pub arg: Option<CompiledExpr>,
    pub distinct: bool,
}

/// Supported scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalarFn {
    Lower,
    Upper,
    Length,
    Abs,
    Round,
    Coalesce,
    Substr,
}

impl ScalarFn {
    fn from_name(name: &str) -> Option<ScalarFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "LOWER" => ScalarFn::Lower,
            "UPPER" => ScalarFn::Upper,
            "LENGTH" => ScalarFn::Length,
            "ABS" => ScalarFn::Abs,
            "ROUND" => ScalarFn::Round,
            "COALESCE" => ScalarFn::Coalesce,
            "SUBSTR" | "SUBSTRING" => ScalarFn::Substr,
            _ => return None,
        })
    }
}

/// A compiled, evaluable expression.
pub enum CompiledExpr {
    /// Column at `level` scopes up, `offset` into that row.
    Col {
        level: usize,
        offset: usize,
    },
    Lit(Value),
    Not(Box<CompiledExpr>),
    Neg(Box<CompiledExpr>),
    Binary {
        left: Box<CompiledExpr>,
        op: BinaryOp,
        right: Box<CompiledExpr>,
    },
    Scalar {
        func: ScalarFnBox,
        args: Vec<CompiledExpr>,
    },
    InList {
        expr: Box<CompiledExpr>,
        list: Vec<CompiledExpr>,
        negated: bool,
    },
    /// Uncorrelated IN subqueries are pre-materialised into a key set.
    InSet {
        expr: Box<CompiledExpr>,
        set: HashSet<Key>,
        set_has_null: bool,
        negated: bool,
    },
    /// Correlated IN subquery, re-evaluated per row.
    InSubquery {
        expr: Box<CompiledExpr>,
        subquery: Box<SelectStatement>,
        /// Binding chain of the enclosing scopes (outermost first).
        outer: Vec<Vec<Binding>>,
        negated: bool,
    },
    Between {
        expr: Box<CompiledExpr>,
        low: Box<CompiledExpr>,
        high: Box<CompiledExpr>,
        negated: bool,
    },
    Like {
        expr: Box<CompiledExpr>,
        pattern: Box<CompiledExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<CompiledExpr>,
        negated: bool,
    },
    /// Correlated EXISTS, re-evaluated per row.
    Exists {
        subquery: Box<SelectStatement>,
        /// Binding chain of the enclosing scopes (outermost first).
        outer: Vec<Vec<Binding>>,
        negated: bool,
    },
    /// Correlated scalar subquery, re-evaluated per row.
    ScalarSubquery {
        subquery: Box<SelectStatement>,
        /// Binding chain of the enclosing scopes (outermost first).
        outer: Vec<Vec<Binding>>,
    },
    Case {
        operand: Option<Box<CompiledExpr>>,
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        else_branch: Option<Box<CompiledExpr>>,
    },
    /// Reference to aggregate slot `i` (grouped queries only).
    AggRef(usize),
}

/// Newtype so `ScalarFn` stays private while `CompiledExpr` is public.
pub struct ScalarFnBox(ScalarFn);

/// Expression compiler. `aggregates` is `Some` when compiling the SELECT
/// list / HAVING / ORDER BY of a grouped query: aggregate function calls are
/// then extracted into slots and replaced by [`CompiledExpr::AggRef`].
pub struct Compiler<'a, 'b> {
    pub scope: &'a Scope<'a>,
    pub catalog: &'a Catalog,
    pub aggregates: Option<&'b mut Vec<AggSpec>>,
    /// Set when any column resolved to an enclosing scope — i.e. the
    /// expression is correlated.
    pub used_outer: bool,
}

impl<'a, 'b> Compiler<'a, 'b> {
    pub fn new(scope: &'a Scope<'a>, catalog: &'a Catalog) -> Self {
        Compiler {
            scope,
            catalog,
            aggregates: None,
            used_outer: false,
        }
    }

    pub fn with_aggregates(
        scope: &'a Scope<'a>,
        catalog: &'a Catalog,
        aggs: &'b mut Vec<AggSpec>,
    ) -> Self {
        Compiler {
            scope,
            catalog,
            aggregates: Some(aggs),
            used_outer: false,
        }
    }

    pub fn compile(&mut self, e: &Expr) -> Result<CompiledExpr, EngineError> {
        Ok(match e {
            Expr::Column(c) => {
                let (level, offset) = self.scope.resolve(c)?;
                if level > 0 {
                    self.used_outer = true;
                }
                CompiledExpr::Col { level, offset }
            }
            Expr::Literal(l) => CompiledExpr::Lit(match l {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(f) => Value::Float(*f),
                Literal::Str(s) => Value::Text(s.clone()),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Null => Value::Null,
                Literal::Placeholder => {
                    return Err(EngineError::Unsupported(
                        "`?` placeholder cannot be executed".into(),
                    ))
                }
            }),
            Expr::Unary { op, expr } => {
                let inner = self.compile(expr)?;
                match op {
                    UnaryOp::Not => CompiledExpr::Not(Box::new(inner)),
                    UnaryOp::Neg => CompiledExpr::Neg(Box::new(inner)),
                    UnaryOp::Plus => inner,
                }
            }
            Expr::Binary { left, op, right } => CompiledExpr::Binary {
                left: Box::new(self.compile(left)?),
                op: *op,
                right: Box::new(self.compile(right)?),
            },
            Expr::Function {
                name,
                args,
                distinct,
                star,
            } => {
                if let Some(kind) = AggKind::from_name(name, *star) {
                    let arg = if matches!(kind, AggKind::CountStar) {
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(EngineError::Unsupported(format!(
                                "{name} expects exactly one argument"
                            )));
                        }
                        // Aggregate arguments may not nest aggregates.
                        let mut inner = Compiler::new(self.scope, self.catalog);
                        let compiled = inner.compile(&args[0])?;
                        self.used_outer |= inner.used_outer;
                        Some(compiled)
                    };
                    let Some(aggs) = self.aggregates.as_deref_mut() else {
                        return Err(EngineError::Unsupported(format!(
                            "aggregate {name} not allowed in this clause"
                        )));
                    };
                    aggs.push(AggSpec {
                        kind,
                        arg,
                        distinct: *distinct,
                    });
                    CompiledExpr::AggRef(aggs.len() - 1)
                } else if let Some(f) = ScalarFn::from_name(name) {
                    let mut compiled = Vec::with_capacity(args.len());
                    for a in args {
                        compiled.push(self.compile(a)?);
                    }
                    check_scalar_arity(f, compiled.len())?;
                    CompiledExpr::Scalar {
                        func: ScalarFnBox(f),
                        args: compiled,
                    }
                } else {
                    return Err(EngineError::Unsupported(format!(
                        "unknown function `{name}`"
                    )));
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => CompiledExpr::InList {
                expr: Box::new(self.compile(expr)?),
                list: list
                    .iter()
                    .map(|e| self.compile(e))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let compiled = self.compile(expr)?;
                if self.is_correlated(subquery)? {
                    self.used_outer = true;
                    CompiledExpr::InSubquery {
                        expr: Box::new(compiled),
                        subquery: subquery.clone(),
                        outer: self.scope.chain(),
                        negated: *negated,
                    }
                } else {
                    // Materialise now: the subquery does not depend on the row.
                    let rows = crate::exec::run_subquery(self.catalog, subquery, &[], &[])?;
                    let mut set = HashSet::with_capacity(rows.len());
                    let mut set_has_null = false;
                    for row in &rows {
                        let v = single_column(row)?;
                        if v.is_null() {
                            set_has_null = true;
                        } else {
                            set.insert(v.group_key());
                        }
                    }
                    CompiledExpr::InSet {
                        expr: Box::new(compiled),
                        set,
                        set_has_null,
                        negated: *negated,
                    }
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => CompiledExpr::Between {
                expr: Box::new(self.compile(expr)?),
                low: Box::new(self.compile(low)?),
                high: Box::new(self.compile(high)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => CompiledExpr::Like {
                expr: Box::new(self.compile(expr)?),
                pattern: Box::new(self.compile(pattern)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => CompiledExpr::IsNull {
                expr: Box::new(self.compile(expr)?),
                negated: *negated,
            },
            Expr::Exists { subquery, negated } => {
                if self.is_correlated(subquery)? {
                    self.used_outer = true;
                    CompiledExpr::Exists {
                        subquery: subquery.clone(),
                        outer: self.scope.chain(),
                        negated: *negated,
                    }
                } else {
                    let rows = crate::exec::run_subquery(self.catalog, subquery, &[], &[])?;
                    CompiledExpr::Lit(Value::Bool(rows.is_empty() == *negated))
                }
            }
            Expr::ScalarSubquery(sub) => {
                if self.is_correlated(sub)? {
                    self.used_outer = true;
                    CompiledExpr::ScalarSubquery {
                        subquery: sub.clone(),
                        outer: self.scope.chain(),
                    }
                } else {
                    let rows = crate::exec::run_subquery(self.catalog, sub, &[], &[])?;
                    CompiledExpr::Lit(scalar_result(&rows)?)
                }
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => CompiledExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.compile(o)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.compile(w)?, self.compile(t)?)))
                    .collect::<Result<_, EngineError>>()?,
                else_branch: match else_branch {
                    Some(e) => Some(Box::new(self.compile(e)?)),
                    None => None,
                },
            },
        })
    }

    /// Is `sub` correlated with the current (or any enclosing) scope? We
    /// answer by trial compilation of the subquery in a child scope.
    fn is_correlated(&self, sub: &SelectStatement) -> Result<bool, EngineError> {
        let bindings = crate::exec::bindings_for(self.catalog, sub)?;
        let child = self.scope.child(bindings);
        let mut probe = Compiler::new(&child, self.catalog);
        // Compile all expressions of the subquery; errors at this stage are
        // real compile errors and surface to the caller.
        probe.compile_select_exprs(sub)?;
        Ok(probe.used_outer)
    }

    /// Compile every expression in a SELECT (used for correlation probing).
    fn compile_select_exprs(&mut self, s: &SelectStatement) -> Result<(), EngineError> {
        let mut aggs = Vec::new();
        for item in &s.projection {
            if let SelectItem::Expr { expr, .. } = item {
                let mut c = Compiler::with_aggregates(self.scope, self.catalog, &mut aggs);
                // Note: self.scope here is the *child* scope built by caller.
                c.compile(expr)?;
                self.used_outer |= c.used_outer;
            }
        }
        let mut visit = |e: &Expr| -> Result<(), EngineError> {
            let mut c = Compiler::with_aggregates(self.scope, self.catalog, &mut aggs);
            c.compile(e)?;
            self.used_outer |= c.used_outer;
            Ok(())
        };
        for t in &s.from {
            for j in &t.joins {
                if let Some(on) = &j.on {
                    visit(on)?;
                }
            }
        }
        if let Some(w) = &s.where_clause {
            visit(w)?;
        }
        for g in &s.group_by {
            visit(g)?;
        }
        if let Some(h) = &s.having {
            visit(h)?;
        }
        for o in &s.order_by {
            visit(&o.expr)?;
        }
        Ok(())
    }
}

fn check_scalar_arity(f: ScalarFn, n: usize) -> Result<(), EngineError> {
    let ok = match f {
        ScalarFn::Lower | ScalarFn::Upper | ScalarFn::Length | ScalarFn::Abs => n == 1,
        ScalarFn::Round => n == 1 || n == 2,
        ScalarFn::Coalesce => n >= 1,
        ScalarFn::Substr => n == 2 || n == 3,
    };
    if ok {
        Ok(())
    } else {
        Err(EngineError::Unsupported(format!(
            "wrong number of arguments ({n}) for {f:?}"
        )))
    }
}

fn single_column(row: &Row) -> Result<Value, EngineError> {
    if row.len() != 1 {
        return Err(EngineError::SubqueryShape(format!(
            "IN subquery must return one column, got {}",
            row.len()
        )));
    }
    Ok(row[0].clone())
}

fn scalar_result(rows: &[Row]) -> Result<Value, EngineError> {
    match rows.len() {
        0 => Ok(Value::Null),
        1 => single_column(&rows[0]),
        n => Err(EngineError::SubqueryShape(format!(
            "scalar subquery returned {n} rows"
        ))),
    }
}

/// Evaluation context: the stack of rows (innermost current row last), the
/// catalog (for correlated subqueries) and optional aggregate slot values.
pub struct EvalCtx<'a> {
    pub catalog: &'a Catalog,
    /// Environment stack. `env[env.len()-1]` is the current row; levels
    /// count upward from it.
    pub env: Vec<&'a [Value]>,
    pub agg_values: Option<&'a [Value]>,
}

impl<'a> EvalCtx<'a> {
    pub fn new(catalog: &'a Catalog, row: &'a [Value]) -> Self {
        EvalCtx {
            catalog,
            env: vec![row],
            agg_values: None,
        }
    }

    fn lookup(&self, level: usize, offset: usize) -> Result<Value, EngineError> {
        let idx = self
            .env
            .len()
            .checked_sub(1 + level)
            .ok_or_else(|| EngineError::Unsupported("scope level underflow".into()))?;
        Ok(self.env[idx][offset].clone())
    }
}

impl CompiledExpr {
    /// Evaluate to a [`Value`] under three-valued logic.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Result<Value, EngineError> {
        Ok(match self {
            CompiledExpr::Col { level, offset } => ctx.lookup(*level, *offset)?,
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Not(inner) => match inner.eval(ctx)? {
                Value::Null => Value::Null,
                Value::Bool(b) => Value::Bool(!b),
                other => {
                    return Err(EngineError::TypeError(format!(
                        "NOT applied to non-boolean {other:?}"
                    )))
                }
            },
            CompiledExpr::Neg(inner) => match inner.eval(ctx)? {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(-i),
                Value::Float(f) => Value::Float(-f),
                other => {
                    return Err(EngineError::TypeError(format!(
                        "unary minus applied to {other:?}"
                    )))
                }
            },
            CompiledExpr::Binary { left, op, right } => eval_binary(ctx, left, *op, right)?,
            CompiledExpr::Scalar { func, args } => eval_scalar(ctx, func.0, args)?,
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    let iv = item.eval(ctx)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                in_result(found, saw_null, *negated)
            }
            CompiledExpr::InSet {
                expr,
                set,
                set_has_null,
                negated,
            } => {
                let v = expr.eval(ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = set.contains(&v.group_key());
                in_result(found, *set_has_null, *negated)
            }
            CompiledExpr::InSubquery {
                expr,
                subquery,
                outer,
                negated,
            } => {
                let v = expr.eval(ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let rows = crate::exec::run_subquery(ctx.catalog, subquery, outer, &ctx.env)?;
                let mut saw_null = false;
                let mut found = false;
                for row in &rows {
                    let sv = single_column(row)?;
                    match v.sql_eq(&sv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                in_result(found, saw_null, *negated)
            }
            CompiledExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(ctx)?;
                let lo = low.eval(ctx)?;
                let hi = high.eval(ctx)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                let both = kleene_and(ge, le);
                match both {
                    None => Value::Null,
                    Some(b) => Value::Bool(b != *negated),
                }
            }
            CompiledExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(ctx)?;
                let p = pattern.eval(ctx)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (Value::Text(s), Value::Text(pat)) => {
                        Value::Bool(like_match(&s, &pat) != *negated)
                    }
                    (a, b) => {
                        return Err(EngineError::TypeError(format!(
                            "LIKE requires text operands, got {a:?} / {b:?}"
                        )))
                    }
                }
            }
            CompiledExpr::IsNull { expr, negated } => {
                Value::Bool(expr.eval(ctx)?.is_null() != *negated)
            }
            CompiledExpr::Exists {
                subquery,
                outer,
                negated,
            } => {
                let rows = crate::exec::run_subquery(ctx.catalog, subquery, outer, &ctx.env)?;
                Value::Bool(rows.is_empty() == *negated)
            }
            CompiledExpr::ScalarSubquery { subquery, outer } => {
                let rows = crate::exec::run_subquery(ctx.catalog, subquery, outer, &ctx.env)?;
                scalar_result(&rows)?
            }
            CompiledExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let op_val = match operand {
                    Some(o) => Some(o.eval(ctx)?),
                    None => None,
                };
                for (when, then) in branches {
                    let cond = when.eval(ctx)?;
                    let fire = match &op_val {
                        Some(v) => v.sql_eq(&cond) == Some(true),
                        None => cond.as_bool() == Some(true),
                    };
                    if fire {
                        return then.eval(ctx);
                    }
                }
                match else_branch {
                    Some(e) => e.eval(ctx)?,
                    None => Value::Null,
                }
            }
            CompiledExpr::AggRef(i) => {
                let aggs = ctx.agg_values.ok_or_else(|| {
                    EngineError::Unsupported("aggregate reference outside grouped context".into())
                })?;
                aggs[*i].clone()
            }
        })
    }

    /// Evaluate as a predicate: `true` only for an exact SQL TRUE.
    pub fn eval_predicate(&self, ctx: &EvalCtx<'_>) -> Result<bool, EngineError> {
        Ok(matches!(self.eval(ctx)?, Value::Bool(true)))
    }
}

fn in_result(found: bool, saw_null: bool, negated: bool) -> Value {
    if found {
        Value::Bool(!negated)
    } else if saw_null {
        // `x IN (…)` with an unmatched NULL in the list is UNKNOWN.
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

fn kleene_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn kleene_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn to_kleene(v: &Value) -> Result<Option<bool>, EngineError> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeError(format!(
            "expected boolean, got {other:?}"
        ))),
    }
}

fn eval_binary(
    ctx: &EvalCtx<'_>,
    left: &CompiledExpr,
    op: BinaryOp,
    right: &CompiledExpr,
) -> Result<Value, EngineError> {
    // AND/OR get Kleene semantics with short-circuiting on the left value.
    match op {
        BinaryOp::And => {
            let l = to_kleene(&left.eval(ctx)?)?;
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = to_kleene(&right.eval(ctx)?)?;
            return Ok(match kleene_and(l, r) {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = to_kleene(&left.eval(ctx)?)?;
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = to_kleene(&right.eval(ctx)?)?;
            return Ok(match kleene_or(l, r) {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            });
        }
        _ => {}
    }

    let l = left.eval(ctx)?;
    let r = right.eval(ctx)?;

    if op.is_comparison() {
        return Ok(match l.sql_cmp(&r) {
            None => Value::Null,
            Some(ord) => {
                use std::cmp::Ordering::*;
                let b = match op {
                    BinaryOp::Eq => ord == Equal,
                    BinaryOp::NotEq => ord != Equal,
                    BinaryOp::Lt => ord == Less,
                    BinaryOp::LtEq => ord != Greater,
                    BinaryOp::Gt => ord == Greater,
                    BinaryOp::GtEq => ord != Less,
                    _ => unreachable!(),
                };
                Value::Bool(b)
            }
        });
    }

    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    match op {
        BinaryOp::Concat => {
            let ls = l.render();
            let rs = r.render();
            Ok(Value::Text(format!("{ls}{rs}")))
        }
        BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => {
                    let a = *a;
                    let b = *b;
                    Ok(match op {
                        BinaryOp::Plus => Value::Int(a.wrapping_add(b)),
                        BinaryOp::Minus => Value::Int(a.wrapping_sub(b)),
                        BinaryOp::Mul => Value::Int(a.wrapping_mul(b)),
                        BinaryOp::Div => {
                            if b == 0 {
                                return Err(EngineError::Arithmetic("division by zero".into()));
                            }
                            Value::Int(a.wrapping_div(b))
                        }
                        BinaryOp::Mod => {
                            if b == 0 {
                                return Err(EngineError::Arithmetic("modulo by zero".into()));
                            }
                            Value::Int(a.wrapping_rem(b))
                        }
                        _ => unreachable!(),
                    })
                }
                _ => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(EngineError::TypeError(format!(
                                "arithmetic on non-numeric operands {l:?} / {r:?}"
                            )))
                        }
                    };
                    Ok(Value::Float(match op {
                        BinaryOp::Plus => a + b,
                        BinaryOp::Minus => a - b,
                        BinaryOp::Mul => a * b,
                        BinaryOp::Div => {
                            if b == 0.0 {
                                return Err(EngineError::Arithmetic("division by zero".into()));
                            }
                            a / b
                        }
                        BinaryOp::Mod => {
                            if b == 0.0 {
                                return Err(EngineError::Arithmetic("modulo by zero".into()));
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    }))
                }
            }
        }
        _ => unreachable!("AND/OR handled above"),
    }
}

fn eval_scalar(
    ctx: &EvalCtx<'_>,
    f: ScalarFn,
    args: &[CompiledExpr],
) -> Result<Value, EngineError> {
    let vals: Vec<Value> = args.iter().map(|a| a.eval(ctx)).collect::<Result<_, _>>()?;
    // COALESCE is the only function that tolerates NULL arguments.
    if f == ScalarFn::Coalesce {
        for v in vals {
            if !v.is_null() {
                return Ok(v);
            }
        }
        return Ok(Value::Null);
    }
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    Ok(match f {
        ScalarFn::Lower => Value::Text(text_arg(&vals[0], "LOWER")?.to_lowercase()),
        ScalarFn::Upper => Value::Text(text_arg(&vals[0], "UPPER")?.to_uppercase()),
        ScalarFn::Length => Value::Int(text_arg(&vals[0], "LENGTH")?.chars().count() as i64),
        ScalarFn::Abs => match &vals[0] {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            Value::Float(fl) => Value::Float(fl.abs()),
            other => {
                return Err(EngineError::TypeError(format!(
                    "ABS expects a number, got {other:?}"
                )))
            }
        },
        ScalarFn::Round => {
            let x = vals[0]
                .as_f64()
                .ok_or_else(|| EngineError::TypeError("ROUND expects a number".into()))?;
            let digits = if vals.len() == 2 {
                vals[1]
                    .as_i64()
                    .ok_or_else(|| EngineError::TypeError("ROUND digits must be int".into()))?
            } else {
                0
            };
            let m = 10f64.powi(digits as i32);
            Value::Float((x * m).round() / m)
        }
        ScalarFn::Coalesce => unreachable!(),
        ScalarFn::Substr => {
            let s = text_arg(&vals[0], "SUBSTR")?;
            let start = vals[1]
                .as_i64()
                .ok_or_else(|| EngineError::TypeError("SUBSTR start must be int".into()))?;
            let chars: Vec<char> = s.chars().collect();
            let from = (start.max(1) as usize - 1).min(chars.len());
            let len = if vals.len() == 3 {
                vals[2]
                    .as_i64()
                    .ok_or_else(|| EngineError::TypeError("SUBSTR length must be int".into()))?
                    .max(0) as usize
            } else {
                chars.len() - from
            };
            Value::Text(chars[from..(from + len).min(chars.len())].iter().collect())
        }
    })
}

fn text_arg<'v>(v: &'v Value, f: &str) -> Result<&'v str, EngineError> {
    v.as_str()
        .ok_or_else(|| EngineError::TypeError(format!("{f} expects text, got {v:?}")))
}

/// SQL LIKE with `%` (any run) and `_` (any single char); case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=s.len()).any(|i| rec(&s[i..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_semantics() {
        assert!(like_match("Lake Washington", "Lake%"));
        assert!(like_match("Lake Washington", "%Wash%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("anything", "%%"));
    }

    #[test]
    fn kleene_tables() {
        assert_eq!(kleene_and(Some(true), None), None);
        assert_eq!(kleene_and(Some(false), None), Some(false));
        assert_eq!(kleene_or(Some(true), None), Some(true));
        assert_eq!(kleene_or(Some(false), None), None);
    }

    #[test]
    fn in_result_matrix() {
        assert_eq!(in_result(true, false, false), Value::Bool(true));
        assert_eq!(in_result(true, true, true), Value::Bool(false));
        assert_eq!(in_result(false, true, false), Value::Null);
        assert_eq!(in_result(false, false, true), Value::Bool(true));
    }
}
