//! The engine façade: parse → dispatch → execute, with runtime metrics.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec;
use crate::expr::{Binding, Compiler, EvalCtx, Scope};
use crate::index::{HashIndex, IndexAccess, Indexes};
use crate::schema::{ColumnDef, TableSchema};
use crate::stats::TableStats;
use crate::table::{Row, Table};
use crate::value::Value;
use parking_lot::RwLock;
use sqlparse::ast::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime metrics for one executed statement — the "runtime features" the
/// CQMS Query Profiler records for every logged query (paper §4.1).
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Result (or affected-row) cardinality.
    pub cardinality: u64,
    /// Base-table rows scanned.
    pub rows_scanned: u64,
    /// Plan description, e.g. `Scan(a) -> HashJoin(b on 1 keys) -> Project(2)`.
    pub plan: String,
    /// Logical timestamp assigned to this statement by the catalog clock.
    pub logical_time: u64,
}

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Row>,
    pub metrics: ExecMetrics,
}

impl QueryResult {
    /// Render the first `n` rows as an aligned text table (client display).
    pub fn render(&self, n: usize) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let shown = &self.rows[..self.rows.len().min(n)];
        let rendered: Vec<Vec<String>> = shown
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:w$}  ",
                    cell,
                    w = widths.get(i).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        if self.rows.len() > n {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }
}

/// The embedded relational engine: a catalog plus hash indexes.
///
/// Writes (`execute*`) take `&mut self`. Read-only SELECTs can instead go
/// through [`Engine::query`] / [`Engine::query_statement`], which take
/// `&self` so concurrent readers never serialise on the engine itself: the
/// lazily-maintained hash indexes — the only mutable read-path state — are
/// published as an epoch snapshot (`Arc<Indexes>`). A reader clones the
/// current snapshot once and uses it lock-free; a reader that finds an
/// index stale rebuilds it **off-lock** and publishes a copy-on-write
/// successor with one brief write-lock swap, so readers always get index
/// pushdown instead of degrading to a scan under contention.
pub struct Engine {
    pub catalog: Catalog,
    indexes: RwLock<Arc<Indexes>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            catalog: Catalog::default(),
            indexes: RwLock::new(Arc::new(Indexes::new())),
        }
    }
}

impl Engine {
    pub fn new() -> Self {
        Engine::default()
    }

    /// Exclusive access to the index set (write paths). Copy-on-write: if a
    /// published snapshot still shares the `Arc`, it is detached first so
    /// in-flight readers keep their frozen epoch.
    fn indexes_mut(&mut self) -> &mut Indexes {
        Arc::make_mut(self.indexes.get_mut())
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = sqlparse::parse(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmts = sqlparse::parse_statements(sql)?;
        let mut last = QueryResult::default();
        for stmt in &stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Parse and run one read-only SELECT with `&self` (the concurrent read
    /// path). Non-SELECT statements are rejected; use [`Engine::execute`].
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = sqlparse::parse(sql)?;
        self.query_statement(&stmt)
    }

    /// Run an already-parsed SELECT with `&self`.
    ///
    /// Unlike [`Engine::execute_statement`], reads observe but do not
    /// advance the catalog's logical clock, and they never block on the
    /// index cache: the SELECT runs against an epoch snapshot of the
    /// indexes ([`EpochIndexes`]), rebuilding a stale index off-lock and
    /// publishing the result for later readers.
    pub fn query_statement(&self, stmt: &Statement) -> Result<QueryResult, EngineError> {
        let Statement::Select(s) = stmt else {
            return Err(EngineError::Unsupported(
                "query()/query_statement() are read-only; use execute() for writes".into(),
            ));
        };
        let start = Instant::now();
        let mut epoch = EpochIndexes::new(&self.indexes);
        let out = exec::run_select(&self.catalog, s, Some(&mut epoch))?;
        Ok(QueryResult {
            metrics: ExecMetrics {
                cardinality: out.rows.len() as u64,
                rows_scanned: out.stats.rows_scanned,
                plan: out.stats.plan,
                elapsed: start.elapsed(),
                logical_time: self.catalog.now(),
            },
            columns: out.columns,
            rows: out.rows,
        })
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult, EngineError> {
        let start = Instant::now();
        let mut result = match stmt {
            Statement::Select(s) => self.run_select(s)?,
            Statement::Insert(i) => self.run_insert(i)?,
            Statement::CreateTable(c) => {
                let schema = TableSchema::new(
                    c.name.clone(),
                    c.columns
                        .iter()
                        .map(|(n, t)| ColumnDef::new(n.clone(), *t))
                        .collect(),
                );
                self.catalog.create_table(schema)?;
                QueryResult::default()
            }
            Statement::Update(u) => self.run_update(u)?,
            Statement::Delete(d) => self.run_delete(d)?,
            Statement::DropTable(t) => {
                self.catalog.drop_table(t)?;
                self.indexes_mut().invalidate_table(t);
                QueryResult::default()
            }
            Statement::AlterRenameColumn { table, from, to } => {
                self.catalog.rename_column(table, from, to)?;
                self.indexes_mut().invalidate_table(table);
                QueryResult::default()
            }
            Statement::AlterDropColumn { table, column } => {
                self.catalog.drop_column(table, column)?;
                self.indexes_mut().invalidate_table(table);
                QueryResult::default()
            }
            Statement::AlterAddColumn {
                table,
                column,
                data_type,
            } => {
                self.catalog.add_column(table, column, *data_type)?;
                self.indexes_mut().invalidate_table(table);
                QueryResult::default()
            }
            Statement::AlterRenameTable { table, to } => {
                self.catalog.rename_table(table, to)?;
                self.indexes_mut().invalidate_table(table);
                self.indexes_mut().invalidate_table(to);
                QueryResult::default()
            }
        };
        // SELECT does not mutate: tick once per statement regardless so the
        // profiler can order queries and schema changes on one clock.
        let logical_time = match stmt {
            Statement::Select(_) => self.catalog.tick(),
            // DDL already ticked inside the catalog ops; DML ticks here.
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                self.catalog.tick()
            }
            _ => self.catalog.now(),
        };
        result.metrics.elapsed = start.elapsed();
        result.metrics.logical_time = logical_time;
        Ok(result)
    }

    fn run_select(&mut self, s: &SelectStatement) -> Result<QueryResult, EngineError> {
        let idxs = Arc::make_mut(self.indexes.get_mut());
        let out = exec::run_select(&self.catalog, s, Some(idxs))?;
        Ok(QueryResult {
            metrics: ExecMetrics {
                cardinality: out.rows.len() as u64,
                rows_scanned: out.stats.rows_scanned,
                plan: out.stats.plan,
                ..Default::default()
            },
            columns: out.columns,
            rows: out.rows,
        })
    }

    fn run_insert(&mut self, ins: &InsertStatement) -> Result<QueryResult, EngineError> {
        // Evaluate rows first (needs & borrow), then mutate the table.
        let schema = self.catalog.table(&ins.table)?.schema.clone();
        let scope = Scope::root(Vec::new());
        let empty: Row = Vec::new();
        let mut rows: Vec<Row> = Vec::with_capacity(ins.rows.len());
        for exprs in &ins.rows {
            let mut vals: Vec<Value> = Vec::with_capacity(exprs.len());
            for e in exprs {
                let mut c = Compiler::new(&scope, &self.catalog);
                let ce = c.compile(e)?;
                let ctx = EvalCtx::new(&self.catalog, &empty);
                vals.push(ce.eval(&ctx)?);
            }
            let row = if ins.columns.is_empty() {
                vals
            } else {
                if vals.len() != ins.columns.len() {
                    return Err(EngineError::ArityMismatch {
                        expected: ins.columns.len(),
                        got: vals.len(),
                    });
                }
                let mut row: Row = vec![Value::Null; schema.arity()];
                for (col, v) in ins.columns.iter().zip(vals) {
                    let idx =
                        schema
                            .column_index(col)
                            .ok_or_else(|| EngineError::UnknownColumn {
                                column: col.clone(),
                                context: format!("table `{}`", schema.name),
                            })?;
                    row[idx] = v;
                }
                row
            };
            rows.push(row);
        }
        let n = rows.len() as u64;
        let table = self.catalog.table_mut(&ins.table)?;
        for row in rows {
            table.insert(row)?;
        }
        self.indexes_mut().invalidate_table(&ins.table);
        Ok(QueryResult {
            metrics: ExecMetrics {
                cardinality: n,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn run_update(&mut self, u: &UpdateStatement) -> Result<QueryResult, EngineError> {
        let table = self.catalog.table(&u.table)?;
        let binding = table_binding(table);
        let scope = Scope::root(vec![binding]);

        let predicate = match &u.where_clause {
            Some(w) => Some(Compiler::new(&scope, &self.catalog).compile(w)?),
            None => None,
        };
        let mut assignments = Vec::with_capacity(u.assignments.len());
        for (col, e) in &u.assignments {
            let idx = table
                .schema
                .column_index(col)
                .ok_or_else(|| EngineError::UnknownColumn {
                    column: col.clone(),
                    context: format!("table `{}`", table.schema.name),
                })?;
            let ce = Compiler::new(&scope, &self.catalog).compile(e)?;
            assignments.push((idx, ce));
        }

        // Phase 1 (immutable): compute replacement values.
        let mut updates: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
        for (ri, row) in table.rows.iter().enumerate() {
            let ctx = EvalCtx::new(&self.catalog, row);
            let hit = match &predicate {
                Some(p) => p.eval_predicate(&ctx)?,
                None => true,
            };
            if !hit {
                continue;
            }
            let mut vals = Vec::with_capacity(assignments.len());
            for (idx, ce) in &assignments {
                vals.push((*idx, ce.eval(&ctx)?));
            }
            updates.push((ri, vals));
        }

        // Phase 2 (mutable): apply.
        let n = updates.len() as u64;
        let table = self.catalog.table_mut(&u.table)?;
        for (ri, vals) in updates {
            for (idx, v) in vals {
                let ty = table.schema.columns[idx].data_type;
                if !v.conforms_to(ty) {
                    return Err(EngineError::TypeError(format!(
                        "value {v:?} does not fit column `{}`",
                        table.schema.columns[idx].name
                    )));
                }
                table.rows[ri][idx] = v.coerce(ty);
            }
        }
        self.indexes_mut().invalidate_table(&u.table);
        Ok(QueryResult {
            metrics: ExecMetrics {
                cardinality: n,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn run_delete(&mut self, d: &DeleteStatement) -> Result<QueryResult, EngineError> {
        let table = self.catalog.table(&d.table)?;
        let binding = table_binding(table);
        let scope = Scope::root(vec![binding]);
        let predicate = match &d.where_clause {
            Some(w) => Some(Compiler::new(&scope, &self.catalog).compile(w)?),
            None => None,
        };
        let mut doomed: Vec<bool> = Vec::with_capacity(table.len());
        for row in &table.rows {
            let ctx = EvalCtx::new(&self.catalog, row);
            doomed.push(match &predicate {
                Some(p) => p.eval_predicate(&ctx)?,
                None => true,
            });
        }
        let table = self.catalog.table_mut(&d.table)?;
        let mut i = 0;
        let before = table.rows.len();
        table.rows.retain(|_| {
            let keep = !doomed[i];
            i += 1;
            keep
        });
        let n = (before - table.rows.len()) as u64;
        self.indexes_mut().invalidate_table(&d.table);
        Ok(QueryResult {
            metrics: ExecMetrics {
                cardinality: n,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    // ------------------------------------------------------------------
    // Administration
    // ------------------------------------------------------------------

    /// Declare a hash index on `table.column` (built lazily on first use).
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), EngineError> {
        let t = self.catalog.table(table)?;
        if t.schema.column_index(column).is_none() {
            return Err(EngineError::UnknownColumn {
                column: column.to_string(),
                context: format!("table `{table}`"),
            });
        }
        self.indexes_mut().create(table, column);
        Ok(())
    }

    pub fn drop_index(&mut self, table: &str, column: &str) -> bool {
        self.indexes_mut().drop(table, column)
    }

    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.indexes.read().has(table, column)
    }

    /// Mark all indexes on `table` stale. Required after mutating a table's
    /// rows directly through `catalog.table_mut` (bulk loads) instead of SQL.
    pub fn invalidate_indexes(&mut self, table: &str) {
        self.indexes_mut().invalidate_table(table);
    }

    /// Compute statistics for a table (paper §4.1/§4.4 building block).
    pub fn table_stats(&self, table: &str) -> Result<TableStats, EngineError> {
        Ok(TableStats::compute(self.catalog.table(table)?))
    }

    /// Convenience: does a parsed statement *compile* against the current
    /// schema? Used by Query Maintenance to validate stored queries without
    /// running them (paper §4.4).
    pub fn validates(&self, stmt: &Statement) -> Result<(), EngineError> {
        match stmt {
            Statement::Select(s) => {
                let bindings = exec::bindings_for(&self.catalog, s)?;
                let scope = Scope::root(bindings);
                let mut aggs = Vec::new();
                for item in &s.projection {
                    if let SelectItem::Expr { expr, .. } = item {
                        Compiler::with_aggregates(&scope, &self.catalog, &mut aggs)
                            .compile(expr)?;
                    }
                }
                if let Some(w) = &s.where_clause {
                    Compiler::new(&scope, &self.catalog).compile(w)?;
                }
                for g in &s.group_by {
                    Compiler::new(&scope, &self.catalog).compile(g)?;
                }
                if let Some(h) = &s.having {
                    Compiler::with_aggregates(&scope, &self.catalog, &mut aggs).compile(h)?;
                }
                for o in &s.order_by {
                    Compiler::with_aggregates(&scope, &self.catalog, &mut aggs).compile(&o.expr)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// The read-path index accessor: one epoch snapshot per statement.
///
/// Construction clones the engine's current `Arc<Indexes>` under a brief
/// read lock; every lookup after that is lock-free. When a lookup finds its
/// index stale (a writer invalidated it since the last publish), the reader
/// rebuilds **off-lock** from the table it already holds a borrow of, then
/// publishes a copy-on-write successor snapshot with one short write-lock
/// swap so later readers skip the rebuild. Because `query_statement` holds
/// `&Engine`, no writer can mutate the catalog mid-statement; concurrent
/// readers racing to publish the same rebuild install identical content,
/// so the race is benign.
pub struct EpochIndexes<'a> {
    shared: &'a RwLock<Arc<Indexes>>,
    snap: Arc<Indexes>,
}

impl<'a> EpochIndexes<'a> {
    fn new(shared: &'a RwLock<Arc<Indexes>>) -> Self {
        let snap = shared.read().clone();
        EpochIndexes { shared, snap }
    }
}

impl IndexAccess for EpochIndexes<'_> {
    fn prepared(
        &mut self,
        table_name: &str,
        column: &str,
        table: &Table,
        col_idx: usize,
    ) -> Option<Arc<HashIndex>> {
        let declared = self.snap.get(table_name, column)?;
        if declared.is_fresh(table) {
            return Some(declared.clone());
        }
        let mut fresh = HashIndex::new();
        fresh.rebuild(table, col_idx);
        let fresh = Arc::new(fresh);
        let mut guard = self.shared.write();
        Arc::make_mut(&mut guard).install(table_name, column, fresh.clone());
        self.snap = guard.clone();
        drop(guard);
        Some(fresh)
    }
}

fn table_binding(table: &crate::table::Table) -> Binding {
    Binding {
        binding: table.schema.name.to_ascii_lowercase(),
        table: table.schema.name.to_ascii_lowercase(),
        columns: table
            .schema
            .columns
            .iter()
            .map(|c| c.name.to_ascii_lowercase())
            .collect(),
        offset: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lakes_engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE WaterTemp (loc_x FLOAT, loc_y FLOAT, temp FLOAT, lake TEXT)")
            .unwrap();
        e.execute(
            "CREATE TABLE WaterSalinity (loc_x FLOAT, loc_y FLOAT, salinity FLOAT, lake TEXT)",
        )
        .unwrap();
        e.execute(
            "CREATE TABLE CityLocations (city TEXT, state TEXT, loc_x FLOAT, loc_y FLOAT, pop INT)",
        )
        .unwrap();
        e.execute(
            "INSERT INTO WaterTemp VALUES \
             (1.0, 1.0, 15.5, 'Lake Washington'), \
             (1.0, 2.0, 17.0, 'Lake Washington'), \
             (2.0, 1.0, 21.0, 'Lake Union'), \
             (3.0, 3.0, 9.0, 'Lake Sammamish')",
        )
        .unwrap();
        e.execute(
            "INSERT INTO WaterSalinity VALUES \
             (1.0, 1.0, 0.2, 'Lake Washington'), \
             (2.0, 1.0, 0.5, 'Lake Union'), \
             (3.0, 3.0, 0.1, 'Lake Sammamish')",
        )
        .unwrap();
        e.execute(
            "INSERT INTO CityLocations VALUES \
             ('Seattle', 'WA', 1.0, 1.0, 750000), \
             ('Bellevue', 'WA', 2.0, 1.0, 150000), \
             ('Portland', 'OR', 9.0, 9.0, 650000)",
        )
        .unwrap();
        e
    }

    #[test]
    fn query_is_read_only_and_matches_execute() {
        let mut e = lakes_engine();
        let sql = "SELECT lake, temp FROM WaterTemp WHERE temp < 18 ORDER BY temp";
        let via_execute = e.execute(sql).unwrap();
        let via_query = e.query(sql).unwrap();
        assert_eq!(via_query.columns, via_execute.columns);
        assert_eq!(via_query.rows, via_execute.rows);
        // Reads observe, but never advance, the logical clock.
        let before = e.catalog.now();
        e.query("SELECT * FROM WaterTemp").unwrap();
        assert_eq!(e.catalog.now(), before);
        // Writes are rejected on the read path.
        let err = e.query("DELETE FROM WaterTemp").unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
        assert_eq!(e.query("SELECT * FROM WaterTemp").unwrap().rows.len(), 4);
    }

    #[test]
    fn concurrent_queries_share_the_engine() {
        let mut e = lakes_engine();
        e.create_index("WaterTemp", "lake").unwrap();
        // Warm the index through the write path, then hammer reads from
        // multiple threads; each statement clones one epoch snapshot and
        // every thread must see identical results.
        e.execute("SELECT temp FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        let e = &e;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut rows = 0usize;
                        for _ in 0..50 {
                            rows += e
                                .query("SELECT temp FROM WaterTemp WHERE lake = 'Lake Washington'")
                                .unwrap()
                                .rows
                                .len();
                        }
                        rows
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 100);
            }
        });
    }

    #[test]
    fn read_path_rebuilds_and_publishes_indexes() {
        let mut e = lakes_engine();
        e.create_index("WaterTemp", "lake").unwrap();
        // The index has never been built; a `&self` read must rebuild it
        // off-lock and use it rather than degrade to an index-free scan.
        let r = e
            .query("SELECT temp FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        assert!(r.metrics.plan.contains("idx[lake]"), "{}", r.metrics.plan);
        // The publish sticks: after a write invalidates, the next readers
        // again rebuild once and share the fresh epoch.
        e.execute("INSERT INTO WaterTemp VALUES (9.0, 9.0, 12.0, 'Lake Union')")
            .unwrap();
        let r2 = e
            .query("SELECT temp FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        assert_eq!(r2.rows.len(), 2);
        assert!(r2.metrics.plan.contains("idx[lake]"), "{}", r2.metrics.plan);
    }

    #[test]
    fn select_filter_project() {
        let mut e = lakes_engine();
        let r = e
            .execute("SELECT lake, temp FROM WaterTemp WHERE temp < 18 ORDER BY temp")
            .unwrap();
        assert_eq!(r.columns, vec!["lake", "temp"]);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::Text("Lake Sammamish".into()));
        assert_eq!(r.metrics.cardinality, 3);
        assert!(r.metrics.rows_scanned >= 4);
    }

    #[test]
    fn comma_join_becomes_hash_join() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT T.lake, T.temp, S.salinity FROM WaterTemp T, WaterSalinity S \
                 WHERE T.loc_x = S.loc_x AND T.loc_y = S.loc_y",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert!(r.metrics.plan.contains("HashJoin"), "{}", r.metrics.plan);
    }

    #[test]
    fn explicit_left_outer_join_pads_nulls() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT T.lake, S.salinity FROM WaterTemp T LEFT OUTER JOIN WaterSalinity S \
                 ON T.loc_x = S.loc_x AND T.loc_y = S.loc_y ORDER BY T.lake",
            )
            .unwrap();
        // 4 temp readings; the (1.0, 2.0) one has no salinity match.
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().any(|row| row[1].is_null()));
    }

    #[test]
    fn group_by_having() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT lake, COUNT(*) AS n, AVG(temp) AS avg_temp FROM WaterTemp \
                 GROUP BY lake HAVING COUNT(*) > 1",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("Lake Washington".into()));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(16.25));
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let mut e = lakes_engine();
        let r = e
            .execute("SELECT COUNT(*), SUM(temp), MIN(temp) FROM WaterTemp WHERE temp > 100")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
    }

    #[test]
    fn uncorrelated_in_subquery() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT lake FROM WaterSalinity WHERE lake IN \
                 (SELECT lake FROM WaterTemp WHERE temp < 18)",
            )
            .unwrap();
        let lakes: Vec<String> = r.rows.iter().map(|r| r[0].render()).collect();
        assert!(lakes.contains(&"Lake Washington".to_string()));
        assert!(!lakes.contains(&"Lake Union".to_string()));
    }

    #[test]
    fn correlated_exists_subquery() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT city FROM CityLocations WHERE EXISTS \
                 (SELECT * FROM WaterTemp WHERE WaterTemp.loc_x = CityLocations.loc_x \
                  AND WaterTemp.loc_y = CityLocations.loc_y)",
            )
            .unwrap();
        let cities: Vec<String> = r.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(cities.len(), 2);
        assert!(cities.contains(&"Seattle".to_string()));
        assert!(!cities.contains(&"Portland".to_string()));
    }

    #[test]
    fn scalar_subquery_comparison() {
        let mut e = lakes_engine();
        let r = e
            .execute(
                "SELECT city FROM CityLocations WHERE pop > \
                 (SELECT AVG(pop) FROM CityLocations)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2); // Seattle & Portland above the mean
    }

    #[test]
    fn figure3_query_executes() {
        // The assisted-mode query of the paper's Figure 3 (completed form).
        let mut e = lakes_engine();
        e.execute("CREATE TABLE Cities (City TEXT, State TEXT, Pop INT)")
            .unwrap();
        e.execute(
            "INSERT INTO Cities VALUES ('Seattle', 'WA', 750000), ('Portland', 'OR', 650000)",
        )
        .unwrap();
        let r = e
            .execute(
                "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
                 WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y \
                 AND L.city IN (SELECT City FROM Cities WHERE State = 'WA')",
            )
            .unwrap();
        // Matches: WaterSalinity/WaterTemp pairs at (1,1) and (3,3) with
        // temp < 18, crossed with the single city in Cities-WA (Seattle).
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        let mut e = lakes_engine();
        let r = e
            .execute("UPDATE WaterTemp SET temp = temp + 1 WHERE lake = 'Lake Union'")
            .unwrap();
        assert_eq!(r.metrics.cardinality, 1);
        let r = e
            .execute("SELECT temp FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(22.0));
        let r = e.execute("DELETE FROM WaterTemp WHERE temp > 20").unwrap();
        assert_eq!(r.metrics.cardinality, 1);
        assert_eq!(e.catalog.table("WaterTemp").unwrap().len(), 3);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut e = lakes_engine();
        e.execute("INSERT INTO WaterTemp (lake, temp) VALUES ('Lake X', 12.0)")
            .unwrap();
        let r = e
            .execute("SELECT loc_x, lake FROM WaterTemp WHERE lake = 'Lake X'")
            .unwrap();
        assert!(r.rows[0][0].is_null());
    }

    #[test]
    fn index_accelerated_lookup_same_results() {
        let mut e = lakes_engine();
        let plain = e
            .execute("SELECT temp FROM WaterTemp WHERE lake = 'Lake Washington' ORDER BY temp")
            .unwrap();
        e.create_index("WaterTemp", "lake").unwrap();
        let indexed = e
            .execute("SELECT temp FROM WaterTemp WHERE lake = 'Lake Washington' ORDER BY temp")
            .unwrap();
        assert_eq!(plain.rows, indexed.rows);
        assert!(
            indexed.metrics.plan.contains("idx[lake]"),
            "{}",
            indexed.metrics.plan
        );
    }

    #[test]
    fn index_sees_new_rows() {
        let mut e = lakes_engine();
        e.create_index("WaterTemp", "lake").unwrap();
        e.execute("SELECT * FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        e.execute("INSERT INTO WaterTemp VALUES (5.0, 5.0, 11.0, 'Lake Union')")
            .unwrap();
        let r = e
            .execute("SELECT * FROM WaterTemp WHERE lake = 'Lake Union'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn distinct_limit_offset() {
        let mut e = lakes_engine();
        let r = e
            .execute("SELECT DISTINCT lake FROM WaterTemp ORDER BY lake LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0].render(), "Lake Union");
    }

    #[test]
    fn select_expressions_and_aliases() {
        let mut e = lakes_engine();
        let r = e
            .execute("SELECT temp * 2 AS doubled, UPPER(lake) FROM WaterTemp ORDER BY doubled DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.columns[0], "doubled");
        assert_eq!(r.rows[0][0], Value::Float(42.0));
        assert_eq!(r.rows[0][1].render(), "LAKE UNION");
    }

    #[test]
    fn three_valued_logic_in_where() {
        let mut e = lakes_engine();
        e.execute("INSERT INTO WaterTemp VALUES (NULL, NULL, NULL, 'Mystery Lake')")
            .unwrap();
        // NULL temp neither satisfies temp < 18 nor temp >= 18.
        let below = e
            .execute("SELECT * FROM WaterTemp WHERE temp < 18")
            .unwrap();
        let above = e
            .execute("SELECT * FROM WaterTemp WHERE temp >= 18")
            .unwrap();
        assert_eq!(below.rows.len() + above.rows.len(), 4);
        // IS NULL finds it.
        let nulls = e
            .execute("SELECT * FROM WaterTemp WHERE temp IS NULL")
            .unwrap();
        assert_eq!(nulls.rows.len(), 1);
    }

    #[test]
    fn validates_against_current_schema() {
        let mut e = lakes_engine();
        let good = sqlparse::parse("SELECT temp FROM WaterTemp").unwrap();
        assert!(e.validates(&good).is_ok());
        e.execute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
            .unwrap();
        assert!(e.validates(&good).is_err());
        let repaired = sqlparse::parse("SELECT temperature FROM WaterTemp").unwrap();
        assert!(e.validates(&repaired).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        let mut e = lakes_engine();
        assert!(matches!(
            e.execute("SELECT * FROM NoSuchTable"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            e.execute("SELECT nope FROM WaterTemp"),
            Err(EngineError::UnknownColumn { .. })
        ));
        assert!(matches!(
            e.execute("SELECT 1 / 0"),
            Err(EngineError::Arithmetic(_))
        ));
        assert!(e.execute("SELEC * FROM WaterTemp").is_err());
    }

    #[test]
    fn cross_join_and_full_outer() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE a (x INT)").unwrap();
        e.execute("CREATE TABLE b (y INT)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (2)").unwrap();
        e.execute("INSERT INTO b VALUES (10), (20), (30)").unwrap();
        let cross = e.execute("SELECT * FROM a CROSS JOIN b").unwrap();
        assert_eq!(cross.rows.len(), 6);
        e.execute("CREATE TABLE c (x INT)").unwrap();
        e.execute("INSERT INTO c VALUES (2), (3)").unwrap();
        let full = e
            .execute("SELECT * FROM a FULL OUTER JOIN c ON a.x = c.x ORDER BY a.x")
            .unwrap();
        // 1-NULL, 2-2, NULL-3.
        assert_eq!(full.rows.len(), 3);
    }

    #[test]
    fn render_table_output() {
        let mut e = lakes_engine();
        let r = e
            .execute("SELECT lake, temp FROM WaterTemp ORDER BY temp LIMIT 2")
            .unwrap();
        let s = r.render(10);
        assert!(s.contains("lake"));
        assert!(s.contains("Lake Sammamish"));
    }
}
