//! Catalog: named tables, logical time, and the schema-change log.
//!
//! The CQMS Query Maintenance component (paper §4.4) detects queries
//! invalidated by schema evolution "by comparing the timestamp of a query
//! with that of the last schema modification on any input relation". The
//! catalog is where those modification timestamps live: every DDL operation
//! advances a logical clock and appends a [`SchemaChange`] record.

use crate::error::EngineError;
use crate::schema::TableSchema;
use crate::table::Table;
use sqlparse::ast::DataType;
use std::collections::HashMap;

/// Kinds of schema change the maintenance engine can react to.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaChangeKind {
    CreatedTable,
    DroppedTable,
    RenamedTable { to: String },
    RenamedColumn { from: String, to: String },
    DroppedColumn { column: String },
    AddedColumn { column: String },
}

/// One entry of the schema-change log.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaChange {
    /// Logical time at which the change was applied.
    pub at: u64,
    /// Table the change applied to (its name *before* the change).
    pub table: String,
    pub kind: SchemaChangeKind,
}

/// Named tables plus the schema-change log.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    /// Monotonic logical clock; advanced by every DDL/DML statement so query
    /// timestamps and schema-change timestamps are comparable.
    clock: u64,
    changes: Vec<SchemaChange>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advance and return the logical clock (each statement gets a fresh
    /// timestamp).
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Explicitly advance the clock to at least `t` (used when replaying
    /// workload traces that carry their own timestamps).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All table names, sorted (stable iteration for tests and snapshots).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .values()
            .map(|t| t.schema.name.clone())
            .collect();
        names.sort();
        names
    }

    /// The full schema-change log.
    pub fn changes(&self) -> &[SchemaChange] {
        &self.changes
    }

    /// Changes affecting `table` strictly after logical time `t`.
    pub fn changes_since<'a>(&'a self, table: &str, t: u64) -> Vec<&'a SchemaChange> {
        self.changes
            .iter()
            .filter(|c| c.at > t && c.table.eq_ignore_ascii_case(table))
            .collect()
    }

    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), EngineError> {
        let key = Self::key(&schema.name);
        if self.tables.contains_key(&key) {
            return Err(EngineError::AlreadyExists(schema.name));
        }
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: schema.name.clone(),
            kind: SchemaChangeKind::CreatedTable,
        });
        self.tables.insert(key, Table::new(schema));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<(), EngineError> {
        let key = Self::key(name);
        let t = self
            .tables
            .remove(&key)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: t.schema.name,
            kind: SchemaChangeKind::DroppedTable,
        });
        Ok(())
    }

    pub fn rename_table(&mut self, name: &str, to: &str) -> Result<(), EngineError> {
        if self.has_table(to) {
            return Err(EngineError::AlreadyExists(to.to_string()));
        }
        let key = Self::key(name);
        let mut t = self
            .tables
            .remove(&key)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        let old_name = t.schema.name.clone();
        t.schema.name = to.to_string();
        t.schema.version += 1;
        self.tables.insert(Self::key(to), t);
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: old_name,
            kind: SchemaChangeKind::RenamedTable { to: to.to_string() },
        });
        Ok(())
    }

    pub fn rename_column(&mut self, table: &str, from: &str, to: &str) -> Result<(), EngineError> {
        let t = self.table_mut(table)?;
        t.schema.rename_column(from, to)?;
        let name = t.schema.name.clone();
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: name,
            kind: SchemaChangeKind::RenamedColumn {
                from: from.to_string(),
                to: to.to_string(),
            },
        });
        Ok(())
    }

    pub fn drop_column(&mut self, table: &str, column: &str) -> Result<(), EngineError> {
        let t = self.table_mut(table)?;
        let idx = t.schema.drop_column(column)?;
        t.drop_column_data(idx);
        let name = t.schema.name.clone();
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: name,
            kind: SchemaChangeKind::DroppedColumn {
                column: column.to_string(),
            },
        });
        Ok(())
    }

    pub fn add_column(
        &mut self,
        table: &str,
        column: &str,
        ty: DataType,
    ) -> Result<(), EngineError> {
        let t = self.table_mut(table)?;
        t.schema.add_column(column, ty)?;
        t.add_column_data();
        let name = t.schema.name.clone();
        let at = self.tick();
        self.changes.push(SchemaChange {
            at,
            table: name,
            kind: SchemaChangeKind::AddedColumn {
                column: column.to_string(),
            },
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(TableSchema::build(
            "WaterTemp",
            &[("temp", DataType::Float), ("lake", DataType::Text)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = cat();
        assert!(c.table("watertemp").is_ok());
        assert!(c.table("WATERTEMP").is_ok());
        assert!(c.table("nope").is_err());
    }

    #[test]
    fn create_duplicate_fails() {
        let mut c = cat();
        assert!(matches!(
            c.create_table(TableSchema::build("watertemp", &[("x", DataType::Int)])),
            Err(EngineError::AlreadyExists(_))
        ));
    }

    #[test]
    fn change_log_records_ddl_with_times() {
        let mut c = cat();
        let t0 = c.now();
        c.rename_column("WaterTemp", "temp", "temperature").unwrap();
        c.add_column("WaterTemp", "depth", DataType::Float).unwrap();
        c.drop_column("WaterTemp", "lake").unwrap();
        let changes = c.changes_since("WaterTemp", t0);
        assert_eq!(changes.len(), 3);
        assert!(matches!(
            changes[0].kind,
            SchemaChangeKind::RenamedColumn { .. }
        ));
        // Strictly increasing timestamps.
        assert!(changes[0].at < changes[1].at && changes[1].at < changes[2].at);
        // Queries logged *after* the change see nothing new.
        assert!(c.changes_since("WaterTemp", c.now()).is_empty());
    }

    #[test]
    fn rename_table_keeps_data_and_logs_old_name() {
        let mut c = cat();
        c.table_mut("WaterTemp")
            .unwrap()
            .insert(vec![Value::Float(10.0).coerce(DataType::Float), "x".into()])
            .unwrap();
        let t0 = c.now();
        c.rename_table("WaterTemp", "LakeTemp").unwrap();
        assert!(c.table("WaterTemp").is_err());
        assert_eq!(c.table("LakeTemp").unwrap().len(), 1);
        let changed = c.changes_since("WaterTemp", t0);
        assert_eq!(changed.len(), 1);
    }

    #[test]
    fn drop_column_removes_data() {
        let mut c = cat();
        c.table_mut("WaterTemp")
            .unwrap()
            .insert(vec![Value::Float(1.0), "a".into()])
            .unwrap();
        c.drop_column("WaterTemp", "temp").unwrap();
        let t = c.table("WaterTemp").unwrap();
        assert_eq!(t.schema.arity(), 1);
        assert_eq!(t.rows[0], vec![Value::Text("a".into())]);
    }

    use crate::value::Value;
}
