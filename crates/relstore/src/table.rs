//! Row-store tables.

use crate::error::EngineError;
use crate::schema::TableSchema;
use crate::value::Value;

/// A row is a boxed slice of values matching the table schema's arity.
pub type Row = Vec<Value>;

/// An in-memory row-store table.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking arity and type conformance. Int values
    /// are widened to Float where the column requires it.
    pub fn insert(&mut self, row: Row) -> Result<(), EngineError> {
        if row.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if !v.conforms_to(col.data_type) {
                return Err(EngineError::TypeError(format!(
                    "value {v:?} does not fit column `{}` ({})",
                    col.name, col.data_type
                )));
            }
            coerced.push(v.coerce(col.data_type));
        }
        self.rows.push(coerced);
        Ok(())
    }

    /// Remove rows matching the predicate; returns how many were removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        before - self.rows.len()
    }

    /// Drop the column at `idx` from every row (schema already updated).
    pub fn drop_column_data(&mut self, idx: usize) {
        for row in &mut self.rows {
            row.remove(idx);
        }
    }

    /// Append a NULL cell to every row (schema already updated).
    pub fn add_column_data(&mut self) {
        for row in &mut self.rows {
            row.push(Value::Null);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::ast::DataType;

    fn table() -> Table {
        Table::new(TableSchema::build(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Float),
                ("c", DataType::Text),
            ],
        ))
    }

    #[test]
    fn insert_coerces_int_to_float() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Int(2), Value::from("x")])
            .unwrap();
        assert_eq!(t.rows[0][1], Value::Float(2.0));
    }

    #[test]
    fn insert_rejects_bad_arity_and_types() {
        let mut t = table();
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(EngineError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::from("no"), Value::Int(2), Value::from("x")]),
            Err(EngineError::TypeError(_))
        ));
        assert!(t.is_empty());
    }

    #[test]
    fn nulls_fit_any_column() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_where_counts() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Int(i), Value::from("x")])
                .unwrap();
        }
        let n = t.delete_where(|r| matches!(r[0], Value::Int(i) if i % 2 == 0));
        assert_eq!(n, 5);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn column_data_ops() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Int(2), Value::from("x")])
            .unwrap();
        t.drop_column_data(1);
        assert_eq!(t.rows[0].len(), 2);
        t.add_column_data();
        assert_eq!(t.rows[0][2], Value::Null);
    }
}
