//! Engine error type.

use sqlparse::ParseError;
use std::fmt;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The SQL text failed to parse.
    Parse(ParseError),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist (table context in `.0`).
    UnknownColumn { column: String, context: String },
    /// A column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// A table/column already exists.
    AlreadyExists(String),
    /// Type mismatch at runtime or on insert.
    TypeError(String),
    /// Statement shape not supported by the executor.
    Unsupported(String),
    /// Arity mismatch on INSERT.
    ArityMismatch { expected: usize, got: usize },
    /// Division by zero or similar arithmetic failure.
    Arithmetic(String),
    /// A scalar subquery returned more than one row/column.
    SubqueryShape(String),
    /// I/O error rendered as text (keeps the type `Clone + PartialEq`).
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { column, context } => {
                write!(f, "unknown column `{column}` in {context}")
            }
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            EngineError::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            EngineError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            EngineError::SubqueryShape(m) => write!(f, "subquery shape: {m}"),
            EngineError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownTable("t".into()).to_string(),
            "unknown table `t`"
        );
        assert!(EngineError::UnknownColumn {
            column: "c".into(),
            context: "SELECT".into()
        }
        .to_string()
        .contains("`c`"));
    }
}
