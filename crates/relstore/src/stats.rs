//! Per-column statistics: histograms, distinct counts, reservoir samples.
//!
//! Three CQMS duties hang off these statistics (paper §4.1 and §4.4):
//!
//! * **Output summarisation** — the profiler stores a bounded summary of each
//!   query's result (reservoir sample + histogram) instead of the full
//!   output;
//! * **Drift detection** — the Query Maintenance component re-executes a
//!   stored query's statistics only when the underlying data distribution
//!   changed "significantly"; [`ColumnStats::drift`] quantifies the change as
//!   a normalised L1 histogram distance;
//! * **Selectivity context** — quality scoring ranks queries partly by how
//!   selective their predicates are relative to the table distribution.

use crate::table::{Row, Table};
#[cfg(test)]
use crate::value::Value;
use std::collections::HashMap;

/// Number of equi-width histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 16;
/// Default reservoir sample size.
pub const DEFAULT_SAMPLE: usize = 32;
/// How many most-frequent values to retain.
pub const TOP_K: usize = 8;

/// Statistics over one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    pub count: u64,
    pub nulls: u64,
    /// Exact distinct count (laptop scale; an estimator would slot in here).
    pub distinct: u64,
    /// Numeric min/max when the column is numeric.
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Equi-width histogram over `[min, max]` for numeric columns.
    pub histogram: Vec<u64>,
    /// Most frequent values with their counts (any type).
    pub top_values: Vec<(String, u64)>,
}

impl ColumnStats {
    /// Compute stats for column `col` over `rows`.
    pub fn compute(name: &str, rows: &[Row], col: usize) -> ColumnStats {
        let mut count = 0u64;
        let mut nulls = 0u64;
        let mut freqs: HashMap<String, u64> = HashMap::new();
        let mut numeric: Vec<f64> = Vec::new();
        for row in rows {
            count += 1;
            let v = &row[col];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            *freqs.entry(v.render()).or_insert(0) += 1;
            if let Some(f) = v.as_f64() {
                numeric.push(f);
            }
        }
        let distinct = freqs.len() as u64;
        let (min, max) = numeric
            .iter()
            .fold(None::<(f64, f64)>, |acc, &f| match acc {
                None => Some((f, f)),
                Some((lo, hi)) => Some((lo.min(f), hi.max(f))),
            })
            .map_or((None, None), |(lo, hi)| (Some(lo), Some(hi)));

        let histogram = match (min, max) {
            (Some(lo), Some(hi)) if hi > lo => {
                let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                let w = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                for f in &numeric {
                    let mut b = ((f - lo) / w) as usize;
                    if b >= HISTOGRAM_BUCKETS {
                        b = HISTOGRAM_BUCKETS - 1;
                    }
                    buckets[b] += 1;
                }
                buckets
            }
            (Some(_), Some(_)) => {
                // Degenerate single-value column: everything in one bucket.
                let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                buckets[0] = numeric.len() as u64;
                buckets
            }
            _ => Vec::new(),
        };

        let mut top: Vec<(String, u64)> = freqs.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top.truncate(TOP_K);

        ColumnStats {
            name: name.to_string(),
            count,
            nulls,
            distinct,
            min,
            max,
            histogram,
            top_values: top,
        }
    }

    /// Normalised L1 distance between the shapes of two histograms, in
    /// [0, 2]. Returns 2.0 (maximal) when shapes are incomparable.
    pub fn drift(&self, other: &ColumnStats) -> f64 {
        if self.histogram.is_empty() || other.histogram.is_empty() {
            return if self.histogram.len() == other.histogram.len() {
                0.0
            } else {
                2.0
            };
        }
        // Also treat a range shift as drift: re-bucket other onto self's
        // range is overkill here; compare normalised mass per bucket plus a
        // penalty for range movement.
        let sa: u64 = self.histogram.iter().sum();
        let sb: u64 = other.histogram.iter().sum();
        if sa == 0 || sb == 0 {
            return if sa == sb { 0.0 } else { 2.0 };
        }
        let mut l1 = 0.0;
        for (a, b) in self.histogram.iter().zip(&other.histogram) {
            l1 += (*a as f64 / sa as f64 - *b as f64 / sb as f64).abs();
        }
        let range_penalty = match (self.min, self.max, other.min, other.max) {
            (Some(a0), Some(a1), Some(b0), Some(b1)) => {
                let span = (a1 - a0).abs().max(f64::EPSILON);
                (((b0 - a0).abs() + (b1 - a1).abs()) / span).min(1.0)
            }
            _ => 0.0,
        };
        (l1 + range_penalty).min(2.0)
    }
}

/// Statistics over a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub table: String,
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn compute(table: &Table) -> TableStats {
        let columns = table
            .schema
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnStats::compute(&c.name, &table.rows, i))
            .collect();
        TableStats {
            table: table.schema.name.clone(),
            row_count: table.len() as u64,
            columns,
        }
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Maximum drift across shared columns, plus row-count change ratio.
    pub fn drift(&self, other: &TableStats) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.columns {
            if let Some(o) = other.column(&c.name) {
                worst = worst.max(c.drift(o));
            }
        }
        let rc = self.row_count.max(1) as f64;
        let growth = ((other.row_count as f64 - self.row_count as f64).abs() / rc).min(1.0);
        (worst + growth).min(2.0)
    }
}

/// Fixed-size reservoir sample (Vitter's algorithm R) with a deterministic
/// LCG so summaries are reproducible.
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    items: Vec<Row>,
    rng_state: u64,
}

impl Reservoir {
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity.min(64)),
            rng_state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step: good enough for sampling, dependency-free.
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn offer(&mut self, row: Row) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(row);
            return;
        }
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.items[j as usize] = row;
        }
    }

    pub fn seen(&self) -> u64 {
        self.seen
    }

    pub fn items(&self) -> &[Row] {
        &self.items
    }

    pub fn into_items(self) -> Vec<Row> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use sqlparse::ast::DataType;

    fn table_with(vals: &[Option<f64>]) -> Table {
        let mut t = Table::new(TableSchema::build("t", &[("x", DataType::Float)]));
        for v in vals {
            t.insert(vec![match v {
                Some(f) => Value::Float(*f),
                None => Value::Null,
            }])
            .unwrap();
        }
        t
    }

    #[test]
    fn basic_counts() {
        let t = table_with(&[Some(1.0), Some(2.0), Some(2.0), None]);
        let s = TableStats::compute(&t);
        let c = s.column("x").unwrap();
        assert_eq!(c.count, 4);
        assert_eq!(c.nulls, 1);
        assert_eq!(c.distinct, 2);
        assert_eq!(c.min, Some(1.0));
        assert_eq!(c.max, Some(2.0));
        assert_eq!(c.histogram.iter().sum::<u64>(), 3);
    }

    #[test]
    fn identical_distributions_have_zero_drift() {
        let a = TableStats::compute(&table_with(&[Some(1.0), Some(5.0), Some(9.0)]));
        let b = TableStats::compute(&table_with(&[Some(1.0), Some(5.0), Some(9.0)]));
        assert!(a.drift(&b) < 1e-9);
    }

    #[test]
    fn shifted_distribution_has_high_drift() {
        let vals_a: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64 / 10.0)).collect();
        let vals_b: Vec<Option<f64>> = (0..100).map(|i| Some(100.0 + i as f64 / 10.0)).collect();
        let a = TableStats::compute(&table_with(&vals_a));
        let b = TableStats::compute(&table_with(&vals_b));
        assert!(a.drift(&b) > 0.5, "drift = {}", a.drift(&b));
    }

    #[test]
    fn growth_alone_registers() {
        let a = TableStats::compute(&table_with(&[Some(1.0), Some(2.0)]));
        let many: Vec<Option<f64>> = (0..200).map(|i| Some(1.0 + (i % 2) as f64)).collect();
        let b = TableStats::compute(&table_with(&many));
        assert!(a.drift(&b) >= 1.0);
    }

    #[test]
    fn top_values_sorted_by_frequency() {
        let t = table_with(&[
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(2.0),
            Some(2.0),
            Some(3.0),
        ]);
        let s = TableStats::compute(&t);
        let top = &s.column("x").unwrap().top_values;
        assert_eq!(top[0], ("1".to_string(), 3));
        assert_eq!(top[1], ("2".to_string(), 2));
    }

    #[test]
    fn reservoir_respects_capacity_and_sees_all() {
        let mut r = Reservoir::new(10, 42);
        for i in 0..1000 {
            r.offer(vec![Value::Int(i)]);
        }
        assert_eq!(r.items().len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn reservoir_under_capacity_keeps_everything() {
        let mut r = Reservoir::new(10, 7);
        for i in 0..5 {
            r.offer(vec![Value::Int(i)]);
        }
        assert_eq!(r.items().len(), 5);
    }

    #[test]
    fn reservoir_deterministic_for_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(5, seed);
            for i in 0..100 {
                r.offer(vec![Value::Int(i)]);
            }
            r.into_items()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn degenerate_single_value_histogram() {
        let t = table_with(&[Some(4.0), Some(4.0)]);
        let s = TableStats::compute(&t);
        let c = s.column("x").unwrap();
        assert_eq!(c.histogram[0], 2);
    }

    #[test]
    fn text_columns_have_no_histogram() {
        let mut t = Table::new(TableSchema::build("t", &[("s", DataType::Text)]));
        t.insert(vec!["a".into()]).unwrap();
        let s = TableStats::compute(&t);
        assert!(s.column("s").unwrap().histogram.is_empty());
    }
}
