//! Minimal CSV load/dump for example datasets.
//!
//! Implements RFC-4180-style quoting (`"` fields with `""` escapes). Values
//! are parsed against the target table's schema.

use crate::engine::Engine;
use crate::error::EngineError;
use crate::table::Row;
use crate::value::Value;
use sqlparse::ast::DataType;
use std::io::{BufRead, BufReader, Read, Write};

/// Parse one CSV record (no trailing newline) into fields.
pub fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// Escape one field for CSV output.
pub fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn parse_value(s: &str, ty: DataType) -> Result<Value, EngineError> {
    if s.is_empty() || s == "NULL" {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(
            s.parse::<i64>()
                .map_err(|_| EngineError::TypeError(format!("bad int `{s}`")))?,
        ),
        DataType::Float => Value::Float(
            s.parse::<f64>()
                .map_err(|_| EngineError::TypeError(format!("bad float `{s}`")))?,
        ),
        DataType::Bool => match s.to_ascii_uppercase().as_str() {
            "TRUE" | "T" | "1" => Value::Bool(true),
            "FALSE" | "F" | "0" => Value::Bool(false),
            _ => return Err(EngineError::TypeError(format!("bad bool `{s}`"))),
        },
        DataType::Text => Value::Text(s.to_string()),
    })
}

/// Load CSV data (with a header row that is validated against the schema)
/// into an existing table. Returns the number of rows loaded.
pub fn load_csv(engine: &mut Engine, table: &str, reader: impl Read) -> Result<u64, EngineError> {
    let schema = engine.catalog.table(table)?.schema.clone();
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(0),
    };
    let cols = parse_record(&header);
    if cols.len() != schema.arity() {
        return Err(EngineError::ArityMismatch {
            expected: schema.arity(),
            got: cols.len(),
        });
    }
    for (c, def) in cols.iter().zip(&schema.columns) {
        if !c.eq_ignore_ascii_case(&def.name) {
            return Err(EngineError::TypeError(format!(
                "CSV header `{c}` does not match column `{}`",
                def.name
            )));
        }
    }
    let mut rows: Vec<Row> = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line);
        if fields.len() != schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: schema.arity(),
                got: fields.len(),
            });
        }
        let row: Row = fields
            .iter()
            .zip(&schema.columns)
            .map(|(f, c)| parse_value(f, c.data_type))
            .collect::<Result<_, _>>()?;
        rows.push(row);
    }
    let n = rows.len() as u64;
    let t = engine.catalog.table_mut(table)?;
    for row in rows {
        t.insert(row)?;
    }
    Ok(n)
}

/// Dump a table as CSV (header + rows).
pub fn dump_csv(engine: &Engine, table: &str, mut out: impl Write) -> Result<u64, EngineError> {
    let t = engine.catalog.table(table)?;
    let header: Vec<String> = t
        .schema
        .columns
        .iter()
        .map(|c| escape_field(&c.name))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for row in &t.rows {
        let fields: Vec<String> = row.iter().map(|v| escape_field(&v.render())).collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(t.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_parsing_with_quotes() {
        assert_eq!(parse_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(
            parse_record(r#""Lake, Washington",18,"say ""hi""""#),
            vec!["Lake, Washington", "18", "say \"hi\""]
        );
        assert_eq!(parse_record(""), vec![""]);
    }

    #[test]
    fn roundtrip_through_engine() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (name TEXT, x INT, y FLOAT, ok BOOLEAN)")
            .unwrap();
        let csv = "name,x,y,ok\nalpha,1,1.5,TRUE\n\"with,comma\",2,NULL,FALSE\n";
        let n = load_csv(&mut e, "t", csv.as_bytes()).unwrap();
        assert_eq!(n, 2);
        let r = e.execute("SELECT * FROM t WHERE x = 2").unwrap();
        assert_eq!(r.rows[0][0].render(), "with,comma");
        assert!(r.rows[0][2].is_null());

        let mut out = Vec::new();
        dump_csv(&e, "t", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("name,x,y,ok\n"));
        assert!(text.contains("\"with,comma\""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        assert!(load_csv(&mut e, "t", "a,wrong\n1,2\n".as_bytes()).is_err());
        assert!(load_csv(&mut e, "t", "a\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn type_errors_rejected() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(load_csv(&mut e, "t", "a\nnot_a_number\n".as_bytes()).is_err());
    }
}
