//! # relstore — embedded relational engine substrate
//!
//! The CQMS of *Khoussainova et al., CIDR 2009* (Figure 4) sits on top of a
//! standard DBMS that executes both ordinary data queries and the CQMS's own
//! meta-queries over its feature relations. This crate is that substrate: a
//! from-scratch, laptop-scale relational engine with
//!
//! * typed row storage ([`table`], [`value`], [`schema`]),
//! * a catalog with schema versioning and a schema-change log — the signal
//!   the paper's Query Maintenance component consumes (§4.4) ([`catalog`]),
//! * an executor for the `sqlparse` dialect: filters, hash/nested-loop joins,
//!   grouping and aggregation, ordering, subqueries ([`exec`], [`expr`]),
//! * hash indexes for point meta-queries ([`index`]),
//! * per-column statistics: histograms, distinct counts, reservoir samples —
//!   used for output summarisation (§4.1) and drift detection (§4.4)
//!   ([`stats`]),
//! * runtime metrics on every query (latency, cardinality, plan shape), which
//!   the Query Profiler logs as the paper's "runtime features".
//!
//! The public entry point is [`engine::Engine`].

pub mod catalog;
pub mod csv;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::{Catalog, SchemaChange, SchemaChangeKind};
pub use engine::{Engine, ExecMetrics, QueryResult};
pub use error::EngineError;
pub use schema::{ColumnDef, TableSchema};
pub use stats::{ColumnStats, TableStats};
pub use table::{Row, Table};
pub use value::Value;

/// Is `name(…)` (with `*` argument when `star`) one of the engine's
/// aggregate functions? Exposed for feature extraction in the CQMS layer.
pub fn expr_is_aggregate(name: &str, star: bool) -> bool {
    expr::AggKind::from_name(name, star).is_some()
}
