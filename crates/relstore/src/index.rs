//! Hash indexes for point lookups, published as epoch snapshots.
//!
//! The CQMS's feature relations (paper Fig. 1) are hit with highly selective
//! equality meta-queries (`attrName = 'salinity'`), so the engine supports
//! per-column hash indexes. Indexes are maintained lazily: DML marks them
//! dirty and the next lookup rebuilds.
//!
//! Concurrency follows the epoch-publication discipline used by the CQMS
//! index registry rather than a lock around mutable state: the engine holds
//! the current index set as an immutable `Arc<Indexes>` snapshot, readers
//! clone that `Arc` once per statement and use it without any further
//! locking, and whoever finds an index stale rebuilds **off-lock** and
//! publishes a copy-on-write successor snapshot with one brief write-lock
//! swap. `Indexes` is therefore a shallow map of `Arc<HashIndex>` — cloning
//! a snapshot to evolve it copies pointers, not postings.

use crate::table::Table;
use crate::value::{Key, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A hash index over one column of one table.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    /// Key → row positions.
    map: HashMap<Key, Vec<usize>>,
    dirty: bool,
    /// Row count of the table at last build (cheap staleness check).
    built_rows: usize,
}

impl HashIndex {
    pub fn new() -> Self {
        HashIndex {
            map: HashMap::new(),
            dirty: true,
            built_rows: 0,
        }
    }

    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    pub fn is_fresh(&self, table: &Table) -> bool {
        !self.dirty && self.built_rows == table.len()
    }

    /// Rebuild from the table's current rows.
    pub fn rebuild(&mut self, table: &Table, col: usize) {
        self.map.clear();
        for (i, row) in table.rows.iter().enumerate() {
            // NULLs are not indexed: equality with NULL never matches.
            if row[col].is_null() {
                continue;
            }
            self.map.entry(row[col].group_key()).or_default().push(i);
        }
        self.dirty = false;
        self.built_rows = table.len();
    }

    /// Row positions whose column equals `v` (SQL equality).
    pub fn lookup(&self, v: &Value) -> &[usize] {
        if v.is_null() {
            return &[];
        }
        self.map
            .get(&v.group_key())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// The set of indexes owned by an [`crate::engine::Engine`], keyed by
/// lower-cased `(table, column)`. Each index sits behind its own `Arc` so
/// a snapshot clone shares every unchanged index with its predecessor.
#[derive(Debug, Default, Clone)]
pub struct Indexes {
    map: HashMap<(String, String), Arc<HashIndex>>,
}

impl Indexes {
    pub fn new() -> Self {
        Indexes::default()
    }

    fn key(table: &str, column: &str) -> (String, String) {
        (table.to_ascii_lowercase(), column.to_ascii_lowercase())
    }

    /// Declare an index on `table.column`. Building is lazy.
    pub fn create(&mut self, table: &str, column: &str) {
        self.map
            .entry(Self::key(table, column))
            .or_insert_with(|| Arc::new(HashIndex::new()));
    }

    pub fn drop(&mut self, table: &str, column: &str) -> bool {
        self.map.remove(&Self::key(table, column)).is_some()
    }

    /// Does an index exist on `table.column` (fresh or not)?
    pub fn has(&self, table: &str, column: &str) -> bool {
        self.map.contains_key(&Self::key(table, column))
    }

    /// The declared index on `table.column`, fresh or stale.
    pub fn get(&self, table: &str, column: &str) -> Option<&Arc<HashIndex>> {
        self.map.get(&Self::key(table, column))
    }

    /// Replace the index on an already-declared column — the publish half
    /// of an off-lock rebuild. A column whose index was dropped mid-build
    /// stays dropped.
    pub fn install(&mut self, table: &str, column: &str, index: Arc<HashIndex>) {
        if let Some(slot) = self.map.get_mut(&Self::key(table, column)) {
            *slot = index;
        }
    }

    /// Mark all indexes of `table` dirty (after DML/DDL). Copy-on-write:
    /// an index still referenced by a published snapshot is cloned before
    /// the mark, so readers of that snapshot keep their frozen view.
    pub fn invalidate_table(&mut self, table: &str) {
        let t = table.to_ascii_lowercase();
        for ((it, _), idx) in self.map.iter_mut() {
            if *it == t {
                Arc::make_mut(idx).mark_dirty();
            }
        }
    }

    /// Fetch the index for a lookup, rebuilding **in place** if stale.
    /// This is the exclusive-access path (`&mut Engine` writes); the
    /// shared read path goes through [`crate::engine::EpochIndexes`]
    /// instead. Returns `None` when no index exists on that column.
    pub fn prepared(
        &mut self,
        table_name: &str,
        column: &str,
        table: &Table,
        col_idx: usize,
    ) -> Option<Arc<HashIndex>> {
        let idx = self.map.get_mut(&Self::key(table_name, column))?;
        if !idx.is_fresh(table) {
            Arc::make_mut(idx).rebuild(table, col_idx);
        }
        Some(idx.clone())
    }
}

/// How the executor obtains a usable index for a `col = literal` pushdown.
/// Implemented by [`Indexes`] itself (exclusive write path, rebuilds in
/// place) and by `crate::engine::EpochIndexes` (shared read path, rebuilds
/// off-lock and publishes a successor snapshot).
pub trait IndexAccess {
    /// A fresh index over `table_name.column`, or `None` if undeclared.
    fn prepared(
        &mut self,
        table_name: &str,
        column: &str,
        table: &Table,
        col_idx: usize,
    ) -> Option<Arc<HashIndex>>;
}

impl IndexAccess for Indexes {
    fn prepared(
        &mut self,
        table_name: &str,
        column: &str,
        table: &Table,
        col_idx: usize,
    ) -> Option<Arc<HashIndex>> {
        Indexes::prepared(self, table_name, column, table, col_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use sqlparse::ast::DataType;

    fn table() -> Table {
        let mut t = Table::new(TableSchema::build(
            "t",
            &[("id", DataType::Int), ("name", DataType::Text)],
        ));
        for i in 0..100 {
            t.insert(vec![Value::Int(i % 10), Value::Text(format!("n{i}"))])
                .unwrap();
        }
        t
    }

    #[test]
    fn lookup_finds_all_matches() {
        let t = table();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert_eq!(idx.lookup(&Value::Int(3)).len(), 10);
        assert_eq!(idx.lookup(&Value::Int(42)).len(), 0);
        assert_eq!(idx.distinct_keys(), 10);
    }

    #[test]
    fn null_lookup_matches_nothing() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::Text("x".into())])
            .unwrap();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert!(idx.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn int_float_key_unification() {
        let t = table();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert_eq!(idx.lookup(&Value::Float(3.0)).len(), 10);
    }

    #[test]
    fn staleness_and_rebuild() {
        let mut t = table();
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        assert!(idxs.has("T", "ID"));
        {
            let idx = idxs.prepared("t", "id", &t, 0).unwrap();
            assert_eq!(idx.lookup(&Value::Int(1)).len(), 10);
        }
        t.insert(vec![Value::Int(1), Value::Text("new".into())])
            .unwrap();
        idxs.invalidate_table("t");
        let idx = idxs.prepared("t", "id", &t, 0).unwrap();
        assert_eq!(idx.lookup(&Value::Int(1)).len(), 11);
    }

    #[test]
    fn drop_index() {
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        assert!(idxs.drop("t", "id"));
        assert!(!idxs.drop("t", "id"));
        assert!(!idxs.has("t", "id"));
    }

    #[test]
    fn snapshot_clone_is_isolated_from_invalidation() {
        let t = table();
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        idxs.prepared("t", "id", &t, 0).unwrap();
        // A published snapshot keeps its frozen (fresh) view even after
        // the successor marks the index dirty.
        let snapshot = idxs.clone();
        idxs.invalidate_table("t");
        assert!(snapshot.get("t", "id").unwrap().is_fresh(&t));
        assert!(!idxs.get("t", "id").unwrap().is_fresh(&t));
    }

    #[test]
    fn install_respects_drops() {
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        idxs.install("t", "id", Arc::new(HashIndex::new()));
        assert!(idxs.has("t", "id"));
        idxs.drop("t", "id");
        idxs.install("t", "id", Arc::new(HashIndex::new()));
        assert!(!idxs.has("t", "id"), "install must not resurrect a drop");
    }
}
