//! Hash indexes for point lookups.
//!
//! The CQMS's feature relations (paper Fig. 1) are hit with highly selective
//! equality meta-queries (`attrName = 'salinity'`), so the engine supports
//! per-column hash indexes. Indexes are maintained lazily: DML marks them
//! dirty and the next lookup rebuilds.

use crate::table::Table;
use crate::value::{Key, Value};
use std::collections::HashMap;

/// A hash index over one column of one table.
#[derive(Debug, Default)]
pub struct HashIndex {
    /// Key → row positions.
    map: HashMap<Key, Vec<usize>>,
    dirty: bool,
    /// Row count of the table at last build (cheap staleness check).
    built_rows: usize,
}

impl HashIndex {
    pub fn new() -> Self {
        HashIndex {
            map: HashMap::new(),
            dirty: true,
            built_rows: 0,
        }
    }

    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    pub fn is_fresh(&self, table: &Table) -> bool {
        !self.dirty && self.built_rows == table.len()
    }

    /// Rebuild from the table's current rows.
    pub fn rebuild(&mut self, table: &Table, col: usize) {
        self.map.clear();
        for (i, row) in table.rows.iter().enumerate() {
            // NULLs are not indexed: equality with NULL never matches.
            if row[col].is_null() {
                continue;
            }
            self.map.entry(row[col].group_key()).or_default().push(i);
        }
        self.dirty = false;
        self.built_rows = table.len();
    }

    /// Row positions whose column equals `v` (SQL equality).
    pub fn lookup(&self, v: &Value) -> &[usize] {
        if v.is_null() {
            return &[];
        }
        self.map
            .get(&v.group_key())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// The set of indexes owned by an [`crate::engine::Engine`], keyed by
/// lower-cased `(table, column)`.
#[derive(Debug, Default)]
pub struct Indexes {
    map: HashMap<(String, String), HashIndex>,
}

impl Indexes {
    pub fn new() -> Self {
        Indexes::default()
    }

    fn key(table: &str, column: &str) -> (String, String) {
        (table.to_ascii_lowercase(), column.to_ascii_lowercase())
    }

    /// Declare an index on `table.column`. Building is lazy.
    pub fn create(&mut self, table: &str, column: &str) {
        self.map.entry(Self::key(table, column)).or_default();
    }

    pub fn drop(&mut self, table: &str, column: &str) -> bool {
        self.map.remove(&Self::key(table, column)).is_some()
    }

    /// Does an index exist on `table.column` (fresh or not)?
    pub fn has(&self, table: &str, column: &str) -> bool {
        self.map.contains_key(&Self::key(table, column))
    }

    /// Mark all indexes of `table` dirty (after DML/DDL).
    pub fn invalidate_table(&mut self, table: &str) {
        let t = table.to_ascii_lowercase();
        for ((it, _), idx) in self.map.iter_mut() {
            if *it == t {
                idx.mark_dirty();
            }
        }
    }

    /// Fetch the index for a lookup, rebuilding if stale. Returns `None`
    /// when no index exists on that column.
    pub fn prepared<'a>(
        &'a mut self,
        table_name: &str,
        column: &str,
        table: &Table,
        col_idx: usize,
    ) -> Option<&'a HashIndex> {
        let idx = self.map.get_mut(&Self::key(table_name, column))?;
        if !idx.is_fresh(table) {
            idx.rebuild(table, col_idx);
        }
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use sqlparse::ast::DataType;

    fn table() -> Table {
        let mut t = Table::new(TableSchema::build(
            "t",
            &[("id", DataType::Int), ("name", DataType::Text)],
        ));
        for i in 0..100 {
            t.insert(vec![Value::Int(i % 10), Value::Text(format!("n{i}"))])
                .unwrap();
        }
        t
    }

    #[test]
    fn lookup_finds_all_matches() {
        let t = table();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert_eq!(idx.lookup(&Value::Int(3)).len(), 10);
        assert_eq!(idx.lookup(&Value::Int(42)).len(), 0);
        assert_eq!(idx.distinct_keys(), 10);
    }

    #[test]
    fn null_lookup_matches_nothing() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::Text("x".into())])
            .unwrap();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert!(idx.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn int_float_key_unification() {
        let t = table();
        let mut idx = HashIndex::new();
        idx.rebuild(&t, 0);
        assert_eq!(idx.lookup(&Value::Float(3.0)).len(), 10);
    }

    #[test]
    fn staleness_and_rebuild() {
        let mut t = table();
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        assert!(idxs.has("T", "ID"));
        {
            let idx = idxs.prepared("t", "id", &t, 0).unwrap();
            assert_eq!(idx.lookup(&Value::Int(1)).len(), 10);
        }
        t.insert(vec![Value::Int(1), Value::Text("new".into())])
            .unwrap();
        idxs.invalidate_table("t");
        let idx = idxs.prepared("t", "id", &t, 0).unwrap();
        assert_eq!(idx.lookup(&Value::Int(1)).len(), 11);
    }

    #[test]
    fn drop_index() {
        let mut idxs = Indexes::new();
        idxs.create("t", "id");
        assert!(idxs.drop("t", "id"));
        assert!(!idxs.drop("t", "id"));
        assert!(!idxs.has("t", "id"));
    }
}
