//! # cqms-bench — the experiment harness
//!
//! Builders shared by the Criterion benches (`benches/e*.rs`) and the
//! deterministic `experiments` binary that regenerates every experiment
//! table recorded in `EXPERIMENTS.md` (E1–E13, mapped to the paper's
//! figures and section-level claims in `DESIGN.md`).

use cqms_core::model::UserId;
use cqms_core::{Cqms, CqmsConfig};
use workload::{Domain, Trace, TraceConfig};

/// A CQMS with a replayed query log and its generating trace.
pub struct LoggedCqms {
    pub cqms: Cqms,
    pub trace: Trace,
    pub users: Vec<UserId>,
}

/// Build a CQMS over `domain` and replay a generated log of roughly
/// `target_queries` queries (sessions ≈ queries / 5).
pub fn logged_cqms(domain: Domain, target_queries: usize, seed: u64) -> LoggedCqms {
    logged_cqms_with(domain, target_queries, seed, CqmsConfig::default())
}

/// Same as [`logged_cqms`] with a custom configuration.
pub fn logged_cqms_with(
    domain: Domain,
    target_queries: usize,
    seed: u64,
    config: CqmsConfig,
) -> LoggedCqms {
    let sessions = (target_queries / 5).max(2) as u32;
    let trace = Trace::generate(
        TraceConfig::new(domain)
            .with_sessions(sessions)
            .with_users(6)
            .with_scale(300)
            .with_seed(seed),
    );
    let engine = trace.build_engine();
    let mut cqms = Cqms::new(engine, config);
    let users: Vec<UserId> = (0..6)
        .map(|i| cqms.register_user(&format!("user-{i}")))
        .collect();
    for q in &trace.queries {
        let user = users[q.user as usize % users.len()];
        let _ = cqms.run_query_at(user, &q.sql, q.ts);
    }
    // Steady state: a background miner epoch has sealed the ingested log
    // into a published index generation (benches measure the serving
    // path a live deployment would see; the rebuild-race axes measure
    // the racing case explicitly).
    cqms.storage.schedule_index_rebuild();
    cqms.storage.run_index_maintenance();
    LoggedCqms { cqms, trace, users }
}

/// Format a duration as microseconds with 1 decimal.
pub fn us(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Time a closure over `iters` runs, returning mean duration.
pub fn time_mean<R>(iters: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_logged_cqms() {
        let lc = logged_cqms(Domain::Lakes, 40, 1);
        assert!(lc.cqms.storage.live_count() >= 16);
        assert_eq!(lc.users.len(), 6);
        assert!(!lc.trace.rules.is_empty());
    }

    #[test]
    fn time_mean_measures() {
        let d = time_mean(10, || 1 + 1);
        assert!(d.as_nanos() < 1_000_000);
    }
}
