//! Deterministic experiment driver: regenerates every experiment table
//! (E1–E13) recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p cqms-bench --bin experiments [e1 e2 ...]`
//! (no arguments = run everything).

use cqms_bench::{logged_cqms, logged_cqms_with, time_mean, us};
use cqms_core::config::ProfilingDepth;
use cqms_core::metaquery::{TreePattern, FIGURE1_META_QUERY};
use cqms_core::miner::{adjusted_rand_index, purity, sessions};
use cqms_core::model::{QueryId, UserId};
use cqms_core::similarity::DistanceKind;
use cqms_core::{Cqms, CqmsConfig};
use std::collections::HashMap;
use workload::{Domain, Trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let run = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    println!("# CQMS experiment suite (deterministic, seed-fixed)\n");
    if run("e1") {
        e1_figure1_metaquery();
    }
    if run("e2") {
        e2_sessions();
    }
    if run("e3") {
        e3_completion();
    }
    if run("e4") {
        e4_profiler_overhead();
    }
    if run("e5") {
        e5_query_by_data();
    }
    if run("e6") {
        e6_search_modes();
    }
    if run("e7") {
        e7_knn();
    }
    if run("e8") {
        e8_clustering();
    }
    if run("e9") {
        e9_assoc_rules();
    }
    if run("e10") {
        e10_maintenance();
    }
    if run("e11") {
        e11_summarisation();
    }
    if run("e12") {
        e12_access_control();
    }
    if run("e13") {
        e13_refresh_policy();
    }
}

// ---------------------------------------------------------------------
// E1 — Figure 1: query-by-feature meta-query (correctness + latency + A1)
// ---------------------------------------------------------------------
fn e1_figure1_metaquery() {
    println!("## E1 — Figure 1 meta-query (query-by-feature)\n");
    println!(
        "| log size | matches | feature-SQL latency (us) | raw-text scan latency (us) | speedup |"
    );
    println!("|---|---|---|---|---|");
    for &size in &[500usize, 2000, 8000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE1);
        let user = lc.users[0];
        let result = lc
            .cqms
            .search_feature_sql(user, FIGURE1_META_QUERY)
            .unwrap();
        let matches = result.rows.len();

        let t_feature = time_mean(5, || {
            lc.cqms
                .search_feature_sql(user, FIGURE1_META_QUERY)
                .unwrap()
        });

        // Ablation A1: the "raw text" data model — parse + extract features
        // per stored query at search time.
        let t_raw = time_mean(3, || {
            let mut hits = 0usize;
            for r in lc.cqms.storage.iter_live() {
                if let Ok(stmt) = sqlparse::parse(&r.raw_sql) {
                    let f = cqms_core::features::extract(&stmt, None);
                    let has_sal = f
                        .attributes
                        .iter()
                        .any(|(t, a)| t == "watersalinity" && a == "salinity");
                    let has_temp = f
                        .attributes
                        .iter()
                        .any(|(t, a)| t == "watertemp" && a == "temp");
                    if has_sal && has_temp {
                        hits += 1;
                    }
                }
            }
            hits
        });
        println!(
            "| {size} | {matches} | {} | {} | {:.1}x |",
            us(t_feature),
            us(t_raw),
            t_raw.as_secs_f64() / t_feature.as_secs_f64().max(1e-12)
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E2 — Figure 2: session detection quality + rendered window
// ---------------------------------------------------------------------
fn e2_sessions() {
    println!("## E2 — Figure 2 session detection\n");
    println!("| idle gap (s) | boundary P | boundary R | boundary F1 | pairwise F1 |");
    println!("|---|---|---|---|---|");
    for &gap in &[120u64, 600, 1800] {
        let cfg = CqmsConfig {
            session_idle_gap_secs: gap,
            ..CqmsConfig::default()
        };
        let lc = logged_cqms_with(Domain::Lakes, 600, 0xE2, cfg.clone());
        let refined = sessions::segment_log(&lc.cqms.storage, &cfg);
        let mut order: HashMap<UserId, Vec<QueryId>> = HashMap::new();
        let mut truth: HashMap<QueryId, u64> = HashMap::new();
        for (i, q) in lc.trace.queries.iter().enumerate() {
            let id = QueryId(i as u64);
            let user = lc.users[q.user as usize % lc.users.len()];
            order.entry(user).or_default().push(id);
            truth.insert(id, q.session as u64);
        }
        let order: Vec<(UserId, Vec<QueryId>)> = order.into_iter().collect();
        let q = sessions::segmentation_quality(&order, &truth, &refined);
        println!(
            "| {gap} | {:.3} | {:.3} | {:.3} | {:.3} |",
            q.boundary_precision, q.boundary_recall, q.boundary_f1, q.pairwise_f1
        );
    }

    // Render the verbatim Figure 2 session.
    let mut engine = relstore::Engine::new();
    Domain::Lakes.setup(&mut engine, 100, 0xF2);
    let mut cqms = Cqms::new(engine, CqmsConfig::default());
    let u = cqms.register_user("nodira");
    for (i, sql) in workload::querygen::figure2_session().iter().enumerate() {
        cqms.run_query_at(u, sql, 9000 + 60 * i as u64).unwrap();
    }
    let session = cqms.storage.get(QueryId(0)).unwrap().session;
    println!("\nRendered Figure 2 window:\n");
    println!("```text");
    print!("{}", cqms.render_session(session).unwrap());
    println!("```\n");
}

// ---------------------------------------------------------------------
// E3 — Figure 3: completion quality (A2 ablation) + latency
// ---------------------------------------------------------------------
fn e3_completion() {
    println!("## E3 — Figure 3 completion quality (hold-one-out)\n");
    println!("| domain | cases | context hit@1 | popularity hit@1 | random hit@1 | context MRR | suggest latency (us) |");
    println!("|---|---|---|---|---|---|---|");
    for domain in Domain::all() {
        let trace = Trace::generate(
            TraceConfig::new(domain)
                .with_sessions(200)
                .with_users(6)
                .with_scale(200)
                .with_seed(0xE3),
        );
        // Train/test split by session: last 25% of sessions held out.
        let max_session = trace.queries.iter().map(|q| q.session).max().unwrap_or(0);
        let cut = max_session - max_session / 4;
        let engine = trace.build_engine();
        let mut cqms = Cqms::new(engine, CqmsConfig::default());
        let users: Vec<UserId> = (0..6)
            .map(|i| cqms.register_user(&format!("u{i}")))
            .collect();
        for q in trace.queries.iter().filter(|q| q.session < cut) {
            let user = users[q.user as usize % users.len()];
            let _ = cqms.run_query_at(user, &q.sql, q.ts);
        }
        // Global popularity baseline.
        let mut pop: HashMap<String, u32> = HashMap::new();
        for r in cqms.storage.iter_live() {
            for t in &r.features.tables {
                *pop.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let n_tables = domain
            .topics()
            .iter()
            .flat_map(|t| t.tables.iter())
            .collect::<std::collections::HashSet<_>>()
            .len();

        let mut cases = 0usize;
        let mut ctx_hit1 = 0usize;
        let mut pop_hit1 = 0usize;
        let mut mrr = 0.0f64;
        for q in trace.queries.iter().filter(|q| q.session >= cut) {
            let Ok(sqlparse::Statement::Select(sel)) = sqlparse::parse(&q.sql) else {
                continue;
            };
            if sel.from.len() < 2 {
                continue;
            }
            let target = sel.from.last().unwrap().name.to_ascii_lowercase();
            let context: Vec<String> = sel.from[..sel.from.len() - 1]
                .iter()
                .map(|t| t.name.to_ascii_lowercase())
                .collect();
            cases += 1;
            let partial = format!("SELECT * FROM {}, ", context.join(", "));
            let sugg = cqms.complete(users[0], &partial, 5);
            if let Some(rank) = sugg
                .iter()
                .position(|s| s.text.eq_ignore_ascii_case(&target))
            {
                mrr += 1.0 / (rank + 1) as f64;
                if rank == 0 {
                    ctx_hit1 += 1;
                }
            }
            let best_pop = pop
                .iter()
                .filter(|(t, _)| !context.contains(*t))
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(t, _)| t.clone());
            if best_pop.map(|t| t == target).unwrap_or(false) {
                pop_hit1 += 1;
            }
        }
        let t_suggest = {
            let c = cqms;
            time_mean(20, move || c.complete(users[0], "SELECT * FROM ", 5).len())
        };
        let n = cases.max(1) as f64;
        println!(
            "| {} | {cases} | {:.3} | {:.3} | {:.3} | {:.3} | {} |",
            domain.name(),
            ctx_hit1 as f64 / n,
            pop_hit1 as f64 / n,
            1.0 / n_tables as f64,
            mrr / n,
            us(t_suggest),
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E4 — Figure 4 / §2.1: profiler overhead (A5 ablation)
// ---------------------------------------------------------------------
fn e4_profiler_overhead() {
    println!("## E4 — profiler overhead (depths: off / text / features / full)\n");
    println!("| data rows | bare engine (us/q) | +text log | +features | +full summary | full overhead |");
    println!("|---|---|---|---|---|---|");
    for &scale in &[1_000usize, 10_000] {
        let trace = Trace::generate(
            TraceConfig::new(Domain::Lakes)
                .with_sessions(20)
                .with_scale(scale)
                .with_seed(0xE4),
        );
        let sqls: Vec<String> = trace.queries.iter().map(|q| q.sql.clone()).collect();

        // Bare engine.
        let mut engine = trace.build_engine();
        let t_bare = time_mean(3, || {
            for sql in &sqls {
                let _ = engine.execute(sql);
            }
        }) / sqls.len() as u32;

        let mut depth_times = Vec::new();
        for depth in [
            ProfilingDepth::Text,
            ProfilingDepth::Features,
            ProfilingDepth::Full,
        ] {
            let cfg = CqmsConfig {
                profiling_depth: depth,
                ..CqmsConfig::default()
            };
            let engine = trace.build_engine();
            let mut cqms = Cqms::new(engine, cfg);
            let u = cqms.register_user("u");
            let start = std::time::Instant::now();
            for (i, sql) in sqls.iter().enumerate() {
                let _ = cqms.run_query_at(u, sql, (i as u64) * 60);
            }
            depth_times.push(start.elapsed() / sqls.len() as u32);
        }
        let overhead =
            (depth_times[2].as_secs_f64() / t_bare.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        println!(
            "| {scale} | {} | {} | {} | {} | {:.0}% |",
            us(t_bare),
            us(depth_times[0]),
            us(depth_times[1]),
            us(depth_times[2]),
            overhead
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E5 — §2.2 query-by-data
// ---------------------------------------------------------------------
fn e5_query_by_data() {
    println!("## E5 — query-by-data (Lake Washington \\ Lake Union)\n");
    // Correctness on a controlled log: all matching queries must carry the
    // separating predicate.
    let mut engine = relstore::Engine::new();
    Domain::Lakes.setup(&mut engine, 400, 0xE5);
    // Store everything → exhaustive summaries.
    let cfg = CqmsConfig {
        full_output_min_rows: 10_000,
        ..CqmsConfig::default()
    };
    let mut cqms = Cqms::new(engine, cfg);
    let u = cqms.register_user("u");
    for thr in [12, 15, 18, 20, 22, 25] {
        cqms.run_query(
            u,
            &format!("SELECT DISTINCT lake FROM WaterTemp WHERE temp < {thr}"),
        )
        .unwrap();
    }
    let hits = cqms.search_by_data(u, &["Lake Washington"], &["Lake Union"], false);
    let all_separating = hits.iter().all(|id| {
        let sql = &cqms.storage.get(*id).unwrap().raw_sql;
        // Lake Union temps start at 18.5 in the generator.
        ["12", "15", "18"]
            .iter()
            .any(|t| sql.contains(&format!("< {t}")))
    });
    println!(
        "controlled log: {} queries match include=[Lake Washington], exclude=[Lake Union]; \
         all matches use a separating threshold: {all_separating}\n",
        hits.len()
    );

    println!("| log size | summaries | matches | latency (us) |");
    println!("|---|---|---|---|");
    for &(size, full) in &[(500usize, true), (2000, true), (2000, false)] {
        let mut cfg = CqmsConfig::default();
        if full {
            cfg.full_output_min_rows = 10_000;
        } else {
            cfg.full_output_min_rows = 4;
            cfg.full_output_rows_per_ms = 0.0;
            cfg.output_sample_size = 8;
        }
        let lc = logged_cqms_with(Domain::Lakes, size, 0xE5, cfg);
        let user = lc.users[0];
        let hits = lc
            .cqms
            .search_by_data(user, &["Lake Washington"], &["Lake Union"], false);
        let t = time_mean(5, || {
            lc.cqms
                .search_by_data(user, &["Lake Washington"], &["Lake Union"], false)
                .len()
        });
        println!(
            "| {size} | {} | {} | {} |",
            if full { "exhaustive" } else { "sampled" },
            hits.len(),
            us(t)
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E6 — §2.2/§4.2 search-mode latency
// ---------------------------------------------------------------------
fn e6_search_modes() {
    println!("## E6 — meta-query latency by search mode (2000-query log)\n");
    let lc = logged_cqms(Domain::Lakes, 2000, 0xE6);
    let user = lc.users[0];
    let tree = TreePattern {
        tables_all: vec!["watersalinity".into()],
        predicate_on: Some(("watertemp".into(), "temp".into(), Some("<".into()))),
        ..Default::default()
    };
    println!("| mode | results | latency (us) |");
    println!("|---|---|---|");
    let n_kw = lc.cqms.search_keyword(user, "salinity temp", 10).len();
    let t_kw = time_mean(20, || {
        lc.cqms.search_keyword(user, "salinity temp", 10).len()
    });
    println!("| keyword (TF-IDF top-10) | {n_kw} | {} |", us(t_kw));
    let n_sub = lc.cqms.search_substring(user, "temp < 1").len();
    let t_sub = time_mean(20, || lc.cqms.search_substring(user, "temp < 1").len());
    println!("| substring (trigram) | {n_sub} | {} |", us(t_sub));
    let n_tree = lc.cqms.search_parse_tree(user, &tree).len();
    let t_tree = time_mean(20, || lc.cqms.search_parse_tree(user, &tree).len());
    println!("| parse-tree pattern | {n_tree} | {} |", us(t_tree));
    let n_feat = lc
        .cqms
        .search_feature_sql(user, FIGURE1_META_QUERY)
        .unwrap()
        .rows
        .len();
    let t_feat = time_mean(10, || {
        lc.cqms
            .search_feature_sql(user, FIGURE1_META_QUERY)
            .unwrap()
            .rows
            .len()
    });
    println!("| feature SQL (Fig. 1) | {n_feat} | {} |", us(t_feat));
    println!();
}

// ---------------------------------------------------------------------
// E7 — §4.2 kNN recommendation latency & quality (A3 ablation)
// ---------------------------------------------------------------------
fn e7_knn() {
    println!("## E7 — kNN similarity queries\n");
    println!("| log size | metric | top-1 same-topic | latency (us, k=5) |");
    println!("|---|---|---|---|");
    for &size in &[500usize, 2000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE7);
        let user = lc.users[0];
        let probes: Vec<(String, u32)> = lc
            .trace
            .queries
            .iter()
            .step_by(lc.trace.queries.len() / 20)
            .map(|q| (q.sql.clone(), q.topic))
            .collect();
        for metric in [
            DistanceKind::Features,
            DistanceKind::ParseTree,
            DistanceKind::TreeEdit,
            DistanceKind::Combined,
        ] {
            // Strict quality proxy: the nearest neighbour must carry the
            // probe's exact ground-truth topic label.
            let mut hits = 0usize;
            for (sql, topic) in &probes {
                if let Ok(found) = lc.cqms.similar_queries(user, sql, 1, metric) {
                    if let Some(best) = found.first() {
                        if lc.trace.queries[best.id.0 as usize].topic == *topic {
                            hits += 1;
                        }
                    }
                }
            }
            let probe = probes[0].0.clone();
            let t = time_mean(10, || {
                lc.cqms
                    .similar_queries(user, &probe, 5, metric)
                    .unwrap()
                    .len()
            });
            println!(
                "| {size} | {metric:?} | {:.2} | {} |",
                hits as f64 / probes.len() as f64,
                us(t)
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// E8 — §4.3 clustering
// ---------------------------------------------------------------------
fn e8_clustering() {
    println!("## E8 — query clustering vs planted topics\n");
    println!("| log size | k | purity | ARI | epoch time (ms) |");
    println!("|---|---|---|---|---|");
    for &size in &[300usize, 1000] {
        for &k in &[2usize, 3, 5] {
            let mut lc = logged_cqms(Domain::Lakes, size, 0xE8);
            lc.cqms.config.cluster_k = k;
            let start = std::time::Instant::now();
            lc.cqms.run_miner_epoch();
            let epoch_ms = start.elapsed().as_secs_f64() * 1e3;
            let (ids, clustering) = lc.cqms.clustering().unwrap();
            let truth: Vec<u64> = ids
                .iter()
                .map(|id| lc.trace.queries[id.0 as usize].topic as u64)
                .collect();
            println!(
                "| {size} | {k} | {:.3} | {:.3} | {:.1} |",
                purity(&clustering.assignment, &truth),
                adjusted_rand_index(&clustering.assignment, &truth),
                epoch_ms
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// E9 — §4.3 association rules
// ---------------------------------------------------------------------
fn e9_assoc_rules() {
    println!("## E9 — association-rule mining vs planted rules\n");
    println!("| domain | transactions | planted rules recovered | mined conf (planted prob) | miner epoch (ms) |");
    println!("|---|---|---|---|---|");
    for domain in Domain::all() {
        let mut lc = logged_cqms(domain, 1500, 0xE9);
        let start = std::time::Instant::now();
        lc.cqms.run_miner_epoch();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let mut recovered = 0usize;
        let mut confs = Vec::new();
        for planted in &lc.trace.rules {
            if let Some(rule) = lc.cqms.association_rules().iter().find(|r| {
                r.antecedent == vec![planted.antecedent.clone()]
                    && r.consequent == planted.consequent
            }) {
                recovered += 1;
                confs.push(format!(
                    "{:.2} ({:.2})",
                    rule.confidence, planted.probability
                ));
            }
        }
        println!(
            "| {} | {} | {recovered}/{} | {} | {:.1} |",
            domain.name(),
            lc.cqms.storage.live_count(),
            lc.trace.rules.len(),
            confs.join(", "),
            ms
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E10 — §4.4 schema evolution & repair
// ---------------------------------------------------------------------
fn e10_maintenance() {
    println!("## E10 — schema evolution: invalidation & automatic repair\n");
    println!("| change | examined | affected | repaired | flagged | obsolete | scan time (ms) |");
    println!("|---|---|---|---|---|---|---|");
    let scenarios: Vec<(&str, Vec<&str>)> = vec![
        (
            "rename column (WaterTemp.temp)",
            vec!["ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature"],
        ),
        (
            "rename table (WaterSalinity)",
            vec!["ALTER TABLE WaterSalinity RENAME TO Salinity"],
        ),
        (
            "drop column (WaterTemp.month)",
            vec!["ALTER TABLE WaterTemp DROP COLUMN month"],
        ),
        ("drop table (Lakes)", vec!["DROP TABLE Lakes"]),
        (
            "rename column + rename table",
            vec![
                "ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature",
                "ALTER TABLE WaterTemp RENAME TO LakeTemps",
            ],
        ),
    ];
    for (label, ddls) in scenarios {
        let mut lc = logged_cqms(Domain::Lakes, 400, 0xE10);
        for ddl in ddls {
            lc.cqms.data.execute(ddl).unwrap();
        }
        let start = std::time::Instant::now();
        let (report, _) = lc.cqms.run_maintenance().unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        // Verify every repaired query actually runs.
        for id in &report.repaired {
            let sql = lc.cqms.storage.get(*id).unwrap().raw_sql.clone();
            assert!(lc.cqms.data.execute(&sql).is_ok(), "repair broken: {sql}");
        }
        println!(
            "| {label} | {} | {} | {} | {} | {} | {:.1} |",
            report.examined,
            report.affected,
            report.repaired.len(),
            report.flagged.len(),
            report.obsolete.len(),
            ms
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E11 — §4.1 adaptive output summarisation
// ---------------------------------------------------------------------
fn e11_summarisation() {
    println!("## E11 — adaptive output summarisation rule\n");
    let cfg = CqmsConfig::default();
    println!("| elapsed | result rows | decision | rows stored |");
    println!("|---|---|---|---|");
    // Grid including the paper's two anchor points.
    for &(elapsed_label, elapsed_us, rows) in &[
        ("2 h", 2u64 * 3600 * 1_000_000, 10u64),
        ("2 s", 2_000_000, 2_000_000),
        ("2 s", 2_000_000, 1_500),
        ("50 ms", 50_000, 200),
        ("50 ms", 50_000, 20),
        ("1 ms", 1_000, 8),
    ] {
        let budget = cfg.full_output_budget(elapsed_us);
        let (decision, stored) = if rows <= budget {
            ("store full output", rows)
        } else {
            ("reservoir sample", cfg.output_sample_size as u64)
        };
        println!("| {elapsed_label} | {rows} | {decision} | {stored} |");
    }
    println!(
        "\n(budget rule: max({}, elapsed_ms x {}) rows, capped at {})\n",
        cfg.full_output_min_rows, cfg.full_output_rows_per_ms, cfg.full_output_max_rows
    );
}

// ---------------------------------------------------------------------
// E12 — §2.4 access control
// ---------------------------------------------------------------------
fn e12_access_control() {
    println!("## E12 — access control correctness & overhead\n");
    let mut engine = relstore::Engine::new();
    Domain::Lakes.setup(&mut engine, 200, 0xE12);
    let mut cqms = Cqms::new(engine, CqmsConfig::default());
    let _admin = cqms.register_user("admin");
    let alice = cqms.register_user("alice");
    let bob = cqms.register_user("bob");
    let eve = cqms.register_user("eve");
    let lab = cqms.create_group("lab");
    cqms.join_group(alice, lab).unwrap();
    cqms.join_group(bob, lab).unwrap();
    // Alice logs 200 group-visible queries.
    for i in 0..200 {
        cqms.run_query(
            alice,
            &format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 25),
        )
        .unwrap();
    }
    let in_group = cqms.search_keyword(bob, "watertemp", 500).len();
    let outside = cqms.search_keyword(eve, "watertemp", 500).len();
    let t_member = time_mean(20, || cqms.search_keyword(bob, "watertemp", 50).len());
    let t_outsider = time_mean(20, || cqms.search_keyword(eve, "watertemp", 50).len());
    println!("| viewer | visible results | keyword latency (us) |");
    println!("|---|---|---|");
    println!("| group member | {in_group} | {} |", us(t_member));
    println!("| outsider | {outside} | {} |", us(t_outsider));
    assert_eq!(outside, 0);
    println!();
}

// ---------------------------------------------------------------------
// E13 — §4.4 statistics refresh policy (A4 ablation)
// ---------------------------------------------------------------------
fn e13_refresh_policy() {
    println!("## E13 — statistics refresh: naive vs drift-triggered\n");
    let mut lc = logged_cqms(Domain::Lakes, 400, 0xE13);
    // Epoch 0 sets baselines.
    lc.cqms.run_maintenance().unwrap();
    println!("| epoch | event | drifted tables | drift-triggered re-runs | naive re-runs |");
    println!("|---|---|---|---|---|");
    let events: Vec<(&str, Option<&str>)> = vec![
        ("no change", None),
        (
            "WaterTemp +500 shift",
            Some("UPDATE WaterTemp SET temp = temp + 500"),
        ),
        ("no change", None),
        (
            "CityLocations pop x10",
            Some("UPDATE CityLocations SET pop = pop * 10"),
        ),
    ];
    for (epoch, (label, ddl)) in events.into_iter().enumerate() {
        if let Some(ddl) = ddl {
            lc.cqms.data.execute(ddl).unwrap();
        }
        let (_, refresh) = lc.cqms.run_maintenance().unwrap();
        println!(
            "| {} | {label} | {:?} | {} | {} |",
            epoch + 1,
            refresh.drifted_tables,
            refresh.refreshed.len(),
            refresh.naive_rerun_count
        );
    }
    println!();
}
