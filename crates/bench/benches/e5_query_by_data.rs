//! E5 — query-by-data latency (§2.2): matching positive/negative example
//! tuples against stored output summaries.

use cqms_bench::logged_cqms_with;
use cqms_core::CqmsConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_query_by_data");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for &size in &[500usize, 2000] {
        // Exhaustive summaries.
        let cfg = CqmsConfig {
            full_output_min_rows: 10_000,
            ..CqmsConfig::default()
        };
        let lc = logged_cqms_with(Domain::Lakes, size, 0xE5, cfg);
        let user = lc.users[0];
        group.bench_with_input(BenchmarkId::new("summary_match", size), &size, |b, _| {
            b.iter(|| {
                lc.cqms
                    .search_by_data(user, &["Lake Washington"], &["Lake Union"], false)
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
