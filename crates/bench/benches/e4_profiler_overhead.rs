//! E4 — per-query profiler overhead (§2.1: "the CQMS does not impose
//! significant runtime overhead"). Compares the bare engine against the
//! fully profiled path at two data scales.

use cqms_core::{Cqms, CqmsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

const QUERY: &str = "SELECT T.lake, T.temp, S.salinity FROM WaterTemp T, WaterSalinity S \
                     WHERE T.loc_x = S.loc_x AND T.loc_y = S.loc_y AND T.temp < 18";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_profiler_overhead");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for &scale in &[1_000usize, 10_000] {
        let mut engine = relstore::Engine::new();
        Domain::Lakes.setup(&mut engine, scale, 0xE4);
        group.bench_with_input(BenchmarkId::new("bare_engine", scale), &scale, |b, _| {
            b.iter(|| engine.execute(QUERY).unwrap().rows.len())
        });

        let mut engine2 = relstore::Engine::new();
        Domain::Lakes.setup(&mut engine2, scale, 0xE4);
        let mut cqms = Cqms::new(engine2, CqmsConfig::default());
        let u = cqms.register_user("u");
        group.bench_with_input(BenchmarkId::new("profiled_full", scale), &scale, |b, _| {
            b.iter(|| cqms.run_query(u, QUERY).unwrap().id)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
