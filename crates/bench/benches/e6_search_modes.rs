//! E6 — meta-query latency by search mode (§2.2/§4.2): keyword vs substring
//! vs parse-tree vs feature SQL on the same 2000-query log.

use cqms_bench::logged_cqms;
use cqms_core::metaquery::{TreePattern, FIGURE1_META_QUERY};
use criterion::{criterion_group, criterion_main, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_search_modes");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let lc = logged_cqms(Domain::Lakes, 2000, 0xE6);
    let user = lc.users[0];
    group.bench_function("keyword", |b| {
        b.iter(|| lc.cqms.search_keyword(user, "salinity temp", 10).len())
    });
    group.bench_function("substring", |b| {
        b.iter(|| lc.cqms.search_substring(user, "temp < 1").len())
    });
    let tree = TreePattern {
        tables_all: vec!["watersalinity".into()],
        ..Default::default()
    };
    group.bench_function("parse_tree", |b| {
        b.iter(|| lc.cqms.search_parse_tree(user, &tree).len())
    });
    group.bench_function("feature_sql", |b| {
        b.iter(|| {
            lc.cqms
                .search_feature_sql(user, FIGURE1_META_QUERY)
                .unwrap()
                .rows
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
