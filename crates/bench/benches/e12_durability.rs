//! E12 — durability overhead. The write-ahead log must not price the
//! profiler out of the ingest path (§2.1's "no significant runtime
//! overhead" applies to durable deployments too). Three axes:
//!
//! * `ingest_batch32_ram` — the RAM-only baseline: one acknowledged
//!   32-query batch through `CqmsService::ingest_batch`.
//! * `ingest_batch32_wal` — the same batch over a durable CQMS
//!   (`Cqms::open`) with `wal_fsync` off: encode + buffered write per
//!   query, one flush per batch. This is the ≤1.3× acceptance axis — it
//!   isolates the WAL's own bookkeeping from syscall latency.
//! * `ingest_batch32_wal_fsync` — fsync-per-batch, the production
//!   setting; reported for operators, dominated by the device.
//!
//! Plus recovery: `open_replay_2k` reopens a directory holding a 2 000
//! query log (no snapshot) against `open_baseline`, which builds the
//! same engine without a directory — the difference is replay cost.
//!
//! Plus self-healing (PR 9): `open_salvage_midlog` opens a directory
//! whose log is corrupted mid-segment *under* a snapshot horizon — the
//! salvage scan, quarantine, and re-anchor path — and `repair_promote`
//! measures one manual repair epoch promoting a healed shard back to
//! serving. Both copy a pre-built template directory inside the timed
//! closure (the shim has no `iter_batched`), so they report salvage +
//! copy; the copy is identical across samples.

use cqms_core::{Cqms, CqmsConfig, CqmsService, IngestItem, ShardedCqms};
use std::path::{Path, PathBuf};

use criterion::{criterion_group, criterion_main, Criterion};
use workload::Domain;

/// Queries pre-logged for the replay axis (rounded down to whole batches).
const REPLAY_QUERIES: usize = 2_000;

fn engine(scale: usize) -> relstore::Engine {
    let mut engine = relstore::Engine::new();
    Domain::Lakes.setup(&mut engine, scale, 0xE12);
    engine
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cqms-e12-{tag}-{}", std::process::id()))
}

/// One acknowledged batch: 32 queries cycling over the lakes templates.
fn batch(user: cqms_core::UserId) -> Vec<IngestItem> {
    let templates = [
        "SELECT * FROM Lakes",
        "SELECT lake, temp FROM WaterTemp WHERE temp < {}",
        "SELECT salinity FROM WaterSalinity WHERE salinity > {}",
        "SELECT city, pop FROM CityLocations WHERE pop > {}",
    ];
    (0..32)
        .map(|i| {
            let sql = templates[i % templates.len()].replace("{}", &i.to_string());
            IngestItem::new(user, sql)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_durability");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    // --- Ingest overhead -------------------------------------------------
    let ram = CqmsService::new(Cqms::new(engine(1_000), CqmsConfig::default()));
    let user = ram.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_ram", |b| {
        b.iter(|| {
            let acks = ram.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });

    let wal_dir = temp_dir("wal");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let cfg = CqmsConfig {
        wal_fsync: false,
        ..CqmsConfig::default()
    };
    let wal = CqmsService::new(Cqms::open(engine(1_000), cfg, &wal_dir).unwrap());
    let user = wal.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_wal", |b| {
        b.iter(|| {
            let acks = wal.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });
    drop(wal);
    let _ = std::fs::remove_dir_all(&wal_dir);

    let fsync_dir = temp_dir("fsync");
    let _ = std::fs::remove_dir_all(&fsync_dir);
    let durable =
        CqmsService::new(Cqms::open(engine(1_000), CqmsConfig::default(), &fsync_dir).unwrap());
    let user = durable.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_wal_fsync", |b| {
        b.iter(|| {
            let acks = durable.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });
    drop(durable);
    let _ = std::fs::remove_dir_all(&fsync_dir);

    // --- Recovery: reopen a 2 000-query log ------------------------------
    let replay_dir = temp_dir("replay");
    let _ = std::fs::remove_dir_all(&replay_dir);
    {
        let cfg = CqmsConfig {
            wal_fsync: false,
            ..CqmsConfig::default()
        };
        let svc = CqmsService::new(Cqms::open(engine(60), cfg, &replay_dir).unwrap());
        let user = svc.register_user("bench");
        let items = batch(user);
        for _ in 0..REPLAY_QUERIES / items.len() {
            svc.ingest_batch(&items);
        }
    }
    group.bench_function("open_baseline", |b| {
        b.iter(|| Cqms::new(engine(60), CqmsConfig::default()).storage.len())
    });
    group.bench_function("open_replay_2k", |b| {
        b.iter(|| {
            let cqms = Cqms::open(engine(60), CqmsConfig::default(), &replay_dir).unwrap();
            assert_eq!(cqms.storage.len(), REPLAY_QUERIES / 32 * 32);
            cqms.storage.len()
        })
    });
    let _ = std::fs::remove_dir_all(&replay_dir);

    // --- Salvage: open over mid-log corruption under a snapshot ----------
    // Template: 128 queries, a snapshot covering them, 64 more past the
    // horizon, then one wrecked frame well below the horizon. Opening
    // must skip the wound (no loss), quarantine the damaged segment, and
    // re-anchor — the full self-healing open path.
    let salvage_tmpl = temp_dir("salvage-tmpl");
    let _ = std::fs::remove_dir_all(&salvage_tmpl);
    {
        let cfg = CqmsConfig {
            wal_fsync: false,
            ..CqmsConfig::default()
        };
        let mut cqms = Cqms::open(engine(60), cfg, &salvage_tmpl).unwrap();
        let user = cqms.register_user("bench");
        for i in 0..128u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM Lakes WHERE area > {i}"),
                1_000 + i,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        let snap_dir = cqms.storage.wal_snapshot_dir().expect("durable dir");
        let horizon = cqms.storage.wal_last_lsn().unwrap();
        let mut body = Vec::new();
        cqms.storage.snapshot(&mut body).unwrap();
        cqms_core::wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
        for i in 128..192u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM Lakes WHERE area > {i}"),
                1_000 + i,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
    }
    let (_, seg) = cqms_core::wal::list_segments(&salvage_tmpl)
        .unwrap()
        .remove(0);
    let mut bytes = std::fs::read(&seg).unwrap();
    let off = second_frame_offset(&bytes);
    bytes[off] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let salvage_work = temp_dir("salvage-work");
    group.bench_function("open_salvage_midlog", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&salvage_work);
            copy_flat(&salvage_tmpl, &salvage_work);
            let cqms = Cqms::open(engine(60), CqmsConfig::default(), &salvage_work).unwrap();
            let report = cqms.recovery().unwrap();
            assert_eq!(report.frames_lost, 0, "covered corruption costs nothing");
            assert!(report.bytes_quarantined > 0, "the wound is on the books");
            cqms.storage.len()
        })
    });
    let _ = std::fs::remove_dir_all(&salvage_tmpl);
    let _ = std::fs::remove_dir_all(&salvage_work);

    // --- Repair: one supervisor epoch promoting a healed shard -----------
    // Template: a healthy 2-shard deployment. Each sample opens it with
    // shard 1 replaced by a squatter file (degraded), heals the
    // directory, and runs one manual repair epoch: recover off-lock,
    // swap the placeholder, un-fence writes.
    let repair_tmpl = temp_dir("repair-tmpl");
    let _ = std::fs::remove_dir_all(&repair_tmpl);
    let shard_cfg = CqmsConfig {
        shards: 2,
        wal_fsync: false,
        open_degraded: true,
        repair_interval_ms: 0, // manual epochs: the bench drives the clock
        ..CqmsConfig::default()
    };
    {
        let s = ShardedCqms::open(shard_engine, shard_cfg.clone(), &repair_tmpl).unwrap();
        for i in 0..6 {
            let u = s.register_user(&format!("user{i}"));
            for j in 0..16u64 {
                s.run_query_at(
                    u,
                    &format!("SELECT * FROM Lakes WHERE area > {j}"),
                    1_000 + j,
                )
                .unwrap();
            }
        }
        s.shutdown();
    }

    let repair_work = temp_dir("repair-work");
    group.bench_function("repair_promote", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&repair_work);
            std::fs::create_dir_all(&repair_work).unwrap();
            copy_flat(&repair_tmpl.join("shard-0"), &repair_work.join("shard-0"));
            std::fs::write(repair_work.join("shard-1"), b"disk fault").unwrap();
            let s = ShardedCqms::open(shard_engine, shard_cfg.clone(), &repair_work).unwrap();
            assert_eq!(s.degraded_shards(), vec![1]);
            std::fs::remove_file(repair_work.join("shard-1")).unwrap();
            copy_flat(&repair_tmpl.join("shard-1"), &repair_work.join("shard-1"));
            let promoted = s.run_repair_epoch();
            assert_eq!(promoted, vec![1], "the healed shard promotes");
            let live = s.live_count();
            s.shutdown();
            live
        })
    });
    let _ = std::fs::remove_dir_all(&repair_tmpl);
    let _ = std::fs::remove_dir_all(&repair_work);

    group.finish();
}

fn shard_engine() -> relstore::Engine {
    engine(60)
}

/// Byte offset of a payload byte inside the second WAL frame —
/// `[len u32][crc u32][body]` framing, no decode needed.
fn second_frame_offset(bytes: &[u8]) -> usize {
    let len0 = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let start1 = 8 + len0;
    let len1 = u32::from_le_bytes(bytes[start1..start1 + 4].try_into().unwrap()) as usize;
    start1 + 8 + len1 / 2
}

/// Copy every regular file in `src` into `dst` (WAL dirs are flat).
fn copy_flat(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
