//! E12 — durability overhead. The write-ahead log must not price the
//! profiler out of the ingest path (§2.1's "no significant runtime
//! overhead" applies to durable deployments too). Three axes:
//!
//! * `ingest_batch32_ram` — the RAM-only baseline: one acknowledged
//!   32-query batch through `CqmsService::ingest_batch`.
//! * `ingest_batch32_wal` — the same batch over a durable CQMS
//!   (`Cqms::open`) with `wal_fsync` off: encode + buffered write per
//!   query, one flush per batch. This is the ≤1.3× acceptance axis — it
//!   isolates the WAL's own bookkeeping from syscall latency.
//! * `ingest_batch32_wal_fsync` — fsync-per-batch, the production
//!   setting; reported for operators, dominated by the device.
//!
//! Plus recovery: `open_replay_2k` reopens a directory holding a 2 000
//! query log (no snapshot) against `open_baseline`, which builds the
//! same engine without a directory — the difference is replay cost.

use cqms_core::{Cqms, CqmsConfig, CqmsService, IngestItem};
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use workload::Domain;

/// Queries pre-logged for the replay axis (rounded down to whole batches).
const REPLAY_QUERIES: usize = 2_000;

fn engine(scale: usize) -> relstore::Engine {
    let mut engine = relstore::Engine::new();
    Domain::Lakes.setup(&mut engine, scale, 0xE12);
    engine
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cqms-e12-{tag}-{}", std::process::id()))
}

/// One acknowledged batch: 32 queries cycling over the lakes templates.
fn batch(user: cqms_core::UserId) -> Vec<IngestItem> {
    let templates = [
        "SELECT * FROM Lakes",
        "SELECT lake, temp FROM WaterTemp WHERE temp < {}",
        "SELECT salinity FROM WaterSalinity WHERE salinity > {}",
        "SELECT city, pop FROM CityLocations WHERE pop > {}",
    ];
    (0..32)
        .map(|i| {
            let sql = templates[i % templates.len()].replace("{}", &i.to_string());
            IngestItem::new(user, sql)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_durability");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    // --- Ingest overhead -------------------------------------------------
    let ram = CqmsService::new(Cqms::new(engine(1_000), CqmsConfig::default()));
    let user = ram.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_ram", |b| {
        b.iter(|| {
            let acks = ram.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });

    let wal_dir = temp_dir("wal");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let cfg = CqmsConfig {
        wal_fsync: false,
        ..CqmsConfig::default()
    };
    let wal = CqmsService::new(Cqms::open(engine(1_000), cfg, &wal_dir).unwrap());
    let user = wal.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_wal", |b| {
        b.iter(|| {
            let acks = wal.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });
    drop(wal);
    let _ = std::fs::remove_dir_all(&wal_dir);

    let fsync_dir = temp_dir("fsync");
    let _ = std::fs::remove_dir_all(&fsync_dir);
    let durable =
        CqmsService::new(Cqms::open(engine(1_000), CqmsConfig::default(), &fsync_dir).unwrap());
    let user = durable.register_user("bench");
    let items = batch(user);
    group.bench_function("ingest_batch32_wal_fsync", |b| {
        b.iter(|| {
            let acks = durable.ingest_batch(&items);
            assert!(acks.iter().all(|r| r.is_ok()));
        })
    });
    drop(durable);
    let _ = std::fs::remove_dir_all(&fsync_dir);

    // --- Recovery: reopen a 2 000-query log ------------------------------
    let replay_dir = temp_dir("replay");
    let _ = std::fs::remove_dir_all(&replay_dir);
    {
        let cfg = CqmsConfig {
            wal_fsync: false,
            ..CqmsConfig::default()
        };
        let svc = CqmsService::new(Cqms::open(engine(60), cfg, &replay_dir).unwrap());
        let user = svc.register_user("bench");
        let items = batch(user);
        for _ in 0..REPLAY_QUERIES / items.len() {
            svc.ingest_batch(&items);
        }
    }
    group.bench_function("open_baseline", |b| {
        b.iter(|| Cqms::new(engine(60), CqmsConfig::default()).storage.len())
    });
    group.bench_function("open_replay_2k", |b| {
        b.iter(|| {
            let cqms = Cqms::open(engine(60), CqmsConfig::default(), &replay_dir).unwrap();
            assert_eq!(cqms.storage.len(), REPLAY_QUERIES / 32 * 32);
            cqms.storage.len()
        })
    });
    let _ = std::fs::remove_dir_all(&replay_dir);

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
