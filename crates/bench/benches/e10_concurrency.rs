//! E10 — concurrent read throughput of the service layer.
//!
//! The paper's online components must answer interactive requests from many
//! analysts at once while background work proceeds (§4, Fig. 4). This bench
//! measures the read path of `CqmsService` — completion, keyword search and
//! SQL meta-query search — at 1/2/4/8 reader threads with one continuous
//! writer ingesting in the background.
//!
//! Each measured closure performs a *fixed total* of `READ_OPS` operations
//! split evenly across the reader threads, so scaling shows up directly as
//! falling mean time (4 readers ≥ 2× the 1-reader ops/sec means the
//! 4-reader mean is ≤ half the 1-reader mean). Every reader count gets a
//! fresh service + writer so the log size at measurement time is identical
//! across configurations.
//!
//! PR 7 adds the sharded axes: `writers_sharded/{1,4,8}` (a fixed batch
//! of writes fanned over 8 threads against N independently write-locked
//! shards) and `sharded_read/{idle,storm8}` (merged cross-shard reads
//! with and without an 8-writer storm).
//!
//! PR 8 adds the overload axes: `overload/uncontended` vs `overload/shed`
//! (the same fixed quota of *admitted* writes, alone vs racing a 4-thread
//! storm against a depth-2 admission gate — fast-fail shedding keeps the
//! admitted latency close) and `overload/deadline` (a budgeted cross-shard
//! read against an injected 50 ms slow shard: the deadline, not the slow
//! shard, bounds the caller).
//!
//! PR 10 adds the snapshot axes: `snapshot_read/{idle,writer_storm,
//! rebuild_storm}` (reads served from the published one-`Arc`
//! `ReadSnapshot`) against `locked_read/{...}` (the same ops inside the
//! service-wide read lock — the pre-PR 10 shape).

use cqms_bench::logged_cqms;
use cqms_core::model::UserId;
use cqms_core::service::CqmsService;
use cqms_core::shard::ShardedCqms;
use cqms_core::CqmsConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workload::{Domain, Trace, TraceConfig};

/// Total read operations per measured iteration (divisible by 1, 2, 4, 8).
const READ_OPS: usize = 120;

/// One reader's share of the snapshot-served rotation: the three read
/// paths PR 10 routes through the published one-`Arc` `ReadSnapshot`
/// (completion, keyword and substring search). Each op clones the
/// published snapshot under a momentary slot lock and scores lock-free.
fn snapshot_read_ops(svc: &CqmsService, user: UserId, ops: usize) {
    for i in 0..ops {
        match i % 3 {
            0 => {
                std::hint::black_box(svc.complete(user, "SELECT * FROM WaterSalinity, ", 5));
            }
            1 => {
                std::hint::black_box(svc.search_keyword(user, "temp", 10));
            }
            _ => {
                std::hint::black_box(svc.search_substring(user, "watertemp"));
            }
        }
    }
}

/// The same rotation forced through the pre-PR 10 shape: every op runs
/// inside [`CqmsService::read`], holding the service-wide read lock for
/// its full duration — so it queues behind writers and rebuild swaps.
/// The `snapshot_read` axes are measured against this baseline.
fn locked_read_ops(svc: &CqmsService, user: UserId, ops: usize) {
    for i in 0..ops {
        match i % 3 {
            0 => {
                svc.read(|c| {
                    std::hint::black_box(c.complete(user, "SELECT * FROM WaterSalinity, ", 5))
                });
            }
            1 => {
                svc.read(|c| std::hint::black_box(c.search_keyword(user, "temp", 10)));
            }
            _ => {
                svc.read(|c| std::hint::black_box(c.search_substring(user, "watertemp")));
            }
        }
    }
}

/// One reader's share of the workload: a fixed rotation over the three
/// online read paths.
fn read_ops(svc: &CqmsService, user: UserId, ops: usize) {
    for i in 0..ops {
        match i % 3 {
            0 => {
                std::hint::black_box(svc.complete(user, "SELECT * FROM WaterSalinity, ", 5));
            }
            1 => {
                std::hint::black_box(svc.search_keyword(user, "temp", 10));
            }
            _ => {
                std::hint::black_box(
                    svc.search_feature_sql(
                        user,
                        "SELECT qid FROM DataSources WHERE relName = 'watertemp'",
                    )
                    .unwrap(),
                );
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_concurrency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for readers in [1usize, 2, 4, 8] {
        // Fresh state per configuration: same initial log size for every
        // reader count, unpolluted by the previous writer.
        let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
        let users = lc.users.clone();
        let svc = CqmsService::new(lc.cqms);
        let user = users[0];

        // One writer ingesting continuously while readers are measured.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let svc = svc.clone();
            let stop = stop.clone();
            let writer_user = users[1];
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let sql = format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 30);
                    let _ = svc.run_query(writer_user, &sql);
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                i
            })
        };

        let per_thread = READ_OPS / readers;
        group.bench_function(BenchmarkId::new("readers", readers), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..readers {
                        let svc = svc.clone();
                        s.spawn(move || read_ops(&svc, user, per_thread));
                    }
                });
            })
        });

        stop.store(true, Ordering::Relaxed);
        let written = writer.join().expect("writer thread panicked");
        assert!(written > 0, "writer never ran");
    }

    // Reader-threads-during-rebuild config: the same fixed read batch,
    // but instead of a writer, a background thread continuously forces
    // double-buffered index rebuilds (schedule → build under the read
    // lock → publish swap). Readers keep serving the published
    // generation; the gap to the plain `readers` axis is the cost of
    // racing a rebuild instead of stopping the world for one.
    for readers in [1usize, 4] {
        let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
        let users = lc.users.clone();
        let svc = CqmsService::new(lc.cqms);
        let user = users[0];

        let stop = Arc::new(AtomicBool::new(false));
        let rebuilder = {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rebuilds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    svc.write(|c| c.storage.schedule_index_rebuild());
                    if svc.rebuild_indexes() {
                        rebuilds += 1;
                    }
                }
                rebuilds
            })
        };

        let per_thread = READ_OPS / readers;
        group.bench_function(BenchmarkId::new("readers_rebuild", readers), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..readers {
                        let svc = svc.clone();
                        s.spawn(move || read_ops(&svc, user, per_thread));
                    }
                });
            })
        });

        stop.store(true, Ordering::Relaxed);
        let rebuilds = rebuilder.join().expect("rebuilder thread panicked");
        assert!(rebuilds > 0, "rebuilder never published a generation");
    }

    // Sharded write throughput (PR 7): the same fixed batch of writes,
    // fanned over 8 writer threads, against 1/4/8 shards. With one shard
    // every writer serialises on the single write lock; with N shards
    // only same-shard writers contend, so the mean should fall roughly
    // with the shard count until routing collisions dominate.
    const WRITE_OPS: usize = 96;
    const WRITERS: usize = 8;
    for shards in [1usize, 4, 8] {
        let (s, _) = sharded_logged(shards);
        // Pick writer users that spread evenly over the shards (writer t
        // on shard t % N), so the axis measures lock contention, not
        // routing luck at a tiny user count.
        let mut writer_users: Vec<UserId> = Vec::with_capacity(WRITERS);
        let mut candidate = 0usize;
        while writer_users.len() < WRITERS {
            let u = s.register_user(&format!("writer-{candidate}"));
            candidate += 1;
            if s.shard_of(u) == writer_users.len() % shards {
                writer_users.push(u);
            }
        }
        let per_thread = WRITE_OPS / WRITERS;
        group.bench_function(BenchmarkId::new("writers_sharded", shards), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (t, &u) in writer_users.iter().enumerate() {
                        let s = s.clone();
                        scope.spawn(move || {
                            for i in 0..per_thread {
                                let sql = format!(
                                    "SELECT * FROM WaterTemp WHERE temp < {}",
                                    (t * per_thread + i) % 30
                                );
                                std::hint::black_box(s.run_query(u, &sql).unwrap());
                            }
                        });
                    }
                });
            })
        });
    }

    // Sharded read latency, idle vs under an 8-writer storm: with writes
    // spread across 8 independently-locked shards and the per-shard read
    // path epoch-based, a full writer storm should cost readers well
    // under 2× the idle figure. Each iteration is self-contained — the
    // read batch races 8 writers pushing a *fixed* quota of churned
    // writes (insert + tombstone of the previous one), so the log stays
    // near its seeded size and every sample measures the same workload
    // instead of an ever-growing store.
    const STORM_WRITES: usize = 12;
    for (label, storm_writers) in [("idle", 0usize), ("storm8", 8)] {
        let (s, users) = sharded_logged(8);
        let user = users[0];
        let writer_users: Vec<UserId> = (0..storm_writers)
            .map(|w| s.register_user(&format!("storm-{w}")))
            .collect();

        group.bench_function(BenchmarkId::new("sharded_read", label), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (w, &u) in writer_users.iter().enumerate() {
                        let s = s.clone();
                        scope.spawn(move || {
                            let mut prev = None;
                            for i in 0..STORM_WRITES {
                                let sql = format!(
                                    "SELECT * FROM WaterTemp WHERE temp < {}",
                                    (w * STORM_WRITES + i) % 30
                                );
                                if let Ok(out) = s.run_query(u, &sql) {
                                    if let Some(old) = prev.replace(out.id) {
                                        let _ = s.delete_query(u, old);
                                    }
                                }
                            }
                        });
                    }
                    sharded_read_ops(&s, user, READ_OPS);
                });
            })
        });
    }

    // Overload axes (PR 8). Both writer axes measure the *same* fixed
    // quota of admitted writes by one victim thread — `uncontended` alone,
    // `shed` while a 4-thread storm hammers a depth-2 admission gate. A
    // shed request fails fast with a retry hint instead of queueing on the
    // write lock, so the victim's admitted latency under 4× overload
    // should stay within ~2× of the uncontended figure (the PR 8
    // acceptance bound; BENCH_pr8.json anchors both axes).
    const ADMITTED_OPS: usize = 48;
    let run_admitted = |svc: &CqmsService, user: UserId, ops: usize| {
        for i in 0..ops {
            let sql = format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 30);
            loop {
                match svc.run_query(user, &sql) {
                    Ok(out) => {
                        std::hint::black_box(out);
                        break;
                    }
                    // Overloaded: a shed is a cheap fast-fail, so the
                    // retry costs a scheduler yield, not a queue wait;
                    // the retry loop IS the measured admitted latency.
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
    };
    for (label, storm_threads) in [("uncontended", 0usize), ("shed", 4)] {
        let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
        let users = lc.users.clone();
        let mut cqms = lc.cqms;
        cqms.config.ingest_queue_depth = 2;
        let svc = CqmsService::new(cqms);
        let victim = users[0];

        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..storm_threads)
            .map(|h| {
                let svc = svc.clone();
                let stop = stop.clone();
                let u = users[1 + h];
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    let mut shed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let sql = format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 30);
                        if svc.run_query(u, &sql).is_err() {
                            shed += 1;
                        }
                        // Paced offered load: each storm thread offers up
                        // to ~1000 req/s whether shed or admitted, so the
                        // axis measures gate behavior, not a CPU-spin
                        // denial of service on small runners.
                        std::thread::sleep(Duration::from_millis(1));
                        i += 1;
                    }
                    shed
                })
            })
            .collect();

        group.bench_function(BenchmarkId::new("overload", label), |b| {
            b.iter(|| run_admitted(&svc, victim, ADMITTED_OPS))
        });

        stop.store(true, Ordering::Relaxed);
        let shed: u64 = hammers
            .into_iter()
            .map(|h| h.join().expect("hammer thread panicked"))
            .sum();
        if storm_threads > 0 {
            assert!(shed > 0, "the storm never tripped the gate");
        }
    }

    // Deadline axis: a budgeted cross-shard keyword read against a
    // 4-shard deployment where one shard is injected to answer 50 ms
    // late. The 20 ms budget — not the slow shard — bounds each call;
    // compare with `sharded_read/idle` for the undeadlined figure.
    {
        use cqms_core::faults::{self, FaultAction};
        let (s, users) = sharded_logged(4);
        let user = users[0];
        let plan = s.shards()[3].fault_plan();
        plan.arm(
            faults::SHARD_READ,
            FaultAction::Delay(Duration::from_millis(50)),
            None,
        );
        group.bench_function(BenchmarkId::new("overload", "deadline"), |b| {
            b.iter(|| {
                std::hint::black_box(s.search_keyword_deadline(
                    user,
                    "temp",
                    10,
                    Duration::from_millis(20),
                ))
            })
        });
        plan.disarm_all();
    }

    // Snapshot vs locked reads (PR 10): the same fixed batch of
    // snapshot-served ops (completion + keyword + substring), 4 reader
    // threads, under three conditions — idle, an 8-writer storm, and a
    // rebuild storm (continuously forced generation rebuilds). The
    // `locked_read` baseline runs each op inside the service-wide read
    // lock (the pre-PR 10 shape), so under the storms it queues behind
    // every write/publish; `snapshot_read` clones the published Arc and
    // never touches the store lock again. Acceptance: writer_storm
    // snapshot ≥5× locked on multi-core runners (a 1-core container
    // compresses the gap), idle snapshot within 1.1× of locked.
    const SNAP_READERS: usize = 4;
    for (label, storm_writers, rebuild) in [
        ("idle", 0usize, false),
        ("writer_storm", 8, false),
        ("rebuild_storm", 0, true),
    ] {
        type ReadFn = fn(&CqmsService, UserId, usize);
        for (path, read_fn) in [
            ("snapshot_read", snapshot_read_ops as ReadFn),
            ("locked_read", locked_read_ops as ReadFn),
        ] {
            let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
            let users = lc.users.clone();
            let svc = CqmsService::new(lc.cqms);
            let user = users[0];

            let stop = Arc::new(AtomicBool::new(false));
            let writers: Vec<_> = (0..storm_writers)
                .map(|w| {
                    let svc = svc.clone();
                    let stop = stop.clone();
                    let u = users[1 + w % (users.len() - 1)];
                    std::thread::spawn(move || {
                        let mut i = 0u64;
                        let mut prev = None;
                        while !stop.load(Ordering::Relaxed) {
                            let sql = format!(
                                "SELECT * FROM WaterTemp WHERE temp < {}",
                                (w as u64 * 97 + i) % 30
                            );
                            // Churned writes (insert + tombstone of the
                            // previous one) keep the log near its seeded
                            // size across samples.
                            if let Ok(out) = svc.run_query(u, &sql) {
                                if let Some(old) = prev.replace(out.id) {
                                    let _ = svc.delete_query(u, old);
                                }
                            }
                            std::thread::sleep(Duration::from_millis(1));
                            i += 1;
                        }
                        i
                    })
                })
                .collect();
            let rebuilder = rebuild.then(|| {
                let svc = svc.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut rebuilds = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        svc.write(|c| c.storage.schedule_index_rebuild());
                        if svc.rebuild_indexes() {
                            rebuilds += 1;
                        }
                    }
                    rebuilds
                })
            });

            let per_thread = READ_OPS / SNAP_READERS;
            group.bench_function(BenchmarkId::new(path, label), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..SNAP_READERS {
                            let svc = svc.clone();
                            s.spawn(move || read_fn(&svc, user, per_thread));
                        }
                    });
                })
            });

            stop.store(true, Ordering::Relaxed);
            for w in writers {
                w.join().expect("storm writer panicked");
            }
            if let Some(r) = rebuilder {
                let rebuilds = r.join().expect("rebuilder thread panicked");
                assert!(rebuilds > 0, "rebuilder never published a generation");
            }
        }
    }
    group.finish();
}

/// Build a sharded deployment replaying the same 1500-query trace the
/// unsharded axes use (`logged_cqms(Domain::Lakes, 1500, 0xE10)`).
fn sharded_logged(shards: usize) -> (ShardedCqms, Vec<UserId>) {
    let trace = Trace::generate(
        TraceConfig::new(Domain::Lakes)
            .with_sessions(300)
            .with_users(6)
            .with_scale(300)
            .with_seed(0xE10),
    );
    let config = CqmsConfig {
        shards,
        ..CqmsConfig::default()
    };
    let s = ShardedCqms::new(|| trace.build_engine(), config);
    let users: Vec<UserId> = (0..6)
        .map(|i| s.register_user(&format!("user-{i}")))
        .collect();
    for q in &trace.queries {
        let _ = s.run_query_at(users[q.user as usize % users.len()], &q.sql, q.ts);
    }
    (s, users)
}

/// The cross-shard mirror of [`read_ops`]: the same rotation over the
/// three online read paths, served by k-way merges.
fn sharded_read_ops(s: &ShardedCqms, user: UserId, ops: usize) {
    for i in 0..ops {
        match i % 3 {
            0 => {
                std::hint::black_box(s.complete(user, "SELECT * FROM WaterSalinity, ", 5));
            }
            1 => {
                std::hint::black_box(s.search_keyword(user, "temp", 10));
            }
            _ => {
                std::hint::black_box(
                    s.search_feature_sql(
                        user,
                        "SELECT qid FROM DataSources WHERE relName = 'watertemp'",
                    )
                    .unwrap(),
                );
            }
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
