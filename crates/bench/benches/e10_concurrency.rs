//! E10 — concurrent read throughput of the service layer.
//!
//! The paper's online components must answer interactive requests from many
//! analysts at once while background work proceeds (§4, Fig. 4). This bench
//! measures the read path of `CqmsService` — completion, keyword search and
//! SQL meta-query search — at 1/2/4/8 reader threads with one continuous
//! writer ingesting in the background.
//!
//! Each measured closure performs a *fixed total* of `READ_OPS` operations
//! split evenly across the reader threads, so scaling shows up directly as
//! falling mean time (4 readers ≥ 2× the 1-reader ops/sec means the
//! 4-reader mean is ≤ half the 1-reader mean). Every reader count gets a
//! fresh service + writer so the log size at measurement time is identical
//! across configurations.

use cqms_bench::logged_cqms;
use cqms_core::model::UserId;
use cqms_core::service::CqmsService;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workload::Domain;

/// Total read operations per measured iteration (divisible by 1, 2, 4, 8).
const READ_OPS: usize = 120;

/// One reader's share of the workload: a fixed rotation over the three
/// online read paths.
fn read_ops(svc: &CqmsService, user: UserId, ops: usize) {
    for i in 0..ops {
        match i % 3 {
            0 => {
                std::hint::black_box(svc.complete(user, "SELECT * FROM WaterSalinity, ", 5));
            }
            1 => {
                std::hint::black_box(svc.search_keyword(user, "temp", 10));
            }
            _ => {
                std::hint::black_box(
                    svc.search_feature_sql(
                        user,
                        "SELECT qid FROM DataSources WHERE relName = 'watertemp'",
                    )
                    .unwrap(),
                );
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_concurrency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for readers in [1usize, 2, 4, 8] {
        // Fresh state per configuration: same initial log size for every
        // reader count, unpolluted by the previous writer.
        let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
        let users = lc.users.clone();
        let svc = CqmsService::new(lc.cqms);
        let user = users[0];

        // One writer ingesting continuously while readers are measured.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let svc = svc.clone();
            let stop = stop.clone();
            let writer_user = users[1];
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let sql = format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 30);
                    let _ = svc.run_query(writer_user, &sql);
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                i
            })
        };

        let per_thread = READ_OPS / readers;
        group.bench_function(BenchmarkId::new("readers", readers), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..readers {
                        let svc = svc.clone();
                        s.spawn(move || read_ops(&svc, user, per_thread));
                    }
                });
            })
        });

        stop.store(true, Ordering::Relaxed);
        let written = writer.join().expect("writer thread panicked");
        assert!(written > 0, "writer never ran");
    }

    // Reader-threads-during-rebuild config: the same fixed read batch,
    // but instead of a writer, a background thread continuously forces
    // double-buffered index rebuilds (schedule → build under the read
    // lock → publish swap). Readers keep serving the published
    // generation; the gap to the plain `readers` axis is the cost of
    // racing a rebuild instead of stopping the world for one.
    for readers in [1usize, 4] {
        let lc = logged_cqms(Domain::Lakes, 1500, 0xE10);
        let users = lc.users.clone();
        let svc = CqmsService::new(lc.cqms);
        let user = users[0];

        let stop = Arc::new(AtomicBool::new(false));
        let rebuilder = {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rebuilds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    svc.write(|c| c.storage.schedule_index_rebuild());
                    if svc.rebuild_indexes() {
                        rebuilds += 1;
                    }
                }
                rebuilds
            })
        };

        let per_thread = READ_OPS / readers;
        group.bench_function(BenchmarkId::new("readers_rebuild", readers), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..readers {
                        let svc = svc.clone();
                        s.spawn(move || read_ops(&svc, user, per_thread));
                    }
                });
            })
        });

        stop.store(true, Ordering::Relaxed);
        let rebuilds = rebuilder.join().expect("rebuilder thread panicked");
        assert!(rebuilds > 0, "rebuilder never published a generation");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
