//! E3 — completion suggestion latency (Figure 3's dropdown must appear as
//! the user types; §1: "it must provide hints and recommendations
//! interactively").

use cqms_bench::logged_cqms;
use criterion::{criterion_group, criterion_main, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_completion");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let lc = logged_cqms(Domain::Lakes, 2000, 0xE3);
    let user = lc.users[0];
    group.bench_function("table_context_aware", |b| {
        b.iter(|| {
            lc.cqms
                .complete(user, "SELECT * FROM WaterSalinity, ", 5)
                .len()
        })
    });
    group.bench_function("predicate", |b| {
        b.iter(|| {
            lc.cqms
                .complete(user, "SELECT * FROM WaterTemp WHERE ", 5)
                .len()
        })
    });
    group.bench_function("attribute_prefix", |b| {
        b.iter(|| lc.cqms.complete(user, "SELECT te", 5).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
