//! E8 — query clustering throughput (§4.3): one full miner epoch including
//! the O(n²) distance matrix and k-medoids.

use cqms_bench::logged_cqms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_clustering");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    for &size in &[200usize, 500] {
        let mut lc = logged_cqms(Domain::Lakes, size, 0xE8);
        group.bench_with_input(BenchmarkId::new("miner_epoch", size), &size, |b, _| {
            b.iter(|| lc.cqms.run_miner_epoch().clusters)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
