//! E8 — query clustering throughput (§4.3): one full miner epoch including
//! the O(n²) distance matrix and k-medoids, plus a signature-vs-legacy
//! comparison of the distance-matrix inner loop itself (the epoch's hot
//! path): interned-id merges over precomputed signatures against the
//! seed's per-pair `HashSet`-materialising feature distance.

use cqms_bench::logged_cqms;
use cqms_core::model::QueryRecord;
use cqms_core::signature::SimSignature;
use cqms_core::similarity;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_clustering");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    for &size in &[200usize, 500] {
        let mut lc = logged_cqms(Domain::Lakes, size, 0xE8);
        group.bench_with_input(BenchmarkId::new("miner_epoch", size), &size, |b, _| {
            b.iter(|| lc.cqms.run_miner_epoch().clusters)
        });
    }

    // Signature-vs-legacy distance matrix at 500 queries.
    let lc = logged_cqms(Domain::Lakes, 500, 0xE8);
    let cfg = &lc.cqms.config;
    let records: Vec<&QueryRecord> = lc.cqms.storage.iter_live().collect();
    let sigs: Vec<&SimSignature> = records
        .iter()
        .map(|r| lc.cqms.storage.signature(r.id).unwrap())
        .collect();
    let n = records.len();
    group.bench_with_input(
        BenchmarkId::new("distance_matrix_legacy", n),
        &n,
        |b, &n| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..n {
                    for j in (i + 1)..n {
                        acc += similarity::feature_distance(records[i], records[j], cfg);
                    }
                }
                acc
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("distance_matrix_sig", n), &n, |b, &n| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    acc += similarity::feature_distance_sig(sigs[i], sigs[j], cfg);
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
