//! E7 — kNN recommendation latency by similarity metric (§4.2: kNN
//! meta-queries must be interactive; A3 ablation across distance kinds),
//! plus a store-size axis (500/2000) for the candidate-pruned metrics:
//! with signature precomputation and posting-index pruning, Features and
//! Combined latency should grow far slower than the log.

use cqms_bench::logged_cqms;
use cqms_core::similarity::DistanceKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

const PROBE: &str = "SELECT * FROM WaterSalinity S, WaterTemp T \
                     WHERE S.loc_x = T.loc_x AND T.temp < 18";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_knn");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let lc = logged_cqms(Domain::Lakes, 1000, 0xE7);
    let user = lc.users[0];
    for metric in [
        DistanceKind::Features,
        DistanceKind::ParseTree,
        DistanceKind::TreeEdit,
        DistanceKind::Output,
        DistanceKind::Combined,
    ] {
        group.bench_with_input(
            BenchmarkId::new("metric", format!("{metric:?}")),
            &metric,
            |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
        );
    }
    // Store-size axis for the pruned metrics: the asymptotic win shows as
    // sub-linear growth from 500 → 2000 logged queries.
    for &size in &[500usize, 2000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE7);
        let user = lc.users[0];
        for metric in [DistanceKind::Features, DistanceKind::Combined] {
            group.bench_with_input(
                BenchmarkId::new(format!("store_{metric:?}"), size),
                &metric,
                |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
