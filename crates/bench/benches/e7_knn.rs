//! E7 — kNN recommendation latency by similarity metric (§4.2: kNN
//! meta-queries must be interactive; A3 ablation across distance kinds),
//! plus a store-size axis (500/2000) for the indexed/pruned metrics:
//! Features and Combined via signatures + posting pruning, TreeEdit via
//! the VP-tree metric index, ParseTree via the diff-profile lower-bound
//! sweep — all should grow far slower than the log.
//!
//! After the timed axes, the cheap-bound effectiveness counters of the
//! tree metrics are reported as `bound_hit_rate/...` lines (and appended
//! to `CQMS_BENCH_JSON` when set).

use cqms_bench::logged_cqms;
use cqms_core::similarity::DistanceKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::Write as _;
use workload::Domain;

const PROBE: &str = "SELECT * FROM WaterSalinity S, WaterTemp T \
                     WHERE S.loc_x = T.loc_x AND T.temp < 18";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_knn");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let lc = logged_cqms(Domain::Lakes, 1000, 0xE7);
    let user = lc.users[0];
    for metric in [
        DistanceKind::Features,
        DistanceKind::ParseTree,
        DistanceKind::TreeEdit,
        DistanceKind::Output,
        DistanceKind::Combined,
    ] {
        group.bench_with_input(
            BenchmarkId::new("metric", format!("{metric:?}")),
            &metric,
            |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
        );
    }
    // Cheap-bound hit rates at the 1000-query store, accumulated over the
    // metric axis above: fraction of considered pairs a bound disposed of
    // without running the exact tree metric.
    let stats = lc.cqms.storage.metric_stats();
    report_rate("e7_knn/bound_hit_rate/TreeEdit", stats.tree_edit.hit_rate());
    report_rate(
        "e7_knn/bound_hit_rate/ParseTree",
        stats.parse_tree.hit_rate(),
    );

    // Store-size axis for the indexed/pruned metrics: the asymptotic win
    // shows as sub-linear growth from 500 → 2000 logged queries.
    for &size in &[500usize, 2000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE7);
        let user = lc.users[0];
        for metric in [
            DistanceKind::Features,
            DistanceKind::Combined,
            DistanceKind::TreeEdit,
            DistanceKind::ParseTree,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("store_{metric:?}"), size),
                &metric,
                |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
            );
        }
    }
    group.finish();
}

/// Print a counter line and append it to `CQMS_BENCH_JSON` (same sink the
/// criterion shim writes timing lines to).
fn report_rate(id: &str, rate: f64) {
    println!("{id:<50} rate {rate:.4}");
    if let Ok(path) = std::env::var("CQMS_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\": \"{id}\", \"value\": {rate:.4}}}");
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
