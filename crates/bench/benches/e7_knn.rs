//! E7 — kNN recommendation latency by similarity metric (§4.2: kNN
//! meta-queries must be interactive; A3 ablation across distance kinds),
//! plus a store-size axis (500/2000) for the indexed/pruned metrics:
//! Features and Combined via signatures + posting pruning, TreeEdit via
//! the VP-tree metric index, ParseTree via the registry's
//! profile-fingerprint group sweep — all should grow far slower than the
//! log. Two registry axes ride along: `store_ParseTree_dup` grows the
//! store 4× with *duplicate* statements (groups — and therefore
//! per-probe bound work — stay constant), and `rebuild_while_probing`
//! measures TreeEdit/ParseTree probe latency while a background thread
//! continuously forces double-buffered generation rebuilds through the
//! service layer (probes keep serving the published generation; only
//! the brief publish swap can delay them).
//!
//! After the timed axes, the cheap-bound effectiveness counters of the
//! tree metrics are reported as `bound_hit_rate/...` lines (and appended
//! to `CQMS_BENCH_JSON` when set).

use cqms_bench::logged_cqms;
use cqms_core::service::CqmsService;
use cqms_core::similarity::DistanceKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workload::Domain;

const PROBE: &str = "SELECT * FROM WaterSalinity S, WaterTemp T \
                     WHERE S.loc_x = T.loc_x AND T.temp < 18";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_knn");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let lc = logged_cqms(Domain::Lakes, 1000, 0xE7);
    let user = lc.users[0];
    for metric in [
        DistanceKind::Features,
        DistanceKind::ParseTree,
        DistanceKind::TreeEdit,
        DistanceKind::Output,
        DistanceKind::Combined,
    ] {
        group.bench_with_input(
            BenchmarkId::new("metric", format!("{metric:?}")),
            &metric,
            |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
        );
    }
    // Cheap-bound hit rates at the 1000-query store, accumulated over the
    // metric axis above: fraction of considered pairs a bound disposed of
    // without running the exact tree metric.
    let stats = lc.cqms.storage.metric_stats();
    report_rate("e7_knn/bound_hit_rate/TreeEdit", stats.tree_edit.hit_rate());
    report_rate(
        "e7_knn/bound_hit_rate/ParseTree",
        stats.parse_tree.hit_rate(),
    );

    // Store-size axis for the indexed/pruned metrics: the asymptotic win
    // shows as sub-linear growth from 500 → 2000 logged queries.
    for &size in &[500usize, 2000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE7);
        let user = lc.users[0];
        for metric in [
            DistanceKind::Features,
            DistanceKind::Combined,
            DistanceKind::TreeEdit,
            DistanceKind::ParseTree,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("store_{metric:?}"), size),
                &metric,
                |b, &m| b.iter(|| lc.cqms.similar_queries(user, PROBE, 5, m).unwrap().len()),
            );
        }
    }

    // Duplicate-template store axis: the 2000-store is the 500-store's
    // trace replayed 4× — identical statements, so the number of
    // profile-fingerprint groups (and the ParseTree probe's bound work)
    // stays fixed while the record count quadruples.
    for &(size, replays) in &[(500usize, 0usize), (2000, 3)] {
        let mut lc = logged_cqms(Domain::Lakes, 500, 0xE7);
        for _ in 0..replays {
            let queries: Vec<(u32, String, u64)> = lc
                .trace
                .queries
                .iter()
                .map(|q| (q.user, q.sql.clone(), q.ts))
                .collect();
            for (u, sql, ts) in queries {
                let user = lc.users[u as usize % lc.users.len()];
                let _ = lc.cqms.run_query_at(user, &sql, ts);
            }
        }
        // Steady state again after the growth.
        lc.cqms.storage.schedule_index_rebuild();
        lc.cqms.storage.run_index_maintenance();
        let user = lc.users[0];
        group.bench_with_input(
            BenchmarkId::new("store_ParseTree_dup", size),
            &size,
            |b, _| {
                b.iter(|| {
                    lc.cqms
                        .similar_queries(user, PROBE, 5, DistanceKind::ParseTree)
                        .unwrap()
                        .len()
                })
            },
        );
    }

    // Rebuild-while-probing axis: tree-metric probes racing continuously
    // forced generation rebuilds (the stop-the-world case this PR
    // removes — probes now only ever read a published generation).
    {
        let lc = logged_cqms(Domain::Lakes, 1000, 0xE7);
        let user = lc.users[0];
        let svc = CqmsService::new(lc.cqms);
        let stop = Arc::new(AtomicBool::new(false));
        let rebuilder = {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rebuilds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    svc.write(|c| c.storage.schedule_index_rebuild());
                    if svc.rebuild_indexes() {
                        rebuilds += 1;
                    }
                }
                rebuilds
            })
        };
        for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
            group.bench_with_input(
                BenchmarkId::new("rebuild_while_probing", format!("{metric:?}")),
                &metric,
                |b, &m| b.iter(|| svc.similar_queries(user, PROBE, 5, m).unwrap().len()),
            );
        }
        stop.store(true, Ordering::Relaxed);
        let rebuilds = rebuilder.join().expect("rebuilder thread panicked");
        assert!(rebuilds > 0, "no rebuild raced the probes");
        report_rate("e7_knn/rebuild_while_probing/rebuilds", rebuilds as f64);
        report_rate(
            "e7_knn/rebuild_while_probing/final_generation",
            svc.index_generation() as f64,
        );
    }
    group.finish();
}

/// Print a counter line and append it to `CQMS_BENCH_JSON` (same sink the
/// criterion shim writes timing lines to).
fn report_rate(id: &str, rate: f64) {
    println!("{id:<50} rate {rate:.4}");
    if let Ok(path) = std::env::var("CQMS_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\": \"{id}\", \"value\": {rate:.4}}}");
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
