//! E9 — Apriori association-rule mining throughput (§4.3) as the
//! transaction log grows.

use cqms_core::miner::assoc::mine_apriori;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::{Domain, Trace, TraceConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_assoc_rules");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for &sessions in &[100u32, 400] {
        let trace = Trace::generate(
            TraceConfig::new(Domain::Lakes)
                .with_sessions(sessions)
                .with_seed(0xE9),
        );
        let transactions: Vec<Vec<String>> = trace
            .queries
            .iter()
            .filter_map(|q| sqlparse::parse(&q.sql).ok())
            .map(|stmt| cqms_core::features::extract(&stmt, None).items())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("apriori", transactions.len()),
            &transactions,
            |b, t| b.iter(|| mine_apriori(t, 5, 0.5).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
