//! E1 — Figure 1 meta-query latency (query-by-feature over the feature
//! relations) as the query log grows. Regenerates the latency column of the
//! E1 table in EXPERIMENTS.md; the paper's claim under test is §4.2's
//! "meta-querying must be interactive".

use cqms_bench::logged_cqms;
use cqms_core::metaquery::FIGURE1_META_QUERY;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Domain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_figure1_metaquery");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for &size in &[500usize, 2000] {
        let lc = logged_cqms(Domain::Lakes, size, 0xE1);
        let user = lc.users[0];
        group.bench_with_input(BenchmarkId::new("feature_sql", size), &size, |b, _| {
            b.iter(|| {
                lc.cqms
                    .search_feature_sql(user, FIGURE1_META_QUERY)
                    .unwrap()
                    .rows
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
