//! Trace: a complete reproducible environment (schema + data + query log +
//! ground truth).

use crate::querygen::{planted_rules, GenConfig, GenQuery, Generator, PlantedRule};
use crate::schemas::Domain;
use relstore::Engine;

/// Configuration of a trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub domain: Domain,
    /// Approximate rows per base table.
    pub data_scale: usize,
    pub users: u32,
    pub sessions: u32,
    /// Mean queries per session.
    pub session_len: u32,
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            domain: Domain::Lakes,
            data_scale: 200,
            users: 8,
            sessions: 40,
            session_len: 5,
            seed: 0xC1D2_2009,
        }
    }
}

impl TraceConfig {
    pub fn new(domain: Domain) -> Self {
        TraceConfig {
            domain,
            ..Default::default()
        }
    }

    pub fn with_sessions(mut self, sessions: u32) -> Self {
        self.sessions = sessions;
        self
    }

    pub fn with_users(mut self, users: u32) -> Self {
        self.users = users;
        self
    }

    pub fn with_scale(mut self, scale: usize) -> Self {
        self.data_scale = scale;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated trace with its ground truth.
#[derive(Debug, Clone)]
pub struct Trace {
    pub config: TraceConfig,
    pub queries: Vec<GenQuery>,
    pub rules: Vec<PlantedRule>,
}

impl Trace {
    /// Generate the trace (query log + truth) for a config.
    pub fn generate(config: TraceConfig) -> Trace {
        let mut generator = Generator::new(config.domain, config.seed);
        let queries = generator.generate(&GenConfig {
            users: config.users,
            sessions: config.sessions,
            session_len: config.session_len,
            seed: config.seed,
        });
        Trace {
            rules: planted_rules(config.domain),
            queries,
            config,
        }
    }

    /// Build a fresh engine with this trace's schema and data.
    pub fn build_engine(&self) -> Engine {
        let mut e = Engine::new();
        self.config
            .domain
            .setup(&mut e, self.config.data_scale, self.config.seed);
        e
    }

    /// Number of distinct ground-truth sessions.
    pub fn session_count(&self) -> usize {
        let mut ids: Vec<u32> = self.queries.iter().map(|q| q.session).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct users appearing in the log.
    pub fn user_count(&self) -> usize {
        let mut ids: Vec<u32> = self.queries.iter().map(|q| q.user).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        let t = Trace::generate(TraceConfig::new(Domain::Lakes).with_sessions(12));
        assert_eq!(t.session_count(), 12);
        assert!(t.user_count() >= 2);
        assert!(!t.rules.is_empty());
        let mut e = t.build_engine();
        // Every logged query runs on the built engine.
        for q in &t.queries {
            e.execute(&q.sql)
                .unwrap_or_else(|err| panic!("query failed: {}\n{err}", q.sql));
        }
    }

    #[test]
    fn traces_reproducible() {
        let a = Trace::generate(TraceConfig::new(Domain::SkySurvey).with_seed(5));
        let b = Trace::generate(TraceConfig::new(Domain::SkySurvey).with_seed(5));
        let sa: Vec<&str> = a.queries.iter().map(|q| q.sql.as_str()).collect();
        let sb: Vec<&str> = b.queries.iter().map(|q| q.sql.as_str()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(TraceConfig::new(Domain::Lakes).with_seed(1));
        let b = Trace::generate(TraceConfig::new(Domain::Lakes).with_seed(2));
        let sa: Vec<&str> = a.queries.iter().map(|q| q.sql.as_str()).collect();
        let sb: Vec<&str> = b.queries.iter().map(|q| q.sql.as_str()).collect();
        assert_ne!(sa, sb);
    }
}
