//! Trace: a complete reproducible environment (schema + data + query log +
//! ground truth).

use crate::querygen::{planted_rules, GenConfig, GenQuery, Generator, PlantedRule};
use crate::schemas::Domain;
use relstore::Engine;

/// Configuration of a trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub domain: Domain,
    /// Approximate rows per base table.
    pub data_scale: usize,
    pub users: u32,
    pub sessions: u32,
    /// Mean queries per session.
    pub session_len: u32,
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            domain: Domain::Lakes,
            data_scale: 200,
            users: 8,
            sessions: 40,
            session_len: 5,
            seed: 0xC1D2_2009,
        }
    }
}

impl TraceConfig {
    pub fn new(domain: Domain) -> Self {
        TraceConfig {
            domain,
            ..Default::default()
        }
    }

    pub fn with_sessions(mut self, sessions: u32) -> Self {
        self.sessions = sessions;
        self
    }

    pub fn with_users(mut self, users: u32) -> Self {
        self.users = users;
        self
    }

    pub fn with_scale(mut self, scale: usize) -> Self {
        self.data_scale = scale;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated trace with its ground truth.
#[derive(Debug, Clone)]
pub struct Trace {
    pub config: TraceConfig,
    pub queries: Vec<GenQuery>,
    pub rules: Vec<PlantedRule>,
}

impl Trace {
    /// Generate the trace (query log + truth) for a config.
    pub fn generate(config: TraceConfig) -> Trace {
        let mut generator = Generator::new(config.domain, config.seed);
        let queries = generator.generate(&GenConfig {
            users: config.users,
            sessions: config.sessions,
            session_len: config.session_len,
            seed: config.seed,
        });
        Trace {
            rules: planted_rules(config.domain),
            queries,
            config,
        }
    }

    /// Build a fresh engine with this trace's schema and data.
    pub fn build_engine(&self) -> Engine {
        let mut e = Engine::new();
        self.config
            .domain
            .setup(&mut e, self.config.data_scale, self.config.seed);
        e
    }

    /// Number of distinct ground-truth sessions.
    pub fn session_count(&self) -> usize {
        let mut ids: Vec<u32> = self.queries.iter().map(|q| q.session).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct users appearing in the log.
    pub fn user_count(&self) -> usize {
        let mut ids: Vec<u32> = self.queries.iter().map(|q| q.user).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Deterministically partition the query log across `threads` replay
    /// clients.
    ///
    /// All queries of one user land on one thread (distinct users are
    /// assigned round-robin in sorted order), and each thread's schedule
    /// preserves the trace order of its queries. Per-user ordering is what
    /// online session assignment depends on, so a concurrent replay of
    /// these partitions reaches the same per-user state as a sequential
    /// replay regardless of how the threads interleave.
    pub fn partition(&self, threads: usize) -> Vec<Vec<GenQuery>> {
        self.partition_refs(threads)
            .into_iter()
            .map(|part| part.into_iter().cloned().collect())
            .collect()
    }

    /// Borrowing form of [`Trace::partition`]: the same deterministic
    /// schedule without cloning any query.
    fn partition_refs(&self, threads: usize) -> Vec<Vec<&GenQuery>> {
        let n = threads.max(1);
        let mut users: Vec<u32> = self.queries.iter().map(|q| q.user).collect();
        users.sort_unstable();
        users.dedup();
        let slot_of = |user: u32| {
            users
                .binary_search(&user)
                .expect("user came from this trace")
                % n
        };
        let mut parts: Vec<Vec<&GenQuery>> = vec![Vec::new(); n];
        for q in &self.queries {
            parts[slot_of(q.user)].push(q);
        }
        parts
    }

    /// Multi-threaded trace replay: fan the log across `threads` client
    /// threads with the deterministic per-thread schedule of
    /// [`Trace::partition`], calling `f(thread_index, query)` for every
    /// query. Blocks until all clients finish; returns the number of
    /// queries each thread replayed.
    ///
    /// `f` decides what "replaying" means — typically ingesting into a
    /// shared `CqmsService` — and must be thread-safe.
    pub fn replay_concurrent<F>(&self, threads: usize, f: F) -> Vec<usize>
    where
        F: Fn(usize, &GenQuery) + Sync,
    {
        let parts = self.partition_refs(threads);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    scope.spawn(move || {
                        for q in part {
                            f(i, q);
                        }
                        part.len()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay client panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        let t = Trace::generate(TraceConfig::new(Domain::Lakes).with_sessions(12));
        assert_eq!(t.session_count(), 12);
        assert!(t.user_count() >= 2);
        assert!(!t.rules.is_empty());
        let mut e = t.build_engine();
        // Every logged query runs on the built engine.
        for q in &t.queries {
            e.execute(&q.sql)
                .unwrap_or_else(|err| panic!("query failed: {}\n{err}", q.sql));
        }
    }

    #[test]
    fn traces_reproducible() {
        let a = Trace::generate(TraceConfig::new(Domain::SkySurvey).with_seed(5));
        let b = Trace::generate(TraceConfig::new(Domain::SkySurvey).with_seed(5));
        let sa: Vec<&str> = a.queries.iter().map(|q| q.sql.as_str()).collect();
        let sb: Vec<&str> = b.queries.iter().map(|q| q.sql.as_str()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn partition_is_deterministic_and_complete() {
        let t = Trace::generate(
            TraceConfig::new(Domain::Lakes)
                .with_sessions(20)
                .with_users(5),
        );
        let parts = t.partition(3);
        assert_eq!(parts.len(), 3);
        // Nothing lost, nothing duplicated.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, t.queries.len());
        // One thread per user, trace order preserved within each thread.
        for part in &parts {
            for pair in part.windows(2) {
                assert!(pair[0].ts <= pair[1].ts, "schedule out of trace order");
            }
        }
        let mut user_thread = std::collections::HashMap::new();
        for (i, part) in parts.iter().enumerate() {
            for q in part {
                assert_eq!(
                    *user_thread.entry(q.user).or_insert(i),
                    i,
                    "user split across threads"
                );
            }
        }
        // Deterministic across calls.
        let again = t.partition(3);
        for (a, b) in parts.iter().zip(&again) {
            let sa: Vec<&str> = a.iter().map(|q| q.sql.as_str()).collect();
            let sb: Vec<&str> = b.iter().map(|q| q.sql.as_str()).collect();
            assert_eq!(sa, sb);
        }
        // More threads than users still works.
        let wide = t.partition(64);
        assert_eq!(wide.iter().map(Vec::len).sum::<usize>(), t.queries.len());
    }

    #[test]
    fn replay_concurrent_visits_every_query_once() {
        use std::sync::Mutex;
        let t = Trace::generate(TraceConfig::new(Domain::WebLog).with_sessions(12));
        let seen = Mutex::new(Vec::new());
        let counts = t.replay_concurrent(4, |thread, q| {
            seen.lock().unwrap().push((thread, q.sql.clone()));
        });
        assert_eq!(counts.iter().sum::<usize>(), t.queries.len());
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), t.queries.len());
        let mut expected: Vec<String> = t.queries.iter().map(|q| q.sql.clone()).collect();
        expected.sort();
        let mut replayed: Vec<String> = seen.into_iter().map(|(_, sql)| sql).collect();
        replayed.sort();
        assert_eq!(replayed, expected);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(TraceConfig::new(Domain::Lakes).with_seed(1));
        let b = Trace::generate(TraceConfig::new(Domain::Lakes).with_seed(2));
        let sa: Vec<&str> = a.queries.iter().map(|q| q.sql.as_str()).collect();
        let sb: Vec<&str> = b.queries.iter().map(|q| q.sql.as_str()).collect();
        assert_ne!(sa, sb);
    }
}
