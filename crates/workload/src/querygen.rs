//! Multi-user query-log generation with planted ground truth.
//!
//! Each generated query carries its **user**, **timestamp** (logical
//! seconds), ground-truth **session id** and **topic label**. Sessions evolve
//! through the same edit grammar the paper's Figure 2 visualises (change a
//! constant, add a predicate, add a table, …), so the session-segmentation
//! and diff experiments score against known truth.
//!
//! The generator also plants **association rules** (returned by
//! [`planted_rules`]) that the Query Miner should rediscover — including the
//! paper's §2.3 example: *"for queries that also include WaterSalinity, the
//! most popular [co-occurring table] is WaterTemp"*.

use crate::schemas::{ConstGen, Domain, PredTemplate, Topic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated query with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct GenQuery {
    pub sql: String,
    pub user: u32,
    /// Logical seconds since trace start.
    pub ts: u64,
    /// Ground-truth session id (global across users).
    pub session: u32,
    /// Ground-truth topic index (the planted cluster label).
    pub topic: u32,
}

/// A planted association rule `antecedent ⇒ consequent` with the probability
/// the generator applies it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedRule {
    pub antecedent: String,
    pub consequent: String,
    pub probability: f64,
}

/// The rules the generator plants for each domain, in item vocabulary
/// `table:<name>` (lower-cased).
pub fn planted_rules(domain: Domain) -> Vec<PlantedRule> {
    match domain {
        Domain::Lakes => vec![
            PlantedRule {
                antecedent: "table:watersalinity".into(),
                consequent: "table:watertemp".into(),
                probability: 0.85,
            },
            PlantedRule {
                antecedent: "table:lakes".into(),
                consequent: "table:citylocations".into(),
                probability: 0.6,
            },
        ],
        Domain::SkySurvey => vec![PlantedRule {
            antecedent: "table:specobj".into(),
            consequent: "table:photoobj".into(),
            probability: 0.9,
        }],
        Domain::WebLog => vec![PlantedRule {
            antecedent: "table:searches".into(),
            consequent: "table:users".into(),
            probability: 0.8,
        }],
    }
}

/// The exact six-query session depicted in the paper's Figure 2, ending with
/// the query text shown in the figure.
pub fn figure2_session() -> Vec<&'static str> {
    vec![
        "SELECT * FROM WaterTemp",
        "SELECT * FROM WaterTemp, WaterSalinity",
        "SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.temp < 22",
        "SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.temp < 10",
        "SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.temp < 18",
        "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
         WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
    ]
}

/// Generator configuration (see [`crate::trace::TraceConfig`] for the
/// user-facing bundle).
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub users: u32,
    pub sessions: u32,
    /// Mean queries per session (actual 2..=2*mean).
    pub session_len: u32,
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            users: 8,
            sessions: 40,
            session_len: 5,
            seed: 0xC1D2_2009,
        }
    }
}

/// Mutable query state evolved within a session.
#[derive(Debug, Clone)]
struct QueryState {
    topic_idx: usize,
    tables: Vec<&'static str>,
    /// (table, column, op, rendered constant)
    predicates: Vec<(String, String, &'static str, String)>,
    /// Join conditions (t1, c1, t2, c2) active for current tables.
    joins: Vec<(String, String, String, String)>,
    /// None = `*`.
    projection: Option<Vec<(String, String)>>,
    order_by: Option<(String, String, bool)>,
    limit: Option<u64>,
}

impl QueryState {
    fn to_sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        match &self.projection {
            None => sql.push('*'),
            Some(cols) => {
                let parts: Vec<String> = cols.iter().map(|(t, c)| format!("{t}.{c}")).collect();
                sql.push_str(&parts.join(", "));
            }
        }
        sql.push_str(" FROM ");
        sql.push_str(&self.tables.join(", "));
        let mut conds: Vec<String> = Vec::new();
        for (t1, c1, t2, c2) in &self.joins {
            conds.push(format!("{t1}.{c1} = {t2}.{c2}"));
        }
        for (t, c, op, k) in &self.predicates {
            conds.push(format!("{t}.{c} {op} {k}"));
        }
        if !conds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conds.join(" AND "));
        }
        if let Some((t, c, desc)) = &self.order_by {
            sql.push_str(&format!(" ORDER BY {t}.{c}"));
            if *desc {
                sql.push_str(" DESC");
            }
        }
        if let Some(l) = self.limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        sql
    }
}

/// The query-log generator.
pub struct Generator {
    domain: Domain,
    topics: Vec<Topic>,
    rules: Vec<PlantedRule>,
    rng: StdRng,
    clock: u64,
    next_session: u32,
}

impl Generator {
    pub fn new(domain: Domain, seed: u64) -> Self {
        Generator {
            domain,

            topics: domain.topics(),
            rules: planted_rules(domain),
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            next_session: 0,
        }
    }

    /// The domain this generator produces queries for.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Generate a full log per the config.
    pub fn generate(&mut self, cfg: &GenConfig) -> Vec<GenQuery> {
        let mut out = Vec::new();
        for _ in 0..cfg.sessions {
            let user = self.rng.gen_range(0..cfg.users);
            let len = self.rng.gen_range(2..=(cfg.session_len * 2).max(3));
            out.extend(self.generate_session(user, len));
        }
        out
    }

    /// Generate one session for `user` with approximately `len` queries.
    pub fn generate_session(&mut self, user: u32, len: u32) -> Vec<GenQuery> {
        // Inter-session gap: well above any intra-session gap.
        self.clock += self.rng.gen_range(1800u64..14_400);
        let session = self.next_session;
        self.next_session += 1;

        // Topic choice: users prefer "their" topic 70% of the time.
        let preferred = (user as usize) % self.topics.len();
        let topic_idx = if self.rng.gen_bool(0.7) {
            preferred
        } else {
            self.rng.gen_range(0..self.topics.len())
        };

        let mut state = self.base_query(topic_idx);
        let mut out = Vec::new();
        for step in 0..len {
            if step > 0 {
                self.evolve(&mut state);
                // Mostly short gaps; occasionally a long pause that sits in
                // the ambiguous zone for segmentation (planted noise).
                self.clock += if self.rng.gen_bool(0.05) {
                    self.rng.gen_range(300u64..900)
                } else {
                    self.rng.gen_range(5u64..120)
                };
            }
            out.push(GenQuery {
                sql: state.to_sql(),
                user,
                ts: self.clock,
                session,
                topic: topic_idx as u32,
            });
        }
        out
    }

    /// Build a session's starting query for a topic.
    fn base_query(&mut self, topic_idx: usize) -> QueryState {
        let topic = self.topics[topic_idx].clone();
        // Start from a prefix of the topic's tables (popularity order).
        let n = self.rng.gen_range(1..=topic.tables.len());
        let mut tables: Vec<&'static str> = topic.tables[..n].to_vec();

        // Apply planted table-level rules.
        let rules = self.rules.clone();
        for rule in &rules {
            let ante = rule.antecedent.strip_prefix("table:").unwrap_or_default();
            let cons = rule.consequent.strip_prefix("table:").unwrap_or_default();
            let has_ante = tables.iter().any(|t| t.eq_ignore_ascii_case(ante));
            let has_cons = tables.iter().any(|t| t.eq_ignore_ascii_case(cons));
            if has_ante && !has_cons {
                if let Some(ct) = topic.tables.iter().find(|t| t.eq_ignore_ascii_case(cons)) {
                    if self.rng.gen_bool(rule.probability) {
                        tables.push(ct);
                    }
                }
            }
        }

        let mut state = QueryState {
            topic_idx,
            tables,
            predicates: Vec::new(),
            joins: Vec::new(),
            projection: None,
            order_by: None,
            limit: None,
        };
        self.refresh_joins(&mut state);
        // 0-2 starting predicates.
        for _ in 0..self.rng.gen_range(0..=2u32) {
            self.add_predicate(&mut state);
        }
        // 30% projected columns, else star.
        if self.rng.gen_bool(0.3) {
            self.reroll_projection(&mut state);
        }
        state
    }

    /// Keep `state.joins` consistent with `state.tables`.
    fn refresh_joins(&mut self, state: &mut QueryState) {
        let topic = &self.topics[state.topic_idx];
        state.joins.clear();
        for (t1, c1, t2, c2) in topic.joins {
            let has = |t: &str| state.tables.iter().any(|x| x.eq_ignore_ascii_case(t));
            if has(t1) && has(t2) {
                state.joins.push((
                    t1.to_string(),
                    c1.to_string(),
                    t2.to_string(),
                    c2.to_string(),
                ));
            }
        }
    }

    fn pred_pool<'t>(&self, state: &QueryState, topic: &'t Topic) -> Vec<&'t PredTemplate> {
        topic
            .predicates
            .iter()
            .filter(|p| state.tables.iter().any(|t| t.eq_ignore_ascii_case(p.table)))
            .collect()
    }

    fn render_const(&mut self, g: &ConstGen) -> String {
        match g {
            ConstGen::FloatRange(lo, hi) => {
                let v = self.rng.gen_range(*lo..*hi);
                format!("{:.1}", v)
            }
            ConstGen::IntRange(lo, hi) => self.rng.gen_range(*lo..=*hi).to_string(),
            ConstGen::Choice(opts) => {
                format!("'{}'", opts[self.rng.gen_range(0..opts.len())])
            }
        }
    }

    fn add_predicate(&mut self, state: &mut QueryState) {
        let topic = self.topics[state.topic_idx].clone();
        let pool = self.pred_pool(state, &topic);
        if pool.is_empty() {
            return;
        }
        let tpl = pool[self.rng.gen_range(0..pool.len())].clone();
        // Avoid duplicate (table, column, op) predicates.
        if state
            .predicates
            .iter()
            .any(|(t, c, op, _)| t == tpl.table && c == tpl.column && *op == tpl.op)
        {
            return;
        }
        let k = self.render_const(&tpl.constant);
        state
            .predicates
            .push((tpl.table.to_string(), tpl.column.to_string(), tpl.op, k));
    }

    fn reroll_projection(&mut self, state: &mut QueryState) {
        let topic = self.topics[state.topic_idx].clone();
        let pool: Vec<(String, String)> = topic
            .projections
            .iter()
            .filter(|(t, _)| state.tables.iter().any(|x| x.eq_ignore_ascii_case(t)))
            .map(|(t, c)| (t.to_string(), c.to_string()))
            .collect();
        if pool.is_empty() {
            state.projection = None;
            return;
        }
        let n = self.rng.gen_range(1..=pool.len().min(3));
        let mut cols = pool;
        // Deterministic partial shuffle.
        for i in 0..n {
            let j = self.rng.gen_range(i..cols.len());
            cols.swap(i, j);
        }
        cols.truncate(n);
        state.projection = Some(cols);
    }

    /// Apply one evolution step, following Figure 2's edit grammar.
    fn evolve(&mut self, state: &mut QueryState) {
        let roll: f64 = self.rng.gen();
        if roll < 0.40 {
            // Change a predicate constant (the most common move in Fig. 2).
            if state.predicates.is_empty() {
                self.add_predicate(state);
            } else {
                let i = self.rng.gen_range(0..state.predicates.len());
                let topic = self.topics[state.topic_idx].clone();
                let (t, c, op, _) = state.predicates[i].clone();
                if let Some(tpl) = topic
                    .predicates
                    .iter()
                    .find(|p| p.table == t && p.column == c && p.op == op)
                {
                    state.predicates[i].3 = self.render_const(&tpl.constant);
                }
            }
        } else if roll < 0.62 {
            self.add_predicate(state);
        } else if roll < 0.70 {
            if state.predicates.len() > 1 {
                let i = self.rng.gen_range(0..state.predicates.len());
                state.predicates.remove(i);
            }
        } else if roll < 0.80 {
            // Add the next topic table not yet present.
            let topic = self.topics[state.topic_idx].clone();
            if let Some(next) = topic.tables.iter().find(|t| !state.tables.contains(*t)) {
                state.tables.push(next);
                self.refresh_joins(state);
            } else {
                self.add_predicate(state);
            }
        } else if roll < 0.90 {
            self.reroll_projection(state);
        } else {
            let topic = self.topics[state.topic_idx].clone();
            let pool: Vec<(String, String)> = topic
                .projections
                .iter()
                .filter(|(t, _)| state.tables.iter().any(|x| x.eq_ignore_ascii_case(t)))
                .map(|(t, c)| (t.to_string(), c.to_string()))
                .collect();
            if let Some((t, c)) = pool.first() {
                state.order_by = Some((t.clone(), c.clone(), self.rng.gen_bool(0.5)));
                state.limit = Some([10, 20, 50, 100][self.rng.gen_range(0usize..4)]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(domain: Domain, sessions: u32) -> Vec<GenQuery> {
        let mut g = Generator::new(domain, 99);
        g.generate(&GenConfig {
            users: 6,
            sessions,
            session_len: 5,
            seed: 99,
        })
    }

    #[test]
    fn queries_parse() {
        for q in gen(Domain::Lakes, 30) {
            sqlparse::parse(&q.sql)
                .unwrap_or_else(|e| panic!("generated SQL does not parse: {}\n{e}", q.sql));
        }
    }

    #[test]
    fn queries_execute_against_domain_data() {
        for domain in Domain::all() {
            let mut e = relstore::Engine::new();
            domain.setup(&mut e, 60, 5);
            let mut failures = 0;
            let queries = gen(domain, 15);
            for q in &queries {
                if e.execute(&q.sql).is_err() {
                    failures += 1;
                }
            }
            assert_eq!(failures, 0, "{domain:?} had {failures} failing queries");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<String> = gen(Domain::Lakes, 10).into_iter().map(|q| q.sql).collect();
        let b: Vec<String> = gen(Domain::Lakes, 10).into_iter().map(|q| q.sql).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_have_increasing_timestamps_and_short_gaps() {
        let qs = gen(Domain::Lakes, 20);
        for w in qs.windows(2) {
            assert!(w[0].ts <= w[1].ts, "timestamps must be monotone");
            if w[0].session == w[1].session {
                assert!(w[1].ts - w[0].ts < 1000, "intra-session gap too large");
            }
        }
    }

    #[test]
    fn consecutive_session_queries_differ_by_small_edits() {
        let qs = gen(Domain::Lakes, 20);
        let mut checked = 0;
        for w in qs.windows(2) {
            if w[0].session != w[1].session {
                continue;
            }
            let a = sqlparse::parse(&w[0].sql).unwrap();
            let b = sqlparse::parse(&w[1].sql).unwrap();
            let edits = sqlparse::diff_statements(&a, &b);
            // An evolution step makes a bounded number of edits (adding a
            // table may add join predicates too).
            assert!(
                edits.len() <= 6,
                "too many edits: {edits:?}\n{}\n{}",
                w[0].sql,
                w[1].sql
            );
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn planted_rule_manifests_in_log() {
        // The paper's §2.3 example: WaterSalinity ⇒ WaterTemp.
        let qs = gen(Domain::Lakes, 120);
        let mut with_sal = 0;
        let mut with_both = 0;
        for q in &qs {
            let sql = q.sql.to_lowercase();
            if sql.contains("watersalinity") {
                with_sal += 1;
                if sql.contains("watertemp") {
                    with_both += 1;
                }
            }
        }
        assert!(
            with_sal > 20,
            "not enough WaterSalinity queries ({with_sal})"
        );
        let conf = with_both as f64 / with_sal as f64;
        assert!(conf > 0.7, "planted rule confidence too low: {conf}");
    }

    #[test]
    fn topics_are_table_disjoint_enough_for_clustering() {
        let qs = gen(Domain::Lakes, 60);
        // Queries from different topics should usually use different tables.
        let mut same = 0;
        let mut diff = 0;
        for (i, a) in qs.iter().enumerate() {
            for b in qs.iter().skip(i + 1).take(5) {
                let ta: std::collections::HashSet<&str> = a
                    .sql
                    .split_whitespace()
                    .filter(|w| {
                        w.starts_with("Water") || w.starts_with("Lake") || w.starts_with("City")
                    })
                    .collect();
                let tb: std::collections::HashSet<&str> = b
                    .sql
                    .split_whitespace()
                    .filter(|w| {
                        w.starts_with("Water") || w.starts_with("Lake") || w.starts_with("City")
                    })
                    .collect();
                let overlap = ta.intersection(&tb).count();
                if a.topic == b.topic {
                    same += overlap;
                } else {
                    diff += overlap;
                }
            }
        }
        // Same-topic pairs share more table mentions than cross-topic pairs.
        assert!(same > diff, "same={same} diff={diff}");
    }

    #[test]
    fn figure2_session_parses_and_diffs() {
        let stmts: Vec<_> = figure2_session()
            .iter()
            .map(|s| sqlparse::parse(s).unwrap())
            .collect();
        let edits = sqlparse::diff_statements(&stmts[2], &stmts[3]);
        assert_eq!(edits.len(), 1);
        assert!(edits[0].label().contains("22"));
        assert!(edits[0].label().contains("10"));
    }
}
