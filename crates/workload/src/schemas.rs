//! Domain schemas, data generators, and topic definitions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{Engine, Value};

/// The three synthetic environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The paper's running example: limnology data around Seattle lakes.
    Lakes,
    /// SDSS-like sky survey (PhotoObj / SpecObj / Neighbors).
    SkySurvey,
    /// Industrial clickstream analysis.
    WebLog,
}

impl Domain {
    pub fn all() -> [Domain; 3] {
        [Domain::Lakes, Domain::SkySurvey, Domain::WebLog]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Domain::Lakes => "lakes",
            Domain::SkySurvey => "skysurvey",
            Domain::WebLog => "weblog",
        }
    }

    /// CREATE TABLE statements for this domain.
    pub fn ddl(&self) -> Vec<&'static str> {
        match self {
            Domain::Lakes => vec![
                "CREATE TABLE WaterSalinity (loc_x FLOAT, loc_y FLOAT, salinity FLOAT, lake TEXT, month INT)",
                "CREATE TABLE WaterTemp (loc_x FLOAT, loc_y FLOAT, temp FLOAT, lake TEXT, month INT)",
                "CREATE TABLE CityLocations (city TEXT, state TEXT, loc_x FLOAT, loc_y FLOAT, pop INT)",
                "CREATE TABLE Lakes (lake TEXT, state TEXT, area FLOAT, max_depth FLOAT)",
            ],
            Domain::SkySurvey => vec![
                "CREATE TABLE PhotoObj (objid INT, ra FLOAT, dec FLOAT, mag_u FLOAT, mag_g FLOAT, mag_r FLOAT, obj_type TEXT)",
                "CREATE TABLE SpecObj (specobjid INT, objid INT, redshift FLOAT, class TEXT)",
                "CREATE TABLE Neighbors (objid INT, neighbor_objid INT, distance FLOAT)",
            ],
            Domain::WebLog => vec![
                "CREATE TABLE PageViews (user_id INT, url TEXT, view_ts INT, referrer TEXT, dur INT)",
                "CREATE TABLE Users (user_id INT, country TEXT, signup_ts INT)",
                "CREATE TABLE Searches (user_id INT, search_query TEXT, search_ts INT, clicks INT)",
            ],
        }
    }

    /// Create the schema and populate deterministic data.
    ///
    /// `scale` is the approximate per-table row count. Value distributions
    /// are chosen so the paper's scenarios hold (e.g. Lake Washington stays
    /// below 18°C while Lake Union does not, which experiment E5 relies on).
    pub fn setup(&self, engine: &mut Engine, scale: usize, seed: u64) {
        for ddl in self.ddl() {
            engine.execute(ddl).expect("ddl");
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
        match self {
            Domain::Lakes => populate_lakes(engine, scale, &mut rng),
            Domain::SkySurvey => populate_sky(engine, scale, &mut rng),
            Domain::WebLog => populate_weblog(engine, scale, &mut rng),
        }
    }

    /// Topic definitions: related table sets with join conditions, predicate
    /// pools and projection pools. Sessions stay within one topic — this is
    /// the planted clustering ground truth.
    pub fn topics(&self) -> Vec<Topic> {
        match self {
            Domain::Lakes => lakes_topics(),
            Domain::SkySurvey => sky_topics(),
            Domain::WebLog => weblog_topics(),
        }
    }
}

/// Per-lake characteristics used by the data generator *and* referenced by
/// tests (experiment E5 exploits the fact that `temp < 18` separates Lake
/// Washington from Lake Union).
pub const LAKES: [(&str, f64, f64, f64); 5] = [
    // (name, temp_lo, temp_hi, salinity_mid)
    ("Lake Washington", 8.0, 16.0, 0.15),
    ("Lake Union", 18.5, 24.0, 0.45),
    ("Lake Sammamish", 7.0, 15.0, 0.12),
    ("Green Lake", 12.0, 19.5, 0.22),
    ("Lake Tapps", 9.0, 17.5, 0.18),
];

fn populate_lakes(engine: &mut Engine, scale: usize, rng: &mut StdRng) {
    let cities = [
        ("Seattle", "WA", 1.0, 1.0, 750_000),
        ("Bellevue", "WA", 2.2, 1.1, 150_000),
        ("Kirkland", "WA", 2.0, 2.0, 95_000),
        ("Renton", "WA", 1.4, -0.5, 105_000),
        ("Portland", "OR", -3.0, -9.0, 650_000),
        ("Olympia", "WA", -1.5, -4.0, 55_000),
    ];
    {
        let t = engine.catalog.table_mut("CityLocations").unwrap();
        for (city, state, x, y, pop) in cities {
            t.insert(vec![
                Value::from(city),
                Value::from(state),
                Value::Float(x),
                Value::Float(y),
                Value::Int(pop),
            ])
            .unwrap();
        }
    }
    {
        let t = engine.catalog.table_mut("Lakes").unwrap();
        for (i, (lake, _, _, _)) in LAKES.iter().enumerate() {
            t.insert(vec![
                Value::from(*lake),
                Value::from("WA"),
                Value::Float(500.0 + 700.0 * i as f64),
                Value::Float(20.0 + 15.0 * i as f64),
            ])
            .unwrap();
        }
    }
    for i in 0..scale {
        let (lake, tlo, thi, _) = LAKES[i % LAKES.len()];
        let loc_x = rng.gen_range(0.0..4.0);
        let loc_y = rng.gen_range(-1.0..3.0);
        let month = rng.gen_range(1..=12i64);
        let temp = rng.gen_range(tlo..thi);
        engine
            .catalog
            .table_mut("WaterTemp")
            .unwrap()
            .insert(vec![
                Value::Float(loc_x),
                Value::Float(loc_y),
                Value::Float((temp * 10.0).round() / 10.0),
                Value::from(lake),
                Value::Int(month),
            ])
            .unwrap();
    }
    for i in 0..scale {
        let (lake, _, _, smid) = LAKES[i % LAKES.len()];
        let loc_x = rng.gen_range(0.0..4.0);
        let loc_y = rng.gen_range(-1.0..3.0);
        let month = rng.gen_range(1..=12i64);
        let salinity = (smid + rng.gen_range(-0.05f64..0.05)).max(0.01);
        engine
            .catalog
            .table_mut("WaterSalinity")
            .unwrap()
            .insert(vec![
                Value::Float(loc_x),
                Value::Float(loc_y),
                Value::Float((salinity * 1000.0).round() / 1000.0),
                Value::from(lake),
                Value::Int(month),
            ])
            .unwrap();
    }
}

fn populate_sky(engine: &mut Engine, scale: usize, rng: &mut StdRng) {
    let types = ["STAR", "GALAXY", "QSO"];
    let classes = ["STAR", "GALAXY", "QSO"];
    for i in 0..scale {
        let objid = i as i64;
        let obj_type = types[rng.gen_range(0..types.len())];
        engine
            .catalog
            .table_mut("PhotoObj")
            .unwrap()
            .insert(vec![
                Value::Int(objid),
                Value::Float(rng.gen_range(0.0..360.0)),
                Value::Float(rng.gen_range(-90.0..90.0)),
                Value::Float(rng.gen_range(14.0..24.0)),
                Value::Float(rng.gen_range(14.0..24.0)),
                Value::Float(rng.gen_range(14.0..24.0)),
                Value::from(obj_type),
            ])
            .unwrap();
        // ~40% of photo objects have spectra.
        if rng.gen_bool(0.4) {
            let class = classes[rng.gen_range(0..classes.len())];
            engine
                .catalog
                .table_mut("SpecObj")
                .unwrap()
                .insert(vec![
                    Value::Int(1_000_000 + i as i64),
                    Value::Int(objid),
                    Value::Float(rng.gen_range(0.0..3.0)),
                    Value::from(class),
                ])
                .unwrap();
        }
        // A couple of neighbors each.
        for _ in 0..rng.gen_range(0..3) {
            engine
                .catalog
                .table_mut("Neighbors")
                .unwrap()
                .insert(vec![
                    Value::Int(objid),
                    Value::Int(rng.gen_range(0..scale as i64)),
                    Value::Float(rng.gen_range(0.0..30.0)),
                ])
                .unwrap();
        }
    }
}

fn populate_weblog(engine: &mut Engine, scale: usize, rng: &mut StdRng) {
    let urls = [
        "/home",
        "/search",
        "/product/1",
        "/product/2",
        "/cart",
        "/checkout",
        "/help",
        "/about",
    ];
    let countries = ["US", "DE", "JP", "BR", "IN"];
    let n_users = (scale / 10).max(5);
    for u in 0..n_users {
        engine
            .catalog
            .table_mut("Users")
            .unwrap()
            .insert(vec![
                Value::Int(u as i64),
                Value::from(countries[rng.gen_range(0..countries.len())]),
                Value::Int(rng.gen_range(1_000_000..2_000_000)),
            ])
            .unwrap();
    }
    for _ in 0..scale {
        // Zipf-ish URL popularity: earlier URLs more popular.
        let r: f64 = rng.gen::<f64>();
        let url = urls[((r * r) * urls.len() as f64) as usize % urls.len()];
        engine
            .catalog
            .table_mut("PageViews")
            .unwrap()
            .insert(vec![
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::from(url),
                Value::Int(rng.gen_range(2_000_000..3_000_000)),
                Value::from(urls[rng.gen_range(0..urls.len())]),
                Value::Int(rng.gen_range(1..600)),
            ])
            .unwrap();
    }
    let terms = ["shoes", "laptop", "camera", "phone", "desk"];
    for _ in 0..scale / 4 {
        engine
            .catalog
            .table_mut("Searches")
            .unwrap()
            .insert(vec![
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::from(terms[rng.gen_range(0..terms.len())]),
                Value::Int(rng.gen_range(2_000_000..3_000_000)),
                Value::Int(rng.gen_range(0..20)),
            ])
            .unwrap();
    }
}

// ---------------------------------------------------------------------
// Topics
// ---------------------------------------------------------------------

/// How a predicate constant is generated.
#[derive(Debug, Clone)]
pub enum ConstGen {
    FloatRange(f64, f64),
    IntRange(i64, i64),
    Choice(&'static [&'static str]),
}

/// A predicate template: `table.column op <const>` with a constant pool.
#[derive(Debug, Clone)]
pub struct PredTemplate {
    pub table: &'static str,
    pub column: &'static str,
    /// One of `<`, `<=`, `>`, `>=`, `=`.
    pub op: &'static str,
    pub constant: ConstGen,
}

/// A topical cluster of related tables: the planted clustering ground truth.
#[derive(Debug, Clone)]
pub struct Topic {
    pub name: &'static str,
    /// Tables in popularity order; a session's base query uses a prefix.
    pub tables: &'static [&'static str],
    /// Equi-join conditions between tables of this topic.
    pub joins: &'static [(&'static str, &'static str, &'static str, &'static str)],
    pub predicates: Vec<PredTemplate>,
    /// Projection pool: (table, column).
    pub projections: &'static [(&'static str, &'static str)],
}

fn lakes_topics() -> Vec<Topic> {
    vec![
        Topic {
            name: "salinity-temperature-correlation",
            tables: &["WaterSalinity", "WaterTemp", "CityLocations"],
            joins: &[
                ("WaterSalinity", "loc_x", "WaterTemp", "loc_x"),
                ("WaterSalinity", "loc_y", "WaterTemp", "loc_y"),
                ("WaterTemp", "loc_x", "CityLocations", "loc_x"),
            ],
            predicates: vec![
                PredTemplate {
                    table: "WaterTemp",
                    column: "temp",
                    op: "<",
                    constant: ConstGen::FloatRange(8.0, 24.0),
                },
                PredTemplate {
                    table: "WaterSalinity",
                    column: "salinity",
                    op: ">",
                    constant: ConstGen::FloatRange(0.05, 0.5),
                },
                PredTemplate {
                    table: "WaterTemp",
                    column: "month",
                    op: "=",
                    constant: ConstGen::IntRange(1, 12),
                },
                PredTemplate {
                    table: "WaterTemp",
                    column: "lake",
                    op: "=",
                    constant: ConstGen::Choice(&[
                        "Lake Washington",
                        "Lake Union",
                        "Lake Sammamish",
                    ]),
                },
            ],
            projections: &[
                ("WaterTemp", "temp"),
                ("WaterSalinity", "salinity"),
                ("WaterTemp", "lake"),
                ("WaterTemp", "month"),
            ],
        },
        Topic {
            name: "lake-geography",
            tables: &["Lakes", "CityLocations"],
            joins: &[("Lakes", "state", "CityLocations", "state")],
            predicates: vec![
                PredTemplate {
                    table: "Lakes",
                    column: "area",
                    op: ">",
                    constant: ConstGen::FloatRange(300.0, 3000.0),
                },
                PredTemplate {
                    table: "Lakes",
                    column: "max_depth",
                    op: ">",
                    constant: ConstGen::FloatRange(15.0, 80.0),
                },
                PredTemplate {
                    table: "CityLocations",
                    column: "pop",
                    op: ">",
                    constant: ConstGen::IntRange(50_000, 700_000),
                },
                PredTemplate {
                    table: "CityLocations",
                    column: "state",
                    op: "=",
                    constant: ConstGen::Choice(&["WA", "OR"]),
                },
            ],
            projections: &[
                ("Lakes", "lake"),
                ("Lakes", "area"),
                ("CityLocations", "city"),
                ("CityLocations", "pop"),
            ],
        },
        Topic {
            name: "seasonal-temperature",
            tables: &["WaterTemp", "Lakes"],
            joins: &[("WaterTemp", "lake", "Lakes", "lake")],
            predicates: vec![
                PredTemplate {
                    table: "WaterTemp",
                    column: "month",
                    op: ">=",
                    constant: ConstGen::IntRange(1, 9),
                },
                PredTemplate {
                    table: "WaterTemp",
                    column: "temp",
                    op: ">",
                    constant: ConstGen::FloatRange(5.0, 20.0),
                },
                PredTemplate {
                    table: "Lakes",
                    column: "max_depth",
                    op: "<",
                    constant: ConstGen::FloatRange(25.0, 90.0),
                },
            ],
            projections: &[
                ("WaterTemp", "temp"),
                ("WaterTemp", "month"),
                ("Lakes", "lake"),
            ],
        },
    ]
}

fn sky_topics() -> Vec<Topic> {
    vec![
        Topic {
            name: "photometry",
            tables: &["PhotoObj"],
            joins: &[],
            predicates: vec![
                PredTemplate {
                    table: "PhotoObj",
                    column: "mag_r",
                    op: "<",
                    constant: ConstGen::FloatRange(15.0, 23.0),
                },
                PredTemplate {
                    table: "PhotoObj",
                    column: "dec",
                    op: ">",
                    constant: ConstGen::FloatRange(-60.0, 60.0),
                },
                PredTemplate {
                    table: "PhotoObj",
                    column: "obj_type",
                    op: "=",
                    constant: ConstGen::Choice(&["STAR", "GALAXY", "QSO"]),
                },
            ],
            projections: &[
                ("PhotoObj", "objid"),
                ("PhotoObj", "ra"),
                ("PhotoObj", "dec"),
                ("PhotoObj", "mag_r"),
            ],
        },
        Topic {
            name: "spectroscopy",
            tables: &["SpecObj", "PhotoObj"],
            joins: &[("SpecObj", "objid", "PhotoObj", "objid")],
            predicates: vec![
                PredTemplate {
                    table: "SpecObj",
                    column: "redshift",
                    op: "<",
                    constant: ConstGen::FloatRange(0.1, 2.5),
                },
                PredTemplate {
                    table: "SpecObj",
                    column: "class",
                    op: "=",
                    constant: ConstGen::Choice(&["GALAXY", "QSO"]),
                },
                PredTemplate {
                    table: "PhotoObj",
                    column: "mag_g",
                    op: "<",
                    constant: ConstGen::FloatRange(16.0, 22.0),
                },
            ],
            projections: &[
                ("SpecObj", "redshift"),
                ("SpecObj", "class"),
                ("PhotoObj", "ra"),
            ],
        },
        Topic {
            name: "proximity-search",
            tables: &["Neighbors", "PhotoObj"],
            joins: &[("Neighbors", "objid", "PhotoObj", "objid")],
            predicates: vec![
                PredTemplate {
                    table: "Neighbors",
                    column: "distance",
                    op: "<",
                    constant: ConstGen::FloatRange(1.0, 20.0),
                },
                PredTemplate {
                    table: "PhotoObj",
                    column: "obj_type",
                    op: "=",
                    constant: ConstGen::Choice(&["GALAXY"]),
                },
            ],
            projections: &[
                ("Neighbors", "neighbor_objid"),
                ("Neighbors", "distance"),
                ("PhotoObj", "objid"),
            ],
        },
    ]
}

fn weblog_topics() -> Vec<Topic> {
    vec![
        Topic {
            name: "traffic-analysis",
            tables: &["PageViews"],
            joins: &[],
            predicates: vec![
                PredTemplate {
                    table: "PageViews",
                    column: "dur",
                    op: ">",
                    constant: ConstGen::IntRange(10, 400),
                },
                PredTemplate {
                    table: "PageViews",
                    column: "url",
                    op: "=",
                    constant: ConstGen::Choice(&["/home", "/search", "/cart"]),
                },
                PredTemplate {
                    table: "PageViews",
                    column: "view_ts",
                    op: ">",
                    constant: ConstGen::IntRange(2_000_000, 2_900_000),
                },
            ],
            projections: &[
                ("PageViews", "url"),
                ("PageViews", "dur"),
                ("PageViews", "user_id"),
            ],
        },
        Topic {
            name: "user-behaviour",
            tables: &["PageViews", "Users"],
            joins: &[("PageViews", "user_id", "Users", "user_id")],
            predicates: vec![
                PredTemplate {
                    table: "Users",
                    column: "country",
                    op: "=",
                    constant: ConstGen::Choice(&["US", "DE", "JP"]),
                },
                PredTemplate {
                    table: "PageViews",
                    column: "dur",
                    op: ">",
                    constant: ConstGen::IntRange(30, 500),
                },
            ],
            projections: &[
                ("Users", "country"),
                ("PageViews", "url"),
                ("PageViews", "dur"),
            ],
        },
        Topic {
            name: "search-behaviour",
            tables: &["Searches", "Users"],
            joins: &[("Searches", "user_id", "Users", "user_id")],
            predicates: vec![
                PredTemplate {
                    table: "Searches",
                    column: "clicks",
                    op: ">",
                    constant: ConstGen::IntRange(0, 15),
                },
                PredTemplate {
                    table: "Searches",
                    column: "search_query",
                    op: "=",
                    constant: ConstGen::Choice(&["shoes", "laptop", "camera"]),
                },
            ],
            projections: &[
                ("Searches", "search_query"),
                ("Searches", "clicks"),
                ("Users", "country"),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_deterministic() {
        let mut a = Engine::new();
        let mut b = Engine::new();
        Domain::Lakes.setup(&mut a, 100, 7);
        Domain::Lakes.setup(&mut b, 100, 7);
        let ra = a
            .execute("SELECT COUNT(*), AVG(temp) FROM WaterTemp")
            .unwrap();
        let rb = b
            .execute("SELECT COUNT(*), AVG(temp) FROM WaterTemp")
            .unwrap();
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn lakes_temp_separation_holds() {
        // Experiment E5's planted fact: `temp < 18` returns Lake Washington
        // rows but never Lake Union rows.
        let mut e = Engine::new();
        Domain::Lakes.setup(&mut e, 500, 42);
        let r = e
            .execute("SELECT DISTINCT lake FROM WaterTemp WHERE temp < 18")
            .unwrap();
        let lakes: Vec<String> = r.rows.iter().map(|r| r[0].render()).collect();
        assert!(lakes.contains(&"Lake Washington".to_string()));
        assert!(!lakes.contains(&"Lake Union".to_string()));
    }

    #[test]
    fn all_domains_set_up_and_query() {
        for d in Domain::all() {
            let mut e = Engine::new();
            d.setup(&mut e, 50, 1);
            for t in d.topics() {
                for table in t.tables {
                    let r = e.execute(&format!("SELECT COUNT(*) FROM {table}")).unwrap();
                    assert!(r.rows[0][0].as_i64().unwrap() > 0, "{table} empty");
                }
            }
        }
    }

    #[test]
    fn topic_joins_reference_topic_tables() {
        for d in Domain::all() {
            for t in d.topics() {
                for (t1, _, t2, _) in t.joins {
                    assert!(t.tables.contains(t1), "{t1} not in topic {}", t.name);
                    assert!(t.tables.contains(t2), "{t2} not in topic {}", t.name);
                }
                assert!(!t.predicates.is_empty());
                assert!(!t.projections.is_empty());
            }
        }
    }
}
