//! # workload — synthetic CQMS environments with planted ground truth
//!
//! The paper motivates the CQMS with shared scientific databases (SDSS, lab
//! data) and industrial log analysis. No public 2009 query logs from those
//! environments exist, so this crate generates faithful synthetic stand-ins:
//!
//! * three **domains** ([`schemas::Domain`]): `Lakes` (the paper's running
//!   limnology example: WaterSalinity / WaterTemp / CityLocations / Lakes),
//!   `SkySurvey` (an SDSS-like PhotoObj / SpecObj / Neighbors schema) and
//!   `WebLog` (clickstream analysis);
//! * a deterministic, seeded **data generator** that gives each domain
//!   realistic value distributions (per-lake temperature ranges, magnitude
//!   distributions, Zipfian URLs);
//! * a **query-log generator** ([`querygen`]) producing multi-user logs with
//!   *planted ground truth*: session boundaries, topical cluster labels, and
//!   association rules (e.g. the paper's "queries with WaterSalinity usually
//!   also use WaterTemp") — the labels that quality experiments score
//!   against;
//! * a [`trace::Trace`] bundling schema + data + query stream + truth,
//!   reproducible from a seed.

pub mod querygen;
pub mod schemas;
pub mod trace;

pub use querygen::{GenQuery, PlantedRule};
pub use schemas::Domain;
pub use trace::{Trace, TraceConfig};
