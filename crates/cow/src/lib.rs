//! Copy-on-write snapshot collections.
//!
//! The CQMS read path serves every request from an immutable
//! `ReadSnapshot` cloned out of the write path in O(pointer) time. That
//! only works if the underlying containers are **cheap to clone and cheap
//! to keep mutating after a clone**: a snapshot must be one `Arc` bump per
//! shared run of data, and the writer's next mutation must pay at most a
//! small, bounded copy — never O(store).
//!
//! Three sharing shapes cover everything the storage owns:
//!
//! * [`SnapshotVec<T>`] — a chunked vector (`Vec<Arc<Vec<T>>>`). Cloning
//!   copies one `Arc` per chunk; mutating copies one chunk (at most
//!   [`CHUNK`] elements) the first time it diverges from a snapshot.
//!   Used for dense, id-indexed state: records, signatures, session edges.
//! * [`CowMap<K, V>`] / [`CowSet<T>`] — a sealed generation behind an
//!   `Arc` plus a mutable delta head (inserts/overrides) and a dead set
//!   (removals), exactly the indexreg sealed/head split. Cloning copies
//!   the head only; [`CowMap::seal`] folds the head into a fresh sealed
//!   generation so the head stays bounded by churn, not store size.
//! * [`SegVec<T>`] — an append-only list of sealed segments
//!   (`Arc<Vec<Arc<Vec<T>>>>`) plus an `Arc`'d open tail. Cloning is two
//!   `Arc` bumps regardless of length; an append after a clone re-copies
//!   only the open tail (at most one segment). Used for posting lists,
//!   where a hot term keeps growing for the lifetime of the store.
//!
//! All three preserve ordering semantics exactly (`SnapshotVec` and
//! `SegVec` are positional; `CowMap` iteration is order-free like the
//! `HashMap` it replaces), so index code swapping them in produces
//! bit-identical results.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// Elements per [`SnapshotVec`] chunk. Small enough that the first
/// mutation of a chunk after a snapshot copies little; large enough that
/// cloning a million-element vector is ~4k pointer bumps.
pub const CHUNK: usize = 256;

/// A chunked copy-on-write vector.
///
/// Positional semantics are identical to `Vec<T>`; the difference is the
/// cost model. `clone()` is O(len / CHUNK) `Arc` bumps. `get_mut` / `push`
/// detach (copy) at most one chunk when it is shared with a snapshot.
#[derive(Debug)]
pub struct SnapshotVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T> Default for SnapshotVec<T> {
    fn default() -> Self {
        SnapshotVec {
            chunks: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Clone for SnapshotVec<T> {
    fn clone(&self) -> Self {
        SnapshotVec {
            chunks: self.chunks.clone(),
            len: self.len,
        }
    }
}

impl<T: Clone> SnapshotVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        SnapshotVec::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let chunk = self.chunks.last_mut().expect("chunk just ensured");
        Arc::make_mut(chunk).push(value);
        self.len += 1;
    }

    /// Shared reference to the element at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        self.chunks[index / CHUNK].get(index % CHUNK)
    }

    /// Mutable reference to the element at `index`, detaching its chunk
    /// from any snapshot sharing it.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            return None;
        }
        Arc::make_mut(&mut self.chunks[index / CHUNK]).get_mut(index % CHUNK)
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Iterate `(index, element)` pairs in order.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (usize, &T)> {
        self.iter().enumerate()
    }

    /// Drop every element.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }
}

impl<T: Clone> FromIterator<T> for SnapshotVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SnapshotVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Clone> IntoIterator for &'a SnapshotVec<T> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<T: Clone + PartialEq> PartialEq for SnapshotVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Clone + Eq> Eq for SnapshotVec<T> {}

/// A sealed/head copy-on-write hash map.
///
/// Reads see `head` entries first (overrides and inserts since the last
/// seal), then the sealed generation minus the `dead` keys. `clone()`
/// bumps the sealed `Arc` and copies the head + dead sets — O(churn since
/// seal), never O(total). [`CowMap::seal`] folds the deltas into a fresh
/// sealed generation; call it from a background epoch (or when
/// [`CowMap::head_len`] passes a budget) to keep clones cheap.
#[derive(Debug)]
pub struct CowMap<K, V> {
    sealed: Arc<HashMap<K, V>>,
    head: HashMap<K, V>,
    dead: HashSet<K>,
    len: usize,
}

impl<K, V> Default for CowMap<K, V> {
    fn default() -> Self {
        CowMap {
            sealed: Arc::new(HashMap::new()),
            head: HashMap::new(),
            dead: HashSet::new(),
            len: 0,
        }
    }
}

impl<K: Clone, V: Clone> Clone for CowMap<K, V> {
    fn clone(&self) -> Self {
        CowMap {
            sealed: self.sealed.clone(),
            head: self.head.clone(),
            dead: self.dead.clone(),
            len: self.len,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> CowMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        CowMap::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently in the delta head (inserts + removals since the
    /// last seal) — the per-clone copy cost.
    pub fn head_len(&self) -> usize {
        self.head.len() + self.dead.len()
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        if let Some(v) = self.head.get(key) {
            return Some(v);
        }
        if self.dead.contains(key) {
            return None;
        }
        self.sealed.get(key)
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Look up by a borrowed form of the key (e.g. `&str` for `String`
    /// keys) without allocating an owned key.
    pub fn get_by<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if let Some(v) = self.head.get(key) {
            return Some(v);
        }
        if self.dead.contains(key) {
            return None;
        }
        self.sealed.get(key)
    }

    /// Insert (or replace) an entry.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let prior_sealed = if self.dead.remove(&key) {
            None // already overridden dead: sealed value long superseded
        } else {
            self.sealed.get(&key).cloned()
        };
        let prior = self.head.insert(key, value).or(prior_sealed);
        if prior.is_none() {
            self.len += 1;
        }
        prior
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let from_head = self.head.remove(key);
        if from_head.is_some() {
            // A sealed twin (if any) must stay masked.
            if self.sealed.contains_key(key) {
                self.dead.insert(key.clone());
            }
            self.len -= 1;
            return from_head;
        }
        if self.dead.contains(key) {
            return None;
        }
        if let Some(v) = self.sealed.get(key) {
            self.dead.insert(key.clone());
            self.len -= 1;
            return Some(v.clone());
        }
        None
    }

    /// Mutable access to an entry, promoting a sealed value into the head
    /// first (one `V::clone`). Returns `None` for absent keys.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if !self.head.contains_key(key) {
            if self.dead.contains(key) {
                return None;
            }
            let promoted = self.sealed.get(key)?.clone();
            self.head.insert(key.clone(), promoted);
        }
        self.head.get_mut(key)
    }

    /// Mutable access to an entry, inserting `V::default()` when absent.
    pub fn entry_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        if self.get_mut(&key).is_none() {
            self.insert(key.clone(), V::default());
        }
        self.head.get_mut(&key).expect("entry just ensured")
    }

    /// Iterate live entries (order unspecified, like `HashMap`).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.head.iter().chain(
            self.sealed
                .iter()
                .filter(|(k, _)| !self.head.contains_key(*k) && !self.dead.contains(*k)),
        )
    }

    /// Iterate live values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterate live keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Fold the delta head into a fresh sealed generation. O(total) in
    /// key count, but each value moves by `V::clone` — cheap when `V` is
    /// itself a shared structure ([`SegVec`], `Arc`).
    pub fn seal(&mut self) {
        if self.head.is_empty() && self.dead.is_empty() {
            return;
        }
        let mut folded: HashMap<K, V> = HashMap::with_capacity(self.len);
        for (k, v) in self.sealed.iter() {
            if !self.dead.contains(k) && !self.head.contains_key(k) {
                folded.insert(k.clone(), v.clone());
            }
        }
        folded.extend(self.head.drain());
        self.dead.clear();
        self.sealed = Arc::new(folded);
    }

    /// Replace the whole map with `entries` as a fresh sealed generation.
    pub fn reseal_from(&mut self, entries: HashMap<K, V>) {
        self.len = entries.len();
        self.sealed = Arc::new(entries);
        self.head.clear();
        self.dead.clear();
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.reseal_from(HashMap::new());
    }
}

impl<K: Eq + Hash + Clone, V: Clone> FromIterator<(K, V)> for CowMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = CowMap::new();
        m.reseal_from(iter.into_iter().collect());
        m
    }
}

/// A sealed/head copy-on-write hash set: [`CowMap`] semantics without
/// values.
#[derive(Debug)]
pub struct CowSet<T> {
    inner: CowMap<T, ()>,
}

impl<T> Default for CowSet<T> {
    fn default() -> Self {
        CowSet {
            inner: CowMap::default(),
        }
    }
}

impl<T: Clone> Clone for CowSet<T> {
    fn clone(&self) -> Self {
        CowSet {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Eq + Hash + Clone> CowSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        CowSet::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Delta entries since the last seal.
    pub fn head_len(&self) -> usize {
        self.inner.head_len()
    }

    /// Add a member; `true` when newly inserted.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value, ()).is_none()
    }

    /// Remove a member; `true` when it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value).is_some()
    }

    /// Is `value` a member?
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains_key(value)
    }

    /// Iterate members (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inner.keys()
    }

    /// Fold deltas into a fresh sealed generation.
    pub fn seal(&mut self) {
        self.inner.seal();
    }

    /// Drop every member.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// Elements per sealed [`SegVec`] segment.
pub const SEG: usize = 256;

/// An append-only segmented vector with O(1) clone.
///
/// Full segments are sealed behind `Arc`s and never change; appends go to
/// an `Arc`'d open tail. `clone()` is two `Arc` bumps. The first append
/// after a clone copies the open tail (≤ [`SEG`] elements) and, once per
/// [`SEG`] appends, the segment-pointer vector — everything else is
/// amortized free.
#[derive(Debug)]
pub struct SegVec<T> {
    segs: Arc<Vec<Arc<Vec<T>>>>,
    open: Arc<Vec<T>>,
    len: usize,
}

impl<T> Default for SegVec<T> {
    fn default() -> Self {
        SegVec {
            segs: Arc::new(Vec::new()),
            open: Arc::new(Vec::new()),
            len: 0,
        }
    }
}

impl<T> Clone for SegVec<T> {
    fn clone(&self) -> Self {
        SegVec {
            segs: self.segs.clone(),
            open: self.open.clone(),
            len: self.len,
        }
    }
}

impl<T: Clone> SegVec<T> {
    /// An empty list.
    pub fn new() -> Self {
        SegVec::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        let open = Arc::make_mut(&mut self.open);
        open.push(value);
        self.len += 1;
        if open.len() >= SEG {
            let full = std::mem::take(open);
            Arc::make_mut(&mut self.segs).push(Arc::new(full));
        }
    }

    /// Iterate the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.segs
            .iter()
            .flat_map(|s| s.iter())
            .chain(self.open.iter())
    }

    /// Shared reference to the element at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        let seg = index / SEG;
        if seg < self.segs.len() {
            self.segs[seg].get(index % SEG)
        } else {
            self.open.get(index - self.segs.len() * SEG)
        }
    }

    /// The most recently appended element, if any.
    pub fn last(&self) -> Option<&T> {
        self.open
            .last()
            .or_else(|| self.segs.last().and_then(|s| s.last()))
    }

    /// Drop every element.
    pub fn clear(&mut self) {
        self.segs = Arc::new(Vec::new());
        self.open = Arc::new(Vec::new());
        self.len = 0;
    }
}

impl<T: Clone> FromIterator<T> for SegVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SegVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Clone> std::ops::Index<usize> for SegVec<T> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        self.get(index).expect("SegVec index out of bounds")
    }
}

impl<'a, T: Clone> IntoIterator for &'a SegVec<T> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<'a, K: Eq + Hash + Clone, V: Clone> IntoIterator for &'a CowMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Box<dyn Iterator<Item = (&'a K, &'a V)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_vec_positional_semantics() {
        let mut v: SnapshotVec<u32> = SnapshotVec::new();
        assert!(v.is_empty());
        for i in 0..(CHUNK as u32 * 3 + 7) {
            v.push(i * 2);
        }
        assert_eq!(v.len(), CHUNK * 3 + 7);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(CHUNK), Some(&(CHUNK as u32 * 2)));
        assert_eq!(v.last(), Some(&((CHUNK as u32 * 3 + 6) * 2)));
        assert_eq!(v.get(v.len()), None);
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected.len(), v.len());
        assert!(collected.windows(2).all(|w| w[1] == w[0] + 2));
    }

    #[test]
    fn snapshot_vec_clone_isolates_mutations() {
        let mut v: SnapshotVec<u32> = (0..1000u32).collect();
        let snap = v.clone();
        *v.get_mut(3).unwrap() = 999;
        v.push(1000);
        assert_eq!(snap.get(3), Some(&3));
        assert_eq!(snap.len(), 1000);
        assert_eq!(v.get(3), Some(&999));
        assert_eq!(v.len(), 1001);
        // Untouched chunks stay shared.
        assert!(Arc::ptr_eq(&v.chunks[1], &snap.chunks[1]));
        assert!(!Arc::ptr_eq(&v.chunks[0], &snap.chunks[0]));
    }

    #[test]
    fn cow_map_insert_remove_len() {
        let mut m: CowMap<String, u32> = CowMap::new();
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.len(), 1);
        m.insert("b".into(), 3);
        assert_eq!(m.remove(&"a".to_string()), Some(2));
        assert_eq!(m.remove(&"a".to_string()), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&"b".to_string()), Some(&3));
    }

    #[test]
    fn cow_map_seal_roundtrips_through_deltas() {
        let mut m: CowMap<u64, u32> = (0..100u64).map(|k| (k, k as u32)).collect();
        m.remove(&5);
        m.insert(7, 700);
        m.insert(200, 200);
        m.seal();
        assert_eq!(m.head_len(), 0);
        assert_eq!(m.len(), 100); // 100 - 1 removed + 1 new
        assert_eq!(m.get(&5), None);
        assert_eq!(m.get(&7), Some(&700));
        assert_eq!(m.get(&200), Some(&200));
        // Post-seal mutations still behave.
        m.remove(&7);
        assert_eq!(m.get(&7), None);
        assert_eq!(m.len(), 99);
        // Reinsert of a dead sealed key resurrects cleanly.
        m.insert(5, 55);
        assert_eq!(m.get(&5), Some(&55));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn cow_map_clone_isolates_and_shares() {
        let mut m: CowMap<u64, u32> = (0..50u64).map(|k| (k, k as u32)).collect();
        let snap = m.clone();
        m.insert(1, 100);
        m.remove(&2);
        *m.get_mut(&3).unwrap() += 1;
        m.insert(99, 99);
        assert_eq!(snap.get(&1), Some(&1));
        assert_eq!(snap.get(&2), Some(&2));
        assert_eq!(snap.get(&3), Some(&3));
        assert_eq!(snap.get(&99), None);
        assert_eq!(snap.len(), 50);
        assert_eq!(m.len(), 50); // -1 removed, +1 inserted
        assert!(Arc::ptr_eq(&m.sealed, &snap.sealed));
    }

    #[test]
    fn cow_map_iter_matches_hashmap_semantics() {
        let mut m: CowMap<u64, u32> = (0..20u64).map(|k| (k, k as u32)).collect();
        m.remove(&0);
        m.insert(5, 500);
        m.insert(50, 50);
        let mut got: Vec<(u64, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u32)> = (1..20u64)
            .map(|k| (k, if k == 5 { 500 } else { k as u32 }))
            .collect();
        want.push((50, 50));
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(m.values().count(), m.len());
    }

    #[test]
    fn cow_map_entry_or_default_counts() {
        let mut m: CowMap<u64, u32> = (0..3u64).map(|k| (k, 10)).collect();
        *m.entry_or_default(0) += 1; // promoted from sealed
        *m.entry_or_default(9) += 1; // fresh default
        assert_eq!(m.get(&0), Some(&11));
        assert_eq!(m.get(&9), Some(&1));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn cow_set_basics() {
        let mut s: CowSet<u64> = CowSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        let snap = s.clone();
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(snap.contains(&1));
        assert!(!s.contains(&1));
        s.insert(2);
        s.seal();
        assert_eq!(s.head_len(), 0);
        assert!(s.contains(&2));
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn seg_vec_appends_and_iterates_in_order() {
        let mut v: SegVec<u64> = SegVec::new();
        for i in 0..(SEG as u64 * 2 + 10) {
            v.push(i);
        }
        assert_eq!(v.len(), SEG * 2 + 10);
        let got: Vec<u64> = v.iter().copied().collect();
        let want: Vec<u64> = (0..(SEG as u64 * 2 + 10)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn seg_vec_clone_is_shared_and_isolated() {
        let mut v: SegVec<u64> = (0..(SEG as u64 + 5)).collect();
        let snap = v.clone();
        v.push(999);
        assert_eq!(snap.len(), SEG + 5);
        assert_eq!(v.len(), SEG + 6);
        assert_eq!(snap.iter().last(), Some(&(SEG as u64 + 4)));
        assert_eq!(v.iter().last(), Some(&999));
        // Sealed segments are shared by pointer.
        assert!(Arc::ptr_eq(&v.segs[0], &snap.segs[0]));
    }
}
