//! Deterministic fault injection for chaos testing.
//!
//! A shared CQMS deployment has to keep its durability and degradation
//! promises *under* failure — a log device that starts erroring, a shard
//! that suddenly answers slowly, a miner epoch that panics. This module
//! provides the failpoints the chaos suite (`tests/faults.rs`) and the CI
//! chaos-stress step drive:
//!
//! * A [`FaultPlan`] is a registry of named failpoints. Production code
//!   calls [`FaultPlan::hit`] at each point; an unarmed plan is a single
//!   relaxed atomic load, so the hooks cost nothing in normal operation.
//! * Each armed point carries a [`FaultAction`] — fail with an injected
//!   I/O error, stall for a fixed delay, or panic — and a trigger budget
//!   (fire N times, then disarm).
//! * [`FaultySink`] wraps any [`LogSink`] and consults a plan before
//!   delegating, so WAL appends/syncs/snapshot writes can be made to fail
//!   or stall without touching the sink implementations themselves.
//! * The process-wide [`global_plan`] is parsed **once** from the
//!   `CQMS_FAULTS` environment variable, letting CI arm ambient faults
//!   (e.g. a 1 ms read delay on every shard) for whole test-suite runs.
//!
//! ## Failpoint catalogue
//!
//! | point | constant | where it fires |
//! |---|---|---|
//! | `wal.append` | [`WAL_APPEND`] | [`FaultySink::append`], before delegating |
//! | `wal.sync` | [`WAL_SYNC`] | [`FaultySink::sync`], before delegating |
//! | `wal.snapshot` | [`SNAPSHOT_WRITE`] | [`FaultySink::write_snapshot`] and the miner's off-lock snapshot write |
//! | `shard.read` | [`SHARD_READ`] | service read path, before the read lock |
//! | `miner.epoch` | [`MINER_EPOCH`] | background-miner loop, before each epoch |
//! | `repair.attempt` | [`REPAIR_ATTEMPT`] | repair supervisor, before each shard recovery attempt |
//! | `wal.quarantine` | [`WAL_QUARANTINE`] | `open_dir`, before moving a corrupt file into `quarantine/` |
//!
//! ## `CQMS_FAULTS` syntax
//!
//! Comma-separated `point=action` entries; an action is `fail`, `panic`,
//! or `delay:<n>ms`, optionally suffixed with `:<times>` (default:
//! unlimited). Examples:
//!
//! ```text
//! CQMS_FAULTS="shard.read=delay:1ms"          # every read stalls 1 ms
//! CQMS_FAULTS="wal.sync=fail:2,miner.epoch=panic:1"
//! ```

use crate::wal::LogSink;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Failpoint: WAL frame append through a [`FaultySink`].
pub const WAL_APPEND: &str = "wal.append";
/// Failpoint: WAL durability sync through a [`FaultySink`].
pub const WAL_SYNC: &str = "wal.sync";
/// Failpoint: snapshot file write (sink-level and the miner's off-lock path).
pub const SNAPSHOT_WRITE: &str = "wal.snapshot";
/// Failpoint: service read path, hit before the shard read lock is taken.
pub const SHARD_READ: &str = "shard.read";
/// Failpoint: background miner, hit at the top of every epoch attempt.
pub const MINER_EPOCH: &str = "miner.epoch";
/// Failpoint: repair supervisor, hit before each shard recovery attempt.
pub const REPAIR_ATTEMPT: &str = "repair.attempt";
/// Failpoint: `wal::open_dir`, hit before a corrupt segment or snapshot
/// is moved into `quarantine/`.
pub const WAL_QUARANTINE: &str = "wal.quarantine";

/// What an armed failpoint does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected `io::Error` from the failpoint.
    Fail,
    /// Sleep this long, then proceed normally.
    Delay(Duration),
    /// Panic (the miner loop must survive this; see `tests/faults.rs`).
    Panic,
}

/// One armed failpoint: an action and how many more times it fires.
#[derive(Debug, Clone, Copy)]
struct FaultSpec {
    action: FaultAction,
    /// Remaining trigger budget; `u64::MAX` means unlimited.
    remaining: u64,
}

/// A registry of named failpoints shared by everything that injects or
/// checks faults. Cloned by `Arc`; an unarmed plan costs one relaxed
/// atomic load per [`FaultPlan::hit`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fast path: false ⇒ no failpoint is armed, skip the lock entirely.
    armed: AtomicBool,
    /// Armed failpoints by name.
    specs: Mutex<HashMap<String, FaultSpec>>,
    /// Total fires per point (survives disarm, for test assertions).
    fired: Mutex<HashMap<String, u64>>,
}

impl FaultPlan {
    /// A plan with nothing armed.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arm `point` with `action` for `times` triggers (`None` = unlimited).
    pub fn arm(&self, point: &str, action: FaultAction, times: Option<u64>) {
        let mut specs = self.specs.lock();
        specs.insert(
            point.to_string(),
            FaultSpec {
                action,
                remaining: times.unwrap_or(u64::MAX),
            },
        );
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm `point` (no-op when not armed).
    pub fn disarm(&self, point: &str) {
        let mut specs = self.specs.lock();
        specs.remove(point);
        if specs.is_empty() {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// Disarm every failpoint.
    pub fn disarm_all(&self) {
        self.specs.lock().clear();
        self.armed.store(false, Ordering::Release);
    }

    /// Is any failpoint currently armed?
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// How many times `point` has fired since the plan was created.
    pub fn fired(&self, point: &str) -> u64 {
        *self.fired.lock().get(point).unwrap_or(&0)
    }

    /// Evaluate failpoint `point`: returns the injected error when armed
    /// with [`FaultAction::Fail`], sleeps first when armed with
    /// [`FaultAction::Delay`], panics when armed with
    /// [`FaultAction::Panic`], and is free when unarmed.
    pub fn hit(&self, point: &str) -> io::Result<()> {
        if !self.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let action = {
            let mut specs = self.specs.lock();
            let Some(spec) = specs.get_mut(point) else {
                return Ok(());
            };
            let action = spec.action;
            if spec.remaining != u64::MAX {
                spec.remaining -= 1;
                if spec.remaining == 0 {
                    specs.remove(point);
                    if specs.is_empty() {
                        self.armed.store(false, Ordering::Release);
                    }
                }
            }
            *self.fired.lock().entry(point.to_string()).or_insert(0) += 1;
            action
        };
        match action {
            FaultAction::Fail => Err(io::Error::other(format!("injected fault at {point}"))),
            FaultAction::Delay(d) => {
                // Sleep outside the spec lock so a delayed point never
                // blocks arming/disarming or other points.
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::Panic => panic!("injected panic at {point}"),
        }
    }

    /// Parse a plan from `CQMS_FAULTS`-style text (see module docs).
    /// Malformed entries are ignored rather than failing startup.
    pub fn parse(spec: &str) -> Self {
        let plan = FaultPlan::new();
        for entry in spec.split([',', ';']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((point, action)) = entry.split_once('=') else {
                continue;
            };
            let mut parts = action.split(':');
            let kind = parts.next().unwrap_or("");
            let (action, times) = match kind {
                "fail" => (FaultAction::Fail, parts.next()),
                "panic" => (FaultAction::Panic, parts.next()),
                "delay" => {
                    let Some(ms) = parts
                        .next()
                        .and_then(|d| d.trim_end_matches("ms").parse::<u64>().ok())
                    else {
                        continue;
                    };
                    (FaultAction::Delay(Duration::from_millis(ms)), parts.next())
                }
                _ => continue,
            };
            let times = times.and_then(|t| t.parse::<u64>().ok());
            plan.arm(point.trim(), action, times);
        }
        plan
    }
}

/// The process-wide plan, parsed once from the `CQMS_FAULTS` environment
/// variable (an unset/empty variable yields a permanently inert plan).
/// Services built without an explicit plan consult this one, which is how
/// CI arms ambient faults for a whole suite run.
pub fn global_plan() -> Arc<FaultPlan> {
    static GLOBAL: OnceLock<Arc<FaultPlan>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let spec = std::env::var("CQMS_FAULTS").unwrap_or_default();
            Arc::new(FaultPlan::parse(&spec))
        })
        .clone()
}

/// A [`LogSink`] decorator that consults a [`FaultPlan`] before delegating
/// the failure-relevant operations (append, sync, snapshot write). Rotate,
/// prune and directory queries pass straight through — they are not
/// durability acknowledgement points.
pub struct FaultySink {
    inner: Box<dyn LogSink>,
    plan: Arc<FaultPlan>,
}

impl FaultySink {
    /// Wrap `inner`, injecting faults from `plan`.
    pub fn new(inner: Box<dyn LogSink>, plan: Arc<FaultPlan>) -> Self {
        FaultySink { inner, plan }
    }
}

impl LogSink for FaultySink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.plan.hit(WAL_APPEND)?;
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.plan.hit(WAL_SYNC)?;
        self.inner.sync()
    }

    fn rotate(&mut self, next_lsn: u64) -> io::Result<()> {
        self.inner.rotate(next_lsn)
    }

    fn prune(&mut self, horizon: u64) -> io::Result<()> {
        self.inner.prune(horizon)
    }

    fn write_snapshot(&mut self, horizon: u64, body: &[u8]) -> io::Result<()> {
        self.plan.hit(SNAPSHOT_WRITE)?;
        self.inner.write_snapshot(horizon, body)
    }

    fn snapshot_dir(&self) -> Option<std::path::PathBuf> {
        self.inner.snapshot_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_is_free_and_ok() {
        let plan = FaultPlan::new();
        assert!(plan.hit(WAL_SYNC).is_ok());
        assert_eq!(plan.fired(WAL_SYNC), 0);
    }

    #[test]
    fn fail_budget_counts_down_and_disarms() {
        let plan = FaultPlan::new();
        plan.arm(WAL_SYNC, FaultAction::Fail, Some(2));
        assert!(plan.hit(WAL_SYNC).is_err());
        assert!(plan.hit(WAL_SYNC).is_err());
        assert!(plan.hit(WAL_SYNC).is_ok(), "budget exhausted → disarmed");
        assert_eq!(plan.fired(WAL_SYNC), 2);
        // Fully disarmed again → fast path.
        assert!(!plan.armed.load(Ordering::Acquire));
    }

    #[test]
    fn delay_sleeps_then_succeeds() {
        let plan = FaultPlan::new();
        plan.arm(
            SHARD_READ,
            FaultAction::Delay(Duration::from_millis(15)),
            None,
        );
        let t0 = std::time::Instant::now();
        assert!(plan.hit(SHARD_READ).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        plan.disarm(SHARD_READ);
        assert!(plan.hit(SHARD_READ).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected panic")]
    fn panic_action_panics() {
        let plan = FaultPlan::new();
        plan.arm(MINER_EPOCH, FaultAction::Panic, Some(1));
        let _ = plan.hit(MINER_EPOCH);
    }

    #[test]
    fn parses_env_syntax() {
        let plan = FaultPlan::parse("wal.sync=fail:2, shard.read=delay:5ms ,miner.epoch=panic:1");
        {
            let specs = plan.specs.lock();
            assert_eq!(specs["wal.sync"].remaining, 2);
            assert_eq!(specs["wal.sync"].action, FaultAction::Fail);
            assert_eq!(
                specs["shard.read"].action,
                FaultAction::Delay(Duration::from_millis(5))
            );
            assert_eq!(specs["shard.read"].remaining, u64::MAX);
            assert_eq!(specs["miner.epoch"].action, FaultAction::Panic);
        }
        // Garbage entries are skipped, not fatal.
        let junk = FaultPlan::parse("nonsense,point=explode,x=delay:zzz");
        assert!(!junk.armed.load(Ordering::Acquire));
    }

    #[test]
    fn faulty_sink_injects_into_wal_writer() {
        use crate::model::QueryId;
        use crate::wal::{MemSink, WalOp, WalWriter};
        let (sink, log) = MemSink::new();
        let plan = Arc::new(FaultPlan::new());
        let mut w = WalWriter::new(Box::new(FaultySink::new(Box::new(sink), plan.clone())), 1);
        w.log(&WalOp::Tombstone { id: QueryId(1) });
        assert!(w.flush().is_ok());
        plan.arm(WAL_SYNC, FaultAction::Fail, Some(1));
        w.log(&WalOp::Tombstone { id: QueryId(2) });
        assert!(w.flush().is_err(), "injected sync failure surfaces");
        // After the budget is spent the next flush succeeds and both ops
        // become durable (a failed flush loses nothing).
        assert!(w.flush().is_ok());
        let (_, segments) = log.lock().durable_state();
        let synced: usize = segments.iter().map(|(_, b)| b.len()).sum();
        assert!(synced > 0, "ops reached the durable log after recovery");
    }
}
