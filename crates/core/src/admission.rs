//! Admission control: bounded ingest queues and per-user rate limiting.
//!
//! The paper's CQMS is a *shared* service for a whole community of
//! analysts, so it must degrade predictably when that community
//! misbehaves: an ingest burst must not queue unboundedly behind one
//! shard's write lock, and one noisy user must not starve everyone else.
//! This module is the gate in front of the write path:
//!
//! * **Bounded in-flight depth** — each shard's [`AdmissionGate`] admits
//!   at most [`CqmsConfig::ingest_queue_depth`](crate::config::CqmsConfig)
//!   concurrent write requests (admitted = holding a [`WritePermit`],
//!   i.e. waiting for or holding the write lock). Request number
//!   depth+1 is **shed immediately** with
//!   [`CqmsError::Overloaded`] and a retry hint instead of joining an
//!   unbounded queue — the caller gets backpressure in O(1), not a stall.
//! * **Per-user token buckets** — each user refills at
//!   `user_rate_limit` requests/second up to a burst of
//!   `user_rate_burst`. A drained bucket rejects with a precise
//!   `retry_after_ms` (the time until one token accrues) while other
//!   users' buckets are untouched.
//!
//! Shedding order is bucket first, depth second: a rate-limited user is
//! rejected without consuming queue capacity from well-behaved ones.
//!
//! Only the *ingest* write path is gated (`run_query`, `run_query_at`,
//! `ingest_batch`) — it is the high-volume path the paper's workload
//! hammers. Administrative writes (annotations, ACL changes, deletes,
//! user registration) and the miner are deliberately ungated: they are
//! low-volume, often part of recovery/cleanup, and shedding them would
//! hurt more than the capacity they cost.
//!
//! The module also hosts [`retry_with_backoff`], the capped-exponential
//! retry helper the write path uses for transient WAL/snapshot faults.

use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::model::UserId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Retry hint attached to depth-shed requests: long enough for a typical
/// batch to drain the lock, short enough that a client retry loop stays
/// responsive.
const GATE_RETRY_MS: u64 = 25;

/// Counters exported by [`AdmissionGate::stats`] (cheap relaxed reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted through the gate.
    pub admitted: u64,
    /// Requests shed because the gate was at depth.
    pub shed_overload: u64,
    /// Requests shed by a drained per-user token bucket.
    pub shed_rate_limited: u64,
    /// Current in-flight admitted requests.
    pub in_flight: usize,
    /// High-water mark of concurrent admitted requests.
    pub max_in_flight: usize,
}

/// One user's token bucket (times in ms since the gate's creation).
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_ms: u64,
}

/// The per-shard admission gate: bounded in-flight depth plus per-user
/// token buckets. See the module docs for semantics.
#[derive(Debug)]
pub struct AdmissionGate {
    /// Max concurrent admitted write requests; 0 disables the depth gate.
    depth: usize,
    /// Tokens per second per user; 0.0 disables rate limiting.
    rate: f64,
    /// Bucket capacity (burst allowance).
    burst: f64,
    start: Instant,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    admitted: AtomicU64,
    shed_overload: AtomicU64,
    shed_rate_limited: AtomicU64,
    buckets: Mutex<HashMap<u32, TokenBucket>>,
}

impl AdmissionGate {
    /// A gate with an explicit depth and rate (mostly for tests; services
    /// build theirs with [`AdmissionGate::from_config`]).
    pub fn new(depth: usize, rate: f64, burst: f64) -> Self {
        AdmissionGate {
            depth,
            rate,
            burst: if burst <= 0.0 { 1.0 } else { burst },
            start: Instant::now(),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_rate_limited: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The gate a [`CqmsConfig`] describes.
    pub fn from_config(config: &CqmsConfig) -> Self {
        AdmissionGate::new(
            config.ingest_queue_depth,
            config.user_rate_limit,
            config.user_rate_burst,
        )
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_rate_limited: self.shed_rate_limited.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
        }
    }

    /// Milliseconds since the gate was created (the bucket clock).
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Check (and charge) `user`'s token bucket at the wall clock.
    pub fn check_user(&self, user: UserId) -> Result<(), CqmsError> {
        self.check_user_at(user, self.now_ms())
    }

    /// Deterministic variant of [`AdmissionGate::check_user`]: the bucket
    /// clock is the caller's `now_ms`. Lets tests prove refill behaviour
    /// without sleeping.
    pub fn check_user_at(&self, user: UserId, now_ms: u64) -> Result<(), CqmsError> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(user.0).or_insert(TokenBucket {
            tokens: self.burst,
            last_ms: now_ms,
        });
        let elapsed_ms = now_ms.saturating_sub(bucket.last_ms);
        bucket.tokens = (bucket.tokens + elapsed_ms as f64 / 1000.0 * self.rate).min(self.burst);
        bucket.last_ms = now_ms;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            // Time until one full token accrues at `rate` tokens/sec.
            let retry_after_ms = (((1.0 - bucket.tokens) / self.rate) * 1000.0).ceil() as u64;
            self.shed_rate_limited.fetch_add(1, Ordering::Relaxed);
            Err(CqmsError::Overloaded {
                retry_after_ms: retry_after_ms.max(1),
            })
        }
    }

    /// Claim an in-flight slot, shedding with [`CqmsError::Overloaded`]
    /// when the gate is at depth. The slot is released when the returned
    /// [`WritePermit`] drops.
    pub fn admit(&self) -> Result<WritePermit<'_>, CqmsError> {
        if self.depth > 0 {
            let claimed = self
                .in_flight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    (cur < self.depth).then_some(cur + 1)
                });
            if claimed.is_err() {
                self.shed_overload.fetch_add(1, Ordering::Relaxed);
                return Err(CqmsError::Overloaded {
                    retry_after_ms: GATE_RETRY_MS,
                });
            }
        } else {
            self.in_flight.fetch_add(1, Ordering::AcqRel);
        }
        let now = self.in_flight.load(Ordering::Acquire);
        self.max_in_flight.fetch_max(now, Ordering::AcqRel);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(WritePermit { gate: self })
    }

    /// Bucket check then depth gate — the full ingest admission sequence.
    pub fn admit_user(&self, user: UserId) -> Result<WritePermit<'_>, CqmsError> {
        self.check_user(user)?;
        self.admit()
    }
}

/// RAII proof of admission: holds one in-flight slot of its gate until
/// dropped (i.e. for the whole lock-wait + critical section).
#[derive(Debug)]
pub struct WritePermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for WritePermit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run `op` up to `attempts` times, sleeping `base_ms << try` (capped at
/// `cap_ms`) between failures. Returns the final result and how many
/// retries (not tries) were spent — the write path surfaces that count in
/// [`crate::server::MinerReport`] so transient-but-recovered faults stay
/// observable.
pub fn retry_with_backoff<T, E>(
    attempts: u32,
    base_ms: u64,
    cap_ms: u64,
    mut op: impl FnMut() -> Result<T, E>,
) -> (Result<T, E>, u32) {
    let attempts = attempts.max(1);
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) => {
                if retries + 1 >= attempts {
                    return (Err(e), retries);
                }
                let delay = base_ms
                    .checked_shl(retries.min(16))
                    .unwrap_or(u64::MAX)
                    .min(cap_ms)
                    .max(1);
                std::thread::sleep(Duration::from_millis(delay));
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_gate_sheds_at_capacity_and_releases_on_drop() {
        let gate = AdmissionGate::new(2, 0.0, 1.0);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        let shed = gate.admit();
        assert!(
            matches!(shed, Err(CqmsError::Overloaded { retry_after_ms }) if retry_after_ms > 0)
        );
        drop(p1);
        let p3 = gate.admit().expect("slot freed by drop");
        drop(p2);
        drop(p3);
        let s = gate.stats();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_overload, 1);
        assert_eq!(s.max_in_flight, 2);
    }

    #[test]
    fn zero_depth_disables_the_gate() {
        let gate = AdmissionGate::new(0, 0.0, 1.0);
        let permits: Vec<_> = (0..64).map(|_| gate.admit().unwrap()).collect();
        assert_eq!(gate.stats().in_flight, 64);
        drop(permits);
        assert_eq!(gate.stats().in_flight, 0);
    }

    #[test]
    fn token_bucket_drains_refills_and_isolates_users() {
        // 2 tokens/sec, burst 2; deterministic clock.
        let gate = AdmissionGate::new(0, 2.0, 2.0);
        let alice = UserId(1);
        let bob = UserId(2);
        assert!(gate.check_user_at(alice, 0).is_ok());
        assert!(gate.check_user_at(alice, 0).is_ok());
        let shed = gate.check_user_at(alice, 0);
        let Err(CqmsError::Overloaded { retry_after_ms }) = shed else {
            panic!("drained bucket must shed, got {shed:?}");
        };
        // One token accrues in 500 ms at 2/sec.
        assert_eq!(retry_after_ms, 500);
        // Bob's bucket is untouched by Alice's starvation.
        assert!(gate.check_user_at(bob, 0).is_ok());
        // After the hinted wait Alice has exactly one token again.
        assert!(gate.check_user_at(alice, 500).is_ok());
        assert!(gate.check_user_at(alice, 500).is_err());
        // Refill is capped at the burst.
        assert!(gate.check_user_at(alice, 1_000_000).is_ok());
        assert!(gate.check_user_at(alice, 1_000_000).is_ok());
        assert!(gate.check_user_at(alice, 1_000_000).is_err());
        assert_eq!(gate.stats().shed_rate_limited, 3);
    }

    #[test]
    fn zero_rate_disables_rate_limiting() {
        let gate = AdmissionGate::new(0, 0.0, 1.0);
        for _ in 0..100 {
            assert!(gate.check_user_at(UserId(7), 0).is_ok());
        }
    }

    #[test]
    fn concurrent_admission_never_exceeds_depth() {
        let gate = std::sync::Arc::new(AdmissionGate::new(3, 0.0, 1.0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Ok(_permit) = gate.admit() {
                            std::hint::black_box(());
                        }
                    }
                });
            }
        });
        let s = gate.stats();
        assert_eq!(s.in_flight, 0);
        assert!(s.max_in_flight <= 3, "depth bound violated: {s:?}");
    }

    #[test]
    fn backoff_retries_then_surfaces_the_last_error() {
        let mut calls = 0;
        let (res, retries) = retry_with_backoff(3, 1, 4, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res, Ok(3));
        assert_eq!(retries, 2);

        let mut calls = 0;
        let (res, retries): (Result<(), _>, _) = retry_with_backoff(3, 1, 4, || {
            calls += 1;
            Err::<(), _>("still down")
        });
        assert_eq!(res, Err("still down"));
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);
    }
}
