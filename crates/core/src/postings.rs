//! Compressed feature-posting lists with lazy compaction.
//!
//! The inverted feature index used to hold raw sorted `Vec<u64>` qids and
//! eagerly removed an id from every list the moment its record stopped
//! being live. At millions of records the hot lists (popular tables) make
//! both choices expensive: 8 bytes per posting, and O(list) shifting per
//! maintenance transition per feature.
//!
//! A [`PostingList`] instead:
//!
//! * **delta-encodes** long lists — ids are dense and appended in
//!   ascending order, so lists past `DELTA_THRESHOLD` become a `u64`
//!   head plus `u32` gaps (4 bytes per posting, sequential decode);
//! * **defers removal** — a record going non-live only bumps the list's
//!   `dead` counter; the stale id stays until the dead fraction of the
//!   list passes the compact-dead fraction (1/4), when the storage rebuilds the
//!   list from currently-live members in one pass. Consumers already
//!   filter candidates by liveness, so stale ids are harmless: the kNN
//!   exactness argument only needs every *live* record outside the
//!   candidate union to be feature-disjoint from the probe, and live
//!   records are always present in their lists.
//!
//! Candidate generation unions the probe's lists through a galloping
//! multi-way merge ([`union_cursors`]): cursors over plain lists skip past
//! the last emitted id with exponential search, delta cursors decode
//! forward — no intermediate allocation, no global sort.

/// Lists at least this long switch to delta encoding.
const DELTA_THRESHOLD: usize = 64;

/// Compact a list once more than a quarter of its entries are stale.
const COMPACT_DEAD_FRACTION_DEN: u32 = 4;

#[derive(Debug, Clone, PartialEq)]
enum Encoding {
    /// Sorted ids, uncompressed.
    Plain(Vec<u64>),
    /// Sorted ids as `first` plus strictly-positive `u32` gaps.
    Delta { first: u64, gaps: Vec<u32> },
}

/// One feature's posting list: sorted, deduplicated qids (possibly stale —
/// see the module docs) plus the stale-entry counter.
#[derive(Debug, Clone, PartialEq)]
pub struct PostingList {
    enc: Encoding,
    /// Largest stored id (undefined when empty).
    last: u64,
    /// Entries whose record is currently non-live.
    dead: u32,
}

impl Default for PostingList {
    fn default() -> Self {
        PostingList {
            enc: Encoding::Plain(Vec::new()),
            last: 0,
            dead: 0,
        }
    }
}

impl PostingList {
    /// Entries in the list (stale included).
    pub fn len(&self) -> usize {
        match &self.enc {
            Encoding::Plain(v) => v.len(),
            Encoding::Delta { gaps, .. } => 1 + gaps.len(),
        }
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        matches!(&self.enc, Encoding::Plain(v) if v.is_empty())
    }

    /// Number of entries currently known stale.
    pub fn dead(&self) -> u32 {
        self.dead
    }

    /// Append `qid`, which must exceed every stored id (the storage
    /// assigns dense ascending ids at insert).
    pub fn append(&mut self, qid: u64) {
        debug_assert!(self.is_empty() || qid > self.last);
        match &mut self.enc {
            Encoding::Plain(v) => {
                v.push(qid);
                if v.len() >= DELTA_THRESHOLD {
                    self.enc = encode(std::mem::take(v));
                }
            }
            Encoding::Delta { gaps, .. } => match u32::try_from(qid - self.last) {
                Ok(gap) => gaps.push(gap),
                Err(_) => {
                    // Gap overflow (never happens with dense ids): fall
                    // back to plain.
                    let mut ids = self.ids();
                    ids.push(qid);
                    self.enc = Encoding::Plain(ids);
                }
            },
        }
        self.last = qid;
    }

    /// Insert `qid` at its sorted position. Returns `false` when already
    /// present. Mid-list inserts on delta lists decode and re-encode —
    /// only maintenance revival paths take this route.
    pub fn insert(&mut self, qid: u64) -> bool {
        if self.is_empty() || qid > self.last {
            self.append(qid);
            return true;
        }
        let mut ids = self.decode_plain();
        match ids.binary_search(&qid) {
            Ok(_) => {
                self.restore(ids);
                false
            }
            Err(pos) => {
                ids.insert(pos, qid);
                self.restore(ids);
                true
            }
        }
    }

    /// Remove `qid` if present (reindex path — the record's feature set
    /// changed, so staleness bookkeeping does not apply).
    pub fn remove(&mut self, qid: u64) -> bool {
        if self.is_empty() {
            return false;
        }
        let mut ids = self.decode_plain();
        match ids.binary_search(&qid) {
            Ok(pos) => {
                ids.remove(pos);
                self.restore(ids);
                true
            }
            Err(_) => {
                self.restore(ids);
                false
            }
        }
    }

    /// Does the list contain `qid` (stale entries included)?
    pub fn contains(&self, qid: u64) -> bool {
        match &self.enc {
            Encoding::Plain(v) => v.binary_search(&qid).is_ok(),
            Encoding::Delta { first, gaps } => {
                if qid < *first || qid > self.last {
                    return false;
                }
                let mut cur = *first;
                if cur == qid {
                    return true;
                }
                for &g in gaps {
                    cur += u64::from(g);
                    if cur >= qid {
                        return cur == qid;
                    }
                }
                false
            }
        }
    }

    /// Mark one present entry stale (its record went non-live).
    pub fn mark_dead(&mut self) {
        self.dead += 1;
    }

    /// A stale entry's record came back to life (maintenance repair).
    pub fn mark_alive(&mut self) {
        self.dead = self.dead.saturating_sub(1);
    }

    /// Should the storage compact this list now?
    pub fn needs_compaction(&self) -> bool {
        u64::from(self.dead) * u64::from(COMPACT_DEAD_FRACTION_DEN) > self.len() as u64
    }

    /// Rebuild keeping only ids satisfying `keep`; resets the stale count.
    pub fn retain(&mut self, keep: impl Fn(u64) -> bool) {
        let ids: Vec<u64> = self.iter().filter(|&q| keep(q)).collect();
        self.restore(ids);
        self.dead = 0;
    }

    /// Decoded ids (stale included), sorted.
    pub fn ids(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Iterate the ids in sorted order (stale included).
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter {
            list: self,
            pos: 0,
            cur: match &self.enc {
                Encoding::Plain(_) => 0,
                Encoding::Delta { first, .. } => *first,
            },
        }
    }

    /// A merge cursor positioned at the first id.
    pub fn cursor(&self) -> PostingCursor<'_> {
        match &self.enc {
            Encoding::Plain(v) => PostingCursor::Plain { ids: v, pos: 0 },
            Encoding::Delta { first, gaps } => PostingCursor::Delta {
                gaps,
                pos: 0,
                cur: Some(*first),
            },
        }
    }

    fn decode_plain(&mut self) -> Vec<u64> {
        match std::mem::replace(&mut self.enc, Encoding::Plain(Vec::new())) {
            Encoding::Plain(v) => v,
            Encoding::Delta { first, gaps } => {
                let mut ids = Vec::with_capacity(1 + gaps.len());
                let mut cur = first;
                ids.push(cur);
                for g in gaps {
                    cur += u64::from(g);
                    ids.push(cur);
                }
                ids
            }
        }
    }

    fn restore(&mut self, ids: Vec<u64>) {
        self.last = ids.last().copied().unwrap_or(0);
        self.enc = if ids.len() >= DELTA_THRESHOLD {
            encode(ids)
        } else {
            Encoding::Plain(ids)
        };
    }
}

fn encode(ids: Vec<u64>) -> Encoding {
    debug_assert!(!ids.is_empty());
    let first = ids[0];
    let mut gaps = Vec::with_capacity(ids.len() - 1);
    for w in ids.windows(2) {
        match u32::try_from(w[1] - w[0]) {
            Ok(g) => gaps.push(g),
            Err(_) => return Encoding::Plain(ids),
        }
    }
    Encoding::Delta { first, gaps }
}

/// Sequential iterator over a list's decoded ids.
pub struct PostingIter<'a> {
    list: &'a PostingList,
    pos: usize,
    cur: u64,
}

impl Iterator for PostingIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match &self.list.enc {
            Encoding::Plain(v) => {
                let out = v.get(self.pos).copied();
                self.pos += 1;
                out
            }
            Encoding::Delta { gaps, .. } => {
                if self.pos == 0 {
                    self.pos = 1;
                    Some(self.cur)
                } else if let Some(&g) = gaps.get(self.pos - 1) {
                    self.pos += 1;
                    self.cur += u64::from(g);
                    Some(self.cur)
                } else {
                    None
                }
            }
        }
    }
}

/// One input to the multi-way union merge.
pub enum PostingCursor<'a> {
    /// Cursor over a plain sorted-id list.
    Plain {
        /// The remaining ids.
        ids: &'a [u64],
        /// Position of the next id.
        pos: usize,
    },
    /// Cursor over a delta-encoded list.
    Delta {
        /// The gap stream after the head.
        gaps: &'a [u32],
        /// Position of the next gap.
        pos: usize,
        /// The decoded value the cursor currently sits on.
        cur: Option<u64>,
    },
}

impl PostingCursor<'_> {
    fn current(&self) -> Option<u64> {
        match self {
            PostingCursor::Plain { ids, pos } => ids.get(*pos).copied(),
            PostingCursor::Delta { cur, .. } => *cur,
        }
    }

    /// Advance past every id ≤ `v`. Plain cursors gallop (exponential
    /// probe, then binary search within the bracket); delta cursors decode
    /// forward.
    fn advance_past(&mut self, v: u64) {
        match self {
            PostingCursor::Plain { ids, pos } => {
                if *pos >= ids.len() || ids[*pos] > v {
                    return;
                }
                let mut step = 1usize;
                while *pos + step < ids.len() && ids[*pos + step] <= v {
                    step <<= 1;
                }
                let lo = *pos + (step >> 1);
                let hi = (*pos + step + 1).min(ids.len());
                *pos = lo + ids[lo..hi].partition_point(|&x| x <= v);
            }
            PostingCursor::Delta { gaps, pos, cur } => {
                while let Some(c) = *cur {
                    if c > v {
                        return;
                    }
                    *cur = gaps.get(*pos).map(|&g| c + u64::from(g));
                    *pos += 1;
                }
            }
        }
    }
}

/// Sorted, deduplicated union of all cursor streams — the kNN candidate
/// set. Each round emits the minimum current id and gallops every cursor
/// past it, so shared runs cost one comparison per cursor, not one per
/// element.
pub fn union_cursors(mut cursors: Vec<PostingCursor<'_>>) -> Vec<u64> {
    let mut out = Vec::new();
    cursors.retain(|c| c.current().is_some());
    while !cursors.is_empty() {
        let min = cursors
            .iter()
            .filter_map(PostingCursor::current)
            .min()
            .expect("non-empty cursors");
        out.push(min);
        cursors.retain_mut(|c| {
            c.advance_past(min);
            c.current().is_some()
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(ids: &[u64]) -> PostingList {
        let mut l = PostingList::default();
        for &q in ids {
            l.append(q);
        }
        l
    }

    #[test]
    fn append_roundtrips_across_encodings() {
        // Short stays plain; long flips to delta; both decode identically.
        let short: Vec<u64> = (0..10).map(|i| i * 3).collect();
        assert_eq!(list_of(&short).ids(), short);
        let long: Vec<u64> = (0..500).map(|i| i * 7 + 1).collect();
        let l = list_of(&long);
        assert!(matches!(l.enc, Encoding::Delta { .. }));
        assert_eq!(l.ids(), long);
        assert_eq!(l.len(), 500);
        for &q in &long {
            assert!(l.contains(q));
        }
        assert!(!l.contains(2));
        assert!(!l.contains(9999));
    }

    #[test]
    fn insert_and_remove_anywhere() {
        let mut l = list_of(&(0..200).map(|i| i * 2).collect::<Vec<u64>>());
        assert!(l.insert(101)); // mid-list, odd
        assert!(!l.insert(101)); // duplicate
        assert!(l.contains(101));
        assert!(l.remove(101));
        assert!(!l.remove(101));
        assert_eq!(l.len(), 200);
        assert_eq!(l.ids(), (0..200).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_trigger_and_retain() {
        let mut l = list_of(&(0..100).collect::<Vec<u64>>());
        for _ in 0..20 {
            l.mark_dead();
        }
        assert!(!l.needs_compaction()); // 20/100 ≤ 25%
        for _ in 0..6 {
            l.mark_dead();
        }
        assert!(l.needs_compaction()); // 26/100 > 25%
        l.retain(|q| q % 4 != 0);
        assert_eq!(l.dead(), 0);
        assert_eq!(l.len(), 75);
        assert!(!l.contains(8));
        assert!(l.contains(9));
    }

    #[test]
    fn union_matches_naive_merge() {
        let a = list_of(&(0..300).map(|i| i * 2).collect::<Vec<u64>>());
        let b = list_of(&(0..300).map(|i| i * 3).collect::<Vec<u64>>());
        let c = list_of(&[5, 7, 600, 601]);
        let empty = PostingList::default();
        let got = union_cursors(vec![a.cursor(), b.cursor(), c.cursor(), empty.cursor()]);
        let mut want: Vec<u64> = a.ids();
        want.extend(b.ids());
        want.extend(c.ids());
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        assert!(union_cursors(Vec::new()).is_empty());
    }
}
