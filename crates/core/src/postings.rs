//! Compressed feature-posting lists with lazy compaction and O(1) clone.
//!
//! The inverted feature index used to hold raw sorted `Vec<u64>` qids and
//! eagerly removed an id from every list the moment its record stopped
//! being live. At millions of records the hot lists (popular tables) make
//! both choices expensive: 8 bytes per posting, and O(list) shifting per
//! maintenance transition per feature.
//!
//! A [`PostingList`] instead:
//!
//! * **seals full segments** — ids arrive dense and ascending, so every
//!   `SEG_LEN` appends the open tail freezes into an immutable,
//!   delta-encoded segment (`u64` head plus `u32` gaps: 4 bytes per
//!   posting, sequential decode) behind an `Arc`;
//! * **clones by pointer** — sealed segments and the open tail are both
//!   `Arc`'d, so `clone()` is two pointer bumps regardless of length and a
//!   published `ReadSnapshot` shares the hot lists with the writer; the
//!   writer's next append re-copies at most the open tail (≤ `SEG_LEN`
//!   ids);
//! * **defers removal** — a record going non-live only bumps the list's
//!   `dead` counter; the stale id stays until the dead fraction of the
//!   list passes the compact-dead fraction (1/4), when the storage rebuilds the
//!   list from currently-live members in one pass. Consumers already
//!   filter candidates by liveness, so stale ids are harmless: the kNN
//!   exactness argument only needs every *live* record outside the
//!   candidate union to be feature-disjoint from the probe, and live
//!   records are always present in their lists.
//!
//! Candidate generation unions the probe's lists through a galloping
//! multi-way merge ([`union_cursors`]): cursors skip whole segments whose
//! max id falls below the merge frontier in O(1), binary-search within
//! plain runs, and decode delta runs forward — no intermediate allocation,
//! no global sort.

use std::sync::Arc;

/// Appends per sealed segment. Also the maximum open-tail length — the
/// copy bound for the first append after a snapshot clone.
const SEG_LEN: usize = 64;

/// Compact a list once more than a quarter of its entries are stale.
const COMPACT_DEAD_FRACTION_DEN: u32 = 4;

/// One immutable run of sorted ids.
#[derive(Debug, Clone, PartialEq)]
enum Seg {
    /// Sorted ids, uncompressed (gap overflowed `u32` — never with the
    /// storage's dense ids).
    Plain(Vec<u64>),
    /// Sorted ids as `first` plus strictly-positive `u32` gaps.
    Delta {
        first: u64,
        last: u64,
        gaps: Vec<u32>,
    },
}

impl Seg {
    fn encode(ids: Vec<u64>) -> Seg {
        debug_assert!(!ids.is_empty());
        let first = ids[0];
        let last = *ids.last().expect("non-empty");
        let mut gaps = Vec::with_capacity(ids.len() - 1);
        for w in ids.windows(2) {
            match u32::try_from(w[1] - w[0]) {
                Ok(g) => gaps.push(g),
                Err(_) => return Seg::Plain(ids),
            }
        }
        Seg::Delta { first, last, gaps }
    }

    fn first(&self) -> u64 {
        match self {
            Seg::Plain(v) => v[0],
            Seg::Delta { first, .. } => *first,
        }
    }

    fn last(&self) -> u64 {
        match self {
            Seg::Plain(v) => *v.last().expect("sealed segments are non-empty"),
            Seg::Delta { last, .. } => *last,
        }
    }

    fn contains(&self, qid: u64) -> bool {
        match self {
            Seg::Plain(v) => v.binary_search(&qid).is_ok(),
            Seg::Delta { first, last, gaps } => {
                if qid < *first || qid > *last {
                    return false;
                }
                let mut cur = *first;
                if cur == qid {
                    return true;
                }
                for &g in gaps {
                    cur += u64::from(g);
                    if cur >= qid {
                        return cur == qid;
                    }
                }
                false
            }
        }
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        match self {
            Seg::Plain(v) => out.extend_from_slice(v),
            Seg::Delta { first, gaps, .. } => {
                let mut cur = *first;
                out.push(cur);
                for &g in gaps {
                    cur += u64::from(g);
                    out.push(cur);
                }
            }
        }
    }
}

/// One feature's posting list: sorted, deduplicated qids (possibly stale —
/// see the module docs) plus the stale-entry counter. `clone()` is two
/// `Arc` bumps.
#[derive(Debug, Clone, PartialEq)]
pub struct PostingList {
    /// Sealed, immutable segments in ascending id order.
    segs: Arc<Vec<Arc<Seg>>>,
    /// The mutable tail: plain ascending ids, < `SEG_LEN` long.
    open: Arc<Vec<u64>>,
    /// Largest stored id (undefined when empty).
    last: u64,
    /// Entries in the list (stale included).
    len: usize,
    /// Entries whose record is currently non-live.
    dead: u32,
}

impl Default for PostingList {
    fn default() -> Self {
        PostingList {
            segs: Arc::new(Vec::new()),
            open: Arc::new(Vec::new()),
            last: 0,
            len: 0,
            dead: 0,
        }
    }
}

impl PostingList {
    /// Entries in the list (stale included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of entries currently known stale.
    pub fn dead(&self) -> u32 {
        self.dead
    }

    /// Append `qid`, which must exceed every stored id (the storage
    /// assigns dense ascending ids at insert).
    pub fn append(&mut self, qid: u64) {
        debug_assert!(self.is_empty() || qid > self.last);
        let open = Arc::make_mut(&mut self.open);
        open.push(qid);
        self.last = qid;
        self.len += 1;
        if open.len() >= SEG_LEN {
            let full = std::mem::take(open);
            Arc::make_mut(&mut self.segs).push(Arc::new(Seg::encode(full)));
        }
    }

    /// Insert `qid` at its sorted position. Returns `false` when already
    /// present. Mid-list inserts decode and re-encode the whole list —
    /// only maintenance revival paths take this route.
    pub fn insert(&mut self, qid: u64) -> bool {
        if self.is_empty() || qid > self.last {
            self.append(qid);
            return true;
        }
        let mut ids = self.ids();
        match ids.binary_search(&qid) {
            Ok(_) => false,
            Err(pos) => {
                ids.insert(pos, qid);
                self.restore(ids);
                true
            }
        }
    }

    /// Remove `qid` if present (reindex path — the record's feature set
    /// changed, so staleness bookkeeping does not apply).
    pub fn remove(&mut self, qid: u64) -> bool {
        if self.is_empty() || !self.contains(qid) {
            return false;
        }
        let mut ids = self.ids();
        let pos = ids.binary_search(&qid).expect("presence just checked");
        ids.remove(pos);
        self.restore(ids);
        true
    }

    /// Does the list contain `qid` (stale entries included)?
    pub fn contains(&self, qid: u64) -> bool {
        if self.is_empty() || qid > self.last {
            return false;
        }
        if self.open.first().is_some_and(|&f| qid >= f) {
            return self.open.binary_search(&qid).is_ok();
        }
        // Segments are disjoint ascending runs: binary-search for the one
        // whose range covers `qid`.
        let idx = self.segs.partition_point(|s| s.last() < qid);
        self.segs.get(idx).is_some_and(|s| s.contains(qid))
    }

    /// Mark one present entry stale (its record went non-live).
    pub fn mark_dead(&mut self) {
        self.dead += 1;
    }

    /// A stale entry's record came back to life (maintenance repair).
    pub fn mark_alive(&mut self) {
        self.dead = self.dead.saturating_sub(1);
    }

    /// Should the storage compact this list now?
    pub fn needs_compaction(&self) -> bool {
        u64::from(self.dead) * u64::from(COMPACT_DEAD_FRACTION_DEN) > self.len as u64
    }

    /// Rebuild keeping only ids satisfying `keep`; resets the stale count.
    pub fn retain(&mut self, keep: impl Fn(u64) -> bool) {
        let ids: Vec<u64> = self.iter().filter(|&q| keep(q)).collect();
        self.restore(ids);
        self.dead = 0;
    }

    /// Decoded ids (stale included), sorted.
    pub fn ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        for seg in self.segs.iter() {
            seg.decode_into(&mut out);
        }
        out.extend_from_slice(&self.open);
        out
    }

    /// Iterate the ids in sorted order (stale included).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut buf = Vec::new();
        let mut seg_idx = 0usize;
        let mut buf_pos = 0usize;
        let mut open_pos = 0usize;
        std::iter::from_fn(move || loop {
            if buf_pos < buf.len() {
                let v = buf[buf_pos];
                buf_pos += 1;
                return Some(v);
            }
            if seg_idx < self.segs.len() {
                buf.clear();
                self.segs[seg_idx].decode_into(&mut buf);
                seg_idx += 1;
                buf_pos = 0;
                continue;
            }
            let v = self.open.get(open_pos).copied();
            open_pos += 1;
            return v;
        })
    }

    /// A merge cursor positioned at the first id.
    pub fn cursor(&self) -> PostingCursor<'_> {
        let mut c = PostingCursor {
            list: self,
            seg_idx: 0,
            pos: 0,
            cur: None,
        };
        c.enter_run();
        c
    }

    /// Rebuild the segments from a full sorted id list.
    fn restore(&mut self, ids: Vec<u64>) {
        self.last = ids.last().copied().unwrap_or(0);
        self.len = ids.len();
        let mut segs: Vec<Arc<Seg>> = Vec::with_capacity(ids.len() / SEG_LEN);
        let mut it = ids.chunks_exact(SEG_LEN);
        for chunk in &mut it {
            segs.push(Arc::new(Seg::encode(chunk.to_vec())));
        }
        self.open = Arc::new(it.remainder().to_vec());
        self.segs = Arc::new(segs);
    }
}

/// One input to the multi-way union merge. Tracks a position inside one
/// run (a sealed segment or the open tail) and skips whole segments whose
/// max id falls below the merge frontier in O(1).
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    /// Current run: `list.segs.len()` means the open tail.
    seg_idx: usize,
    /// For a plain run / open tail: index of the next id. For a delta
    /// run: number of gaps consumed.
    pos: usize,
    /// The decoded value the cursor currently sits on.
    cur: Option<u64>,
}

impl PostingCursor<'_> {
    fn current(&self) -> Option<u64> {
        self.cur
    }

    /// Position on the first id of the current run, advancing over empty
    /// runs (only the open tail can be empty).
    fn enter_run(&mut self) {
        self.pos = 0;
        self.cur = if self.seg_idx < self.list.segs.len() {
            Some(self.list.segs[self.seg_idx].first())
        } else {
            self.list.open.first().copied()
        };
    }

    /// Advance past every id ≤ `v`: skip whole segments by their max id,
    /// binary-search within plain runs, decode delta runs forward.
    fn advance_past(&mut self, v: u64) {
        while let Some(c) = self.cur {
            if c > v {
                return;
            }
            if self.seg_idx < self.list.segs.len() {
                let seg = &self.list.segs[self.seg_idx];
                if seg.last() <= v {
                    self.seg_idx += 1;
                    self.enter_run();
                    continue;
                }
                match seg.as_ref() {
                    Seg::Plain(ids) => {
                        self.pos += ids[self.pos..].partition_point(|&x| x <= v);
                        self.cur = ids.get(self.pos).copied();
                    }
                    Seg::Delta { gaps, .. } => {
                        while let Some(cc) = self.cur {
                            if cc > v {
                                break;
                            }
                            self.cur = gaps.get(self.pos).map(|&g| cc + u64::from(g));
                            self.pos += 1;
                        }
                    }
                }
            } else {
                let ids: &[u64] = &self.list.open;
                self.pos += ids[self.pos..].partition_point(|&x| x <= v);
                self.cur = ids.get(self.pos).copied();
            }
        }
    }
}

/// Sorted, deduplicated union of all cursor streams — the kNN candidate
/// set. Each round emits the minimum current id and gallops every cursor
/// past it, so shared runs cost one comparison per cursor, not one per
/// element.
pub fn union_cursors(mut cursors: Vec<PostingCursor<'_>>) -> Vec<u64> {
    let mut out = Vec::new();
    cursors.retain(|c| c.current().is_some());
    while !cursors.is_empty() {
        let min = cursors
            .iter()
            .filter_map(PostingCursor::current)
            .min()
            .expect("non-empty cursors");
        out.push(min);
        cursors.retain_mut(|c| {
            c.advance_past(min);
            c.current().is_some()
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(ids: &[u64]) -> PostingList {
        let mut l = PostingList::default();
        for &q in ids {
            l.append(q);
        }
        l
    }

    #[test]
    fn append_roundtrips_across_encodings() {
        // Short stays in the open tail; long seals delta segments; both
        // decode identically.
        let short: Vec<u64> = (0..10).map(|i| i * 3).collect();
        assert_eq!(list_of(&short).ids(), short);
        let long: Vec<u64> = (0..500).map(|i| i * 7 + 1).collect();
        let l = list_of(&long);
        assert!(!l.segs.is_empty());
        assert!(l
            .segs
            .iter()
            .all(|s| matches!(s.as_ref(), Seg::Delta { .. })));
        assert_eq!(l.ids(), long);
        assert_eq!(l.len(), 500);
        for &q in &long {
            assert!(l.contains(q));
        }
        assert!(!l.contains(2));
        assert!(!l.contains(9999));
        assert_eq!(l.iter().collect::<Vec<u64>>(), long);
    }

    #[test]
    fn insert_and_remove_anywhere() {
        let mut l = list_of(&(0..200).map(|i| i * 2).collect::<Vec<u64>>());
        assert!(l.insert(101)); // mid-list, odd
        assert!(!l.insert(101)); // duplicate
        assert!(l.contains(101));
        assert!(l.remove(101));
        assert!(!l.remove(101));
        assert_eq!(l.len(), 200);
        assert_eq!(l.ids(), (0..200).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_trigger_and_retain() {
        let mut l = list_of(&(0..100).collect::<Vec<u64>>());
        for _ in 0..20 {
            l.mark_dead();
        }
        assert!(!l.needs_compaction()); // 20/100 ≤ 25%
        for _ in 0..6 {
            l.mark_dead();
        }
        assert!(l.needs_compaction()); // 26/100 > 25%
        l.retain(|q| q % 4 != 0);
        assert_eq!(l.dead(), 0);
        assert_eq!(l.len(), 75);
        assert!(!l.contains(8));
        assert!(l.contains(9));
    }

    #[test]
    fn union_matches_naive_merge() {
        let a = list_of(&(0..300).map(|i| i * 2).collect::<Vec<u64>>());
        let b = list_of(&(0..300).map(|i| i * 3).collect::<Vec<u64>>());
        let c = list_of(&[5, 7, 600, 601]);
        let empty = PostingList::default();
        let got = union_cursors(vec![a.cursor(), b.cursor(), c.cursor(), empty.cursor()]);
        let mut want: Vec<u64> = a.ids();
        want.extend(b.ids());
        want.extend(c.ids());
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        assert!(union_cursors(Vec::new()).is_empty());
    }

    #[test]
    fn clone_shares_sealed_segments() {
        let mut l = list_of(&(0..300).collect::<Vec<u64>>());
        let snap = l.clone();
        l.append(1000);
        assert_eq!(snap.len(), 300);
        assert_eq!(l.len(), 301);
        assert!(!snap.contains(1000));
        assert!(l.contains(1000));
        assert!(Arc::ptr_eq(&l.segs, &snap.segs));
        assert_eq!(snap.ids(), (0..300).collect::<Vec<u64>>());
    }

    #[test]
    fn cursor_crosses_segment_boundaries() {
        // Ids straddling several sealed segments plus a short open tail.
        let ids: Vec<u64> = (0..(SEG_LEN as u64 * 3 + 10)).map(|i| i * 5).collect();
        let l = list_of(&ids);
        assert_eq!(union_cursors(vec![l.cursor()]), ids);
        // A sparse partner forces long advances that skip whole segments.
        let sparse = list_of(&[3, 750, 751, ids[ids.len() - 1] + 5]);
        let got = union_cursors(vec![l.cursor(), sparse.cursor()]);
        let mut want = ids.clone();
        want.extend(sparse.ids());
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }
}
