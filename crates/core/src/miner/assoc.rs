//! Association-rule mining over query feature itemsets (§4.3).
//!
//! "By learning association rules, a CQMS could provide more advanced
//! support for query composition" — the §2.3 example being *WaterSalinity ⇒
//! WaterTemp*. Transactions are per-query item sets from
//! [`crate::features::SyntacticFeatures::items`] (`table:…`, `attr:…`,
//! `pred:…`). Classic Apriori with support counting and single-consequent
//! rule generation; incremental maintenance via monotone transaction
//! appends.

use cqms_cow::SnapshotVec;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssocRule {
    /// Sorted item set (size 1–2 in practice).
    pub antecedent: Vec<String>,
    /// The implied item.
    pub consequent: String,
    /// Fraction of transactions containing antecedent ∪ consequent.
    pub support: f64,
    /// support(antecedent ∪ consequent) / support(antecedent).
    pub confidence: f64,
}

impl AssocRule {
    /// Does `items` (sorted or not) satisfy the antecedent?
    pub fn applies_to(&self, items: &HashSet<String>) -> bool {
        self.antecedent.iter().all(|a| items.contains(a))
    }
}

/// Mining-cache key+payload: (transaction count, min support, confidence
/// key, mined rules). The rules sit behind an `Arc` so cache hits and
/// miner clones (one per snapshot publish) are pointer bumps, not deep
/// copies of every mined rule.
type MineCache = Option<(usize, u32, u64, Arc<Vec<AssocRule>>)>;

/// Incremental Apriori miner. Transactions are appended over time; mining
/// re-runs over all accumulated transactions (cheap at CQMS scales — the
/// incremental piece is that accumulated counts are reused between epochs
/// when no new transactions arrived).
#[derive(Debug, Default)]
pub struct RuleMiner {
    /// Copy-on-write so cloning the miner into a read snapshot shares
    /// all accumulated transactions by chunk pointer.
    transactions: SnapshotVec<Vec<String>>,
    /// Cache: number of transactions at last mine + its result. Behind a
    /// mutex so [`RuleMiner::mine`] / [`RuleMiner::suggest`] stay `&self` —
    /// the completion read path must not need a write lock on the CQMS.
    cache: Mutex<MineCache>,
}

impl Clone for RuleMiner {
    /// O(transactions / CHUNK) pointer bumps; the mine cache is carried
    /// over so a snapshot's first `suggest` doesn't re-mine.
    fn clone(&self) -> Self {
        RuleMiner {
            transactions: self.transactions.clone(),
            cache: Mutex::new(self.cache.lock().clone()),
        }
    }
}

impl RuleMiner {
    /// An empty miner.
    pub fn new() -> Self {
        RuleMiner::default()
    }

    /// Transactions fed so far.
    pub fn transaction_count(&self) -> usize {
        self.transactions.len()
    }

    /// Append one transaction (deduplicated, sorted internally).
    pub fn add_transaction(&mut self, mut items: Vec<String>) {
        items.sort();
        items.dedup();
        self.transactions.push(items);
    }

    /// Mine rules at the given thresholds. `min_support` is an absolute
    /// transaction count; confidence is a fraction.
    pub fn mine(&self, min_support: u32, min_confidence: f64) -> Arc<Vec<AssocRule>> {
        let conf_key = (min_confidence * 1_000_000.0) as u64;
        if let Some((n, ms, conf, rules)) = self.cache.lock().as_ref() {
            if *n == self.transactions.len() && *ms == min_support && *conf == conf_key {
                return Arc::clone(rules);
            }
        }
        // Mine outside the lock: concurrent callers may duplicate the work
        // but never block each other on it.
        let rules = Arc::new(mine_apriori_impl(
            self.transactions.len(),
            || self.transactions.iter(),
            min_support,
            min_confidence,
        ));
        *self.cache.lock() = Some((
            self.transactions.len(),
            min_support,
            conf_key,
            Arc::clone(&rules),
        ));
        rules
    }

    /// Confidence-ranked consequents applicable in `context` (used by the
    /// completion engine). Already-present items are not suggested.
    pub fn suggest(
        &self,
        context: &HashSet<String>,
        min_support: u32,
        min_confidence: f64,
        prefix: &str,
    ) -> Vec<(String, f64)> {
        let rules = self.mine(min_support, min_confidence);
        let mut best: HashMap<String, f64> = HashMap::new();
        for r in rules.iter() {
            if !r.applies_to(context) || context.contains(&r.consequent) {
                continue;
            }
            if !r.consequent.starts_with(prefix) {
                continue;
            }
            let score = best.entry(r.consequent.clone()).or_insert(0.0);
            // Prefer more specific (longer antecedent) matches at equal
            // confidence by a small epsilon bonus.
            let s = r.confidence + r.antecedent.len() as f64 * 1e-6;
            if s > *score {
                *score = s;
            }
        }
        let mut out: Vec<(String, f64)> = best.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Exact context-conditional support counts: everything
    /// [`suggest_from_counts`] needs to reproduce [`RuleMiner::suggest`]
    /// for this `(context, prefix)` bit-for-bit. The point of the raw
    /// counts is that they are **summable**: each shard computes its own,
    /// the shard layer merges them, and scoring the merged counts equals
    /// scoring one miner holding every shard's transactions — Apriori's
    /// support-monotonicity guarantees the threshold pruning commutes
    /// with the merge.
    pub fn context_counts(&self, context: &HashSet<String>, prefix: &str) -> ContextCounts {
        let mut out = ContextCounts {
            transactions: self.transactions.len() as u64,
            ..ContextCounts::default()
        };
        for t in self.transactions.iter() {
            // Transactions are sorted + deduplicated by `add_transaction`,
            // so these filtered views stay sorted — pair keys come out in
            // the same (ordered) form `mine_apriori` uses.
            let ctx_items: Vec<&str> = t
                .iter()
                .map(String::as_str)
                .filter(|i| context.contains(*i))
                .collect();
            if ctx_items.is_empty() {
                continue;
            }
            let cons: Vec<&str> = t
                .iter()
                .map(String::as_str)
                .filter(|i| i.starts_with(prefix) && !context.contains(*i))
                .collect();
            for &a in &ctx_items {
                *out.singles.entry(a.to_string()).or_insert(0) += 1;
            }
            for i in 0..ctx_items.len() {
                for j in (i + 1)..ctx_items.len() {
                    *out.pairs
                        .entry((ctx_items[i].to_string(), ctx_items[j].to_string()))
                        .or_insert(0) += 1;
                }
            }
            for &a in &ctx_items {
                for &b in &cons {
                    *out.joint_pairs
                        .entry((a.to_string(), b.to_string()))
                        .or_insert(0) += 1;
                }
            }
            for i in 0..ctx_items.len() {
                for j in (i + 1)..ctx_items.len() {
                    for &z in &cons {
                        *out.joint_triples
                            .entry((
                                ctx_items[i].to_string(),
                                ctx_items[j].to_string(),
                                z.to_string(),
                            ))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        out
    }
}

/// Context-conditional support counts for one `(context, prefix)`
/// completion probe — the exact cross-shard merge currency of
/// [`RuleMiner::suggest`]. See [`RuleMiner::context_counts`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ContextCounts {
    /// Transactions scanned (summed across shards on merge).
    pub transactions: u64,
    /// `count(a)` per context item `a` — pair-rule antecedent supports.
    pub singles: HashMap<String, u64>,
    /// `count({x, y})` per unordered context pair (key sorted) —
    /// triple-rule antecedent supports.
    pub pairs: HashMap<(String, String), u64>,
    /// `count({a, b})` per (context item, prefix-matching non-context
    /// consequent) — pair-rule joint supports.
    pub joint_pairs: HashMap<(String, String), u64>,
    /// `count({x, y, z})` per (sorted context pair, consequent) —
    /// triple-rule joint supports.
    pub joint_triples: HashMap<(String, String, String), u64>,
}

impl ContextCounts {
    /// Sum another shard's counts into this one.
    pub fn merge(&mut self, other: &ContextCounts) {
        self.transactions += other.transactions;
        for (k, v) in &other.singles {
            *self.singles.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.pairs {
            *self.pairs.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.joint_pairs {
            *self.joint_pairs.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.joint_triples {
            *self.joint_triples.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Score completion consequents from (possibly merged) context counts —
/// bit-identical to [`RuleMiner::suggest`] over the same transactions:
/// a pair rule `{a} ⇒ b` exists iff `count({a,b}) ≥ min_support` with
/// `confidence = count({a,b}) / count(a)` (the Apriori f1/f2 filters
/// prune only itemsets below `min_support`, which the joint-count
/// threshold already enforces by monotonicity), and likewise for triple
/// rules with the pair-antecedent count. The same float operations run
/// in the same order per consequent, so scores — not just ranks — match.
pub fn suggest_from_counts(
    counts: &ContextCounts,
    min_support: u32,
    min_confidence: f64,
) -> Vec<(String, f64)> {
    let ms = u64::from(min_support);
    let mut best: HashMap<String, f64> = HashMap::new();
    let mut consider = |consequent: &String, s: f64| {
        let e = best.entry(consequent.clone()).or_insert(0.0);
        if s > *e {
            *e = s;
        }
    };
    for ((a, b), &cnt) in &counts.joint_pairs {
        if cnt < ms {
            continue;
        }
        let Some(&ante) = counts.singles.get(a) else {
            continue;
        };
        let confidence = cnt as f64 / ante as f64;
        if confidence >= min_confidence {
            consider(b, confidence + 1e-6);
        }
    }
    for ((x, y, z), &cnt) in &counts.joint_triples {
        if cnt < ms {
            continue;
        }
        let ante = counts
            .pairs
            .get(&(x.clone(), y.clone()))
            .copied()
            .unwrap_or(0);
        if ante == 0 {
            continue;
        }
        let confidence = cnt as f64 / ante as f64;
        if confidence >= min_confidence {
            consider(z, confidence + 2.0 * 1e-6);
        }
    }
    let mut out: Vec<(String, f64)> = best.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

/// Run Apriori: frequent itemsets up to size 3, rules with single
/// consequents and antecedents of size 1–2.
pub fn mine_apriori(
    transactions: &[Vec<String>],
    min_support: u32,
    min_confidence: f64,
) -> Vec<AssocRule> {
    mine_apriori_impl(
        transactions.len(),
        || transactions.iter(),
        min_support,
        min_confidence,
    )
}

/// [`mine_apriori`] over any re-iterable transaction source (the miner's
/// copy-on-write log iterates without materialising a slice).
fn mine_apriori_impl<'a, I, F>(
    n: usize,
    transactions: F,
    min_support: u32,
    min_confidence: f64,
) -> Vec<AssocRule>
where
    I: Iterator<Item = &'a Vec<String>>,
    F: Fn() -> I,
{
    if n == 0 {
        return Vec::new();
    }

    // Pass 1: frequent single items.
    let mut c1: HashMap<&str, u32> = HashMap::new();
    for t in transactions() {
        for item in t {
            *c1.entry(item.as_str()).or_insert(0) += 1;
        }
    }
    let f1: HashSet<&str> = c1
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(&i, _)| i)
        .collect();

    // Pass 2: frequent pairs (candidates from f1 × f1).
    let mut c2: HashMap<(&str, &str), u32> = HashMap::new();
    for t in transactions() {
        let frequent: Vec<&str> = t
            .iter()
            .map(String::as_str)
            .filter(|i| f1.contains(i))
            .collect();
        for i in 0..frequent.len() {
            for j in (i + 1)..frequent.len() {
                *c2.entry((frequent[i], frequent[j])).or_insert(0) += 1;
            }
        }
    }
    let f2: HashMap<(&str, &str), u32> =
        c2.into_iter().filter(|(_, c)| *c >= min_support).collect();

    // Pass 3: frequent triples (candidates joined from f2, pruned).
    let mut c3: HashMap<(&str, &str, &str), u32> = HashMap::new();
    for t in transactions() {
        let frequent: Vec<&str> = t
            .iter()
            .map(String::as_str)
            .filter(|i| f1.contains(i))
            .collect();
        for i in 0..frequent.len() {
            for j in (i + 1)..frequent.len() {
                if !f2.contains_key(&(frequent[i], frequent[j])) {
                    continue;
                }
                for l in (j + 1)..frequent.len() {
                    if f2.contains_key(&(frequent[j], frequent[l]))
                        && f2.contains_key(&(frequent[i], frequent[l]))
                    {
                        *c3.entry((frequent[i], frequent[j], frequent[l]))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let f3: HashMap<(&str, &str, &str), u32> =
        c3.into_iter().filter(|(_, c)| *c >= min_support).collect();

    let nf = n as f64;
    let mut rules: Vec<AssocRule> = Vec::new();

    // Rules from pairs: {a} ⇒ b and {b} ⇒ a.
    for (&(a, b), &cnt) in &f2 {
        let support = cnt as f64 / nf;
        for (ante, cons) in [(a, b), (b, a)] {
            let ante_cnt = c1[ante] as f64;
            let confidence = cnt as f64 / ante_cnt;
            if confidence >= min_confidence {
                rules.push(AssocRule {
                    antecedent: vec![ante.to_string()],
                    consequent: cons.to_string(),
                    support,
                    confidence,
                });
            }
        }
    }

    // Rules from triples: {a, b} ⇒ c (all three rotations).
    for (&(a, b, c), &cnt) in &f3 {
        let support = cnt as f64 / nf;
        let pair_count = |x: &str, y: &str| -> f64 {
            let key = if x < y { (x, y) } else { (y, x) };
            f2.get(&key).copied().unwrap_or(0) as f64
        };
        for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
            let ante_cnt = pair_count(x, y);
            if ante_cnt == 0.0 {
                continue;
            }
            let confidence = cnt as f64 / ante_cnt;
            if confidence >= min_confidence {
                let mut antecedent = vec![x.to_string(), y.to_string()];
                antecedent.sort();
                rules.push(AssocRule {
                    antecedent,
                    consequent: z.to_string(),
                    support,
                    confidence,
                });
            }
        }
    }

    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.support
                    .partial_cmp(&a.support)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn finds_planted_pair_rule() {
        let mut m = RuleMiner::new();
        // 8 of 10 salinity queries also use watertemp.
        for _ in 0..8 {
            m.add_transaction(t(&["table:watersalinity", "table:watertemp"]));
        }
        for _ in 0..2 {
            m.add_transaction(t(&["table:watersalinity"]));
        }
        for _ in 0..5 {
            m.add_transaction(t(&["table:citylocations"]));
        }
        let rules = m.mine(3, 0.5);
        let rule = rules
            .iter()
            .find(|r| {
                r.antecedent == vec!["table:watersalinity".to_string()]
                    && r.consequent == "table:watertemp"
            })
            .expect("planted rule not found");
        assert!((rule.confidence - 0.8).abs() < 1e-9);
        assert!((rule.support - 8.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn respects_min_support_and_confidence() {
        let mut m = RuleMiner::new();
        for _ in 0..2 {
            m.add_transaction(t(&["a", "b"]));
        }
        // Support 2 < min 3 → nothing.
        assert!(m.mine(3, 0.1).is_empty());
        // Confidence filter.
        let mut m = RuleMiner::new();
        for _ in 0..5 {
            m.add_transaction(t(&["a", "b"]));
        }
        for _ in 0..5 {
            m.add_transaction(t(&["a"]));
        }
        let rules = m.mine(3, 0.9);
        // a ⇒ b has confidence 0.5 (dropped); b ⇒ a has 1.0 (kept).
        assert!(rules
            .iter()
            .all(|r| !(r.antecedent == vec!["a".to_string()] && r.consequent == "b")));
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec!["b".to_string()] && r.consequent == "a"));
    }

    #[test]
    fn triple_rules_capture_context() {
        let mut m = RuleMiner::new();
        // With {a, b} together, c always follows; with a alone, d follows.
        for _ in 0..6 {
            m.add_transaction(t(&["a", "b", "c"]));
        }
        for _ in 0..6 {
            m.add_transaction(t(&["a", "d"]));
        }
        let rules = m.mine(3, 0.9);
        let pair_rule = rules
            .iter()
            .find(|r| r.antecedent.len() == 2 && r.consequent == "c")
            .expect("no {a,b} => c rule");
        assert_eq!(pair_rule.antecedent, vec!["a".to_string(), "b".to_string()]);
        assert!((pair_rule.confidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn suggest_is_context_aware() {
        // The paper's §2.3 example: plain FROM suggests CityLocations (most
        // popular overall), but with WaterSalinity present, WaterTemp wins.
        let mut m = RuleMiner::new();
        for _ in 0..10 {
            m.add_transaction(t(&["table:citylocations"]));
        }
        for _ in 0..6 {
            m.add_transaction(t(&["table:watersalinity", "table:watertemp"]));
        }
        for _ in 0..2 {
            m.add_transaction(t(&["table:watersalinity", "table:citylocations"]));
        }
        let ctx: HashSet<String> = ["table:watersalinity".to_string()].into_iter().collect();
        let suggestions = m.suggest(&ctx, 2, 0.1, "table:");
        assert!(!suggestions.is_empty());
        assert_eq!(suggestions[0].0, "table:watertemp", "{suggestions:?}");
    }

    #[test]
    fn suggest_filters_present_items() {
        let mut m = RuleMiner::new();
        for _ in 0..5 {
            m.add_transaction(t(&["a", "b"]));
        }
        let ctx: HashSet<String> = ["a".to_string(), "b".to_string()].into_iter().collect();
        assert!(m.suggest(&ctx, 2, 0.5, "").is_empty());
    }

    #[test]
    fn cache_reused_until_new_transactions() {
        let mut m = RuleMiner::new();
        for _ in 0..5 {
            m.add_transaction(t(&["a", "b"]));
        }
        let r1 = m.mine(2, 0.5);
        let r2 = m.mine(2, 0.5);
        assert_eq!(r1, r2);
        m.add_transaction(t(&["a", "c"]));
        let r3 = m.mine(2, 0.5);
        // New data may change supports.
        assert!(r3.iter().any(|r| r.consequent == "b"));
    }

    #[test]
    fn empty_miner_yields_nothing() {
        let m = RuleMiner::new();
        assert!(m.mine(1, 0.1).is_empty());
    }

    /// `suggest_from_counts(context_counts(..))` must equal `suggest(..)`
    /// bit-for-bit — scores included — on one miner.
    #[test]
    fn counts_protocol_matches_suggest() {
        let mut m = RuleMiner::new();
        for _ in 0..10 {
            m.add_transaction(t(&["table:citylocations"]));
        }
        for _ in 0..6 {
            m.add_transaction(t(&["table:watersalinity", "table:watertemp", "col:temp"]));
        }
        for _ in 0..4 {
            m.add_transaction(t(&["table:watersalinity", "table:citylocations"]));
        }
        for _ in 0..3 {
            m.add_transaction(t(&["table:watersalinity", "col:temp", "table:sensors"]));
        }
        for (ctx_items, prefix) in [
            (vec!["table:watersalinity"], "table:"),
            (vec!["table:watersalinity", "col:temp"], "table:"),
            (vec!["table:watersalinity", "col:temp"], ""),
            (vec!["table:citylocations"], "col:"),
            (vec![], "table:"),
        ] {
            let ctx: HashSet<String> = ctx_items.iter().map(|s| s.to_string()).collect();
            for (ms, mc) in [(1, 0.1), (2, 0.5), (3, 0.9), (5, 0.0)] {
                let live = m.suggest(&ctx, ms, mc, prefix);
                let counted = suggest_from_counts(&m.context_counts(&ctx, prefix), ms, mc);
                assert_eq!(live, counted, "ctx={ctx_items:?} ms={ms} mc={mc}");
            }
        }
    }

    /// Summing two shards' counts and scoring must equal one miner
    /// holding both shards' transactions.
    #[test]
    fn merged_counts_match_combined_miner() {
        let txns = [
            t(&["a", "b", "c"]),
            t(&["a", "b"]),
            t(&["a", "c"]),
            t(&["b", "c", "d"]),
            t(&["a", "b", "c", "d"]),
            t(&["a", "d"]),
            t(&["c", "d"]),
        ];
        let mut combined = RuleMiner::new();
        let mut shard0 = RuleMiner::new();
        let mut shard1 = RuleMiner::new();
        for (i, tx) in txns.iter().enumerate() {
            combined.add_transaction(tx.clone());
            if i % 2 == 0 {
                shard0.add_transaction(tx.clone());
            } else {
                shard1.add_transaction(tx.clone());
            }
        }
        let ctx: HashSet<String> = ["a".to_string(), "b".to_string()].into_iter().collect();
        for (ms, mc) in [(1, 0.1), (2, 0.4), (3, 0.6)] {
            let mut merged = shard0.context_counts(&ctx, "");
            merged.merge(&shard1.context_counts(&ctx, ""));
            assert_eq!(
                combined.suggest(&ctx, ms, mc, ""),
                suggest_from_counts(&merged, ms, mc),
                "ms={ms} mc={mc}"
            );
        }
    }
}
