//! Offline session segmentation (§2.2: "query sessions should be
//! automatically identified") and its evaluation against planted truth.

use crate::config::CqmsConfig;
use crate::model::{QueryId, SessionId, UserId};
use crate::similarity;
use crate::storage::QueryStorage;
use std::collections::HashMap;

/// Segment the whole log per user, returning a fresh session assignment
/// (the miner's refined view; the profiler's online assignment stays in the
/// records until the server adopts the refined one).
///
/// Heuristic: order each user's queries by time; a new session starts when
/// the idle gap exceeds the threshold *and* the queries are dissimilar, or
/// when the gap exceeds 3× the threshold regardless.
pub fn segment_log(storage: &QueryStorage, config: &CqmsConfig) -> HashMap<QueryId, SessionId> {
    let mut per_user: HashMap<UserId, Vec<QueryId>> = HashMap::new();
    for r in storage.iter() {
        per_user.entry(r.user).or_default().push(r.id);
    }
    let mut assignment: HashMap<QueryId, SessionId> = HashMap::new();
    let mut next = 0u64;
    let mut users: Vec<UserId> = per_user.keys().copied().collect();
    users.sort();
    for user in users {
        let mut ids = per_user.remove(&user).unwrap();
        ids.sort_by_key(|id| storage.get(*id).map(|r| r.ts).unwrap_or(0));
        let mut current = SessionId(next);
        next += 1;
        let mut prev: Option<QueryId> = None;
        for id in ids {
            if let Some(p) = prev {
                let (pr, cr) = (storage.get(p).unwrap(), storage.get(id).unwrap());
                let gap = cr.ts.saturating_sub(pr.ts);
                let dist = similarity::feature_distance(pr, cr, config);
                let new_session = if gap > 3 * config.session_idle_gap_secs {
                    true
                } else if gap > config.session_idle_gap_secs {
                    dist > config.session_similarity_threshold
                } else {
                    false
                };
                if new_session {
                    current = SessionId(next);
                    next += 1;
                }
            }
            assignment.insert(id, current);
            prev = Some(id);
        }
    }
    assignment
}

/// Quality of a segmentation against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentationQuality {
    /// Precision/recall/F1 of session *boundaries* (a boundary sits between
    /// two consecutive queries of one user).
    pub boundary_precision: f64,
    /// Recall of predicted session boundaries.
    pub boundary_recall: f64,
    /// F1 of predicted session boundaries.
    pub boundary_f1: f64,
    /// Pairwise F1: over all same-user query pairs, do the two labelings
    /// agree on "same session"?
    pub pairwise_f1: f64,
}

/// Score `predicted` against `truth`. Both map query → session label; the
/// per-user orderings are taken from `order` (queries of one user sorted by
/// time).
pub fn segmentation_quality(
    order: &[(UserId, Vec<QueryId>)],
    truth: &HashMap<QueryId, u64>,
    predicted: &HashMap<QueryId, SessionId>,
) -> SegmentationQuality {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    // Pairwise agreement counts.
    let mut pair_tp = 0u64;
    let mut pair_fp = 0u64;
    let mut pair_fn = 0u64;

    for (_user, ids) in order {
        for w in ids.windows(2) {
            let truth_boundary = truth.get(&w[0]) != truth.get(&w[1]);
            let pred_boundary = predicted.get(&w[0]) != predicted.get(&w[1]);
            match (truth_boundary, pred_boundary) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let same_truth = truth.get(&ids[i]) == truth.get(&ids[j]);
                let same_pred = predicted.get(&ids[i]) == predicted.get(&ids[j]);
                match (same_truth, same_pred) {
                    (true, true) => pair_tp += 1,
                    (false, true) => pair_fp += 1,
                    (true, false) => pair_fn += 1,
                    (false, false) => {}
                }
            }
        }
    }

    let precision = safe_div(tp, tp + fp);
    let recall = safe_div(tp, tp + fn_);
    let f1 = harmonic(precision, recall);
    let pp = safe_div(pair_tp, pair_tp + pair_fp);
    let pr = safe_div(pair_tp, pair_tp + pair_fn);
    SegmentationQuality {
        boundary_precision: precision,
        boundary_recall: recall,
        boundary_f1: f1,
        pairwise_f1: harmonic(pp, pr),
    }
}

fn safe_div(a: u64, b: u64) -> f64 {
    if b == 0 {
        1.0
    } else {
        a as f64 / b as f64
    }
}

fn harmonic(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn storage_from(specs: &[(u32, u64, &str)]) -> QueryStorage {
        let mut st = QueryStorage::new();
        for (i, (user, ts, sql)) in specs.iter().enumerate() {
            let stmt = sqlparse::parse(sql).ok();
            let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
            st.insert(make_record(
                QueryId(i as u64),
                UserId(*user),
                *ts,
                sql,
                stmt,
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(0),
                Visibility::Public,
            ));
        }
        st
    }

    #[test]
    fn splits_on_large_gaps() {
        let st = storage_from(&[
            (1, 0, "SELECT * FROM a"),
            (1, 60, "SELECT * FROM a WHERE x = 1"),
            (1, 100_000, "SELECT * FROM a WHERE x = 2"),
        ]);
        let cfg = CqmsConfig::default();
        let seg = segment_log(&st, &cfg);
        assert_eq!(seg[&QueryId(0)], seg[&QueryId(1)]);
        assert_ne!(seg[&QueryId(1)], seg[&QueryId(2)]);
    }

    #[test]
    fn medium_gap_similar_queries_stay_together() {
        let cfg = CqmsConfig::default();
        let gap = cfg.session_idle_gap_secs + 60;
        let st = storage_from(&[
            (1, 0, "SELECT * FROM WaterTemp WHERE temp < 18"),
            (1, gap, "SELECT * FROM WaterTemp WHERE temp < 12"),
            // Different analysis after the same gap → split.
            (1, 2 * gap, "SELECT * FROM CityLocations WHERE pop > 5"),
        ]);
        let seg = segment_log(&st, &cfg);
        assert_eq!(seg[&QueryId(0)], seg[&QueryId(1)]);
        assert_ne!(seg[&QueryId(1)], seg[&QueryId(2)]);
    }

    #[test]
    fn users_never_share_sessions() {
        let st = storage_from(&[(1, 0, "SELECT * FROM a"), (2, 1, "SELECT * FROM a")]);
        let seg = segment_log(&st, &CqmsConfig::default());
        assert_ne!(seg[&QueryId(0)], seg[&QueryId(1)]);
    }

    #[test]
    fn quality_metrics_perfect_and_imperfect() {
        let order = vec![(
            UserId(1),
            vec![QueryId(0), QueryId(1), QueryId(2), QueryId(3)],
        )];
        let truth: HashMap<QueryId, u64> = [
            (QueryId(0), 0),
            (QueryId(1), 0),
            (QueryId(2), 1),
            (QueryId(3), 1),
        ]
        .into_iter()
        .collect();
        let perfect: HashMap<QueryId, SessionId> = [
            (QueryId(0), SessionId(5)),
            (QueryId(1), SessionId(5)),
            (QueryId(2), SessionId(9)),
            (QueryId(3), SessionId(9)),
        ]
        .into_iter()
        .collect();
        let q = segmentation_quality(&order, &truth, &perfect);
        assert_eq!(q.boundary_f1, 1.0);
        assert_eq!(q.pairwise_f1, 1.0);

        // Over-segmented: every query its own session.
        let over: HashMap<QueryId, SessionId> =
            (0..4).map(|i| (QueryId(i), SessionId(i))).collect();
        let q = segmentation_quality(&order, &truth, &over);
        assert!(q.boundary_precision < 1.0);
        assert_eq!(q.boundary_recall, 1.0);
        assert!(q.pairwise_f1 < 1.0);
    }
}
