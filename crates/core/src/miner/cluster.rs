//! Query clustering (§4.3) with k-medoids, plus external quality metrics.
//!
//! "By clustering queries, a CQMS can … provide better query recommendations
//! and similarity searching." k-medoids is chosen over k-means because the
//! only structure available is a pairwise distance (no vector-space mean of
//! parse trees exists). Deterministic: seeded farthest-first initialisation
//! plus bounded swap iterations.

use std::collections::HashMap;

/// A clustering of n items into k clusters.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// `assignment[i]` = cluster index of item i.
    pub assignment: Vec<usize>,
    /// Item index of each cluster's medoid.
    pub medoids: Vec<usize>,
    /// Sum of distances of items to their medoid.
    pub cost: f64,
    /// Refinement iterations performed.
    pub iterations: usize,
}

/// k-medoids over a symmetric distance matrix (dense, row-major `n × n`).
pub fn kmedoids(dist: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> ClusteringResult {
    let n = dist.len();
    if n == 0 || k == 0 {
        return ClusteringResult {
            assignment: Vec::new(),
            medoids: Vec::new(),
            cost: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);

    // Farthest-first init from a seeded start point.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    medoids.push((seed as usize) % n);
    while medoids.len() < k {
        let far = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids.iter().map(|&m| dist[a][m]).fold(f64::MAX, f64::min);
                let db = medoids.iter().map(|&m| dist[b][m]).fold(f64::MAX, f64::min);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        medoids.push(far);
    }

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut assignment = vec![0usize; n];
        let mut cost = 0.0;
        for i in 0..n {
            let (ci, d) = medoids
                .iter()
                .enumerate()
                .map(|(ci, &m)| (ci, dist[i][m]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .unwrap();
            assignment[i] = ci;
            cost += d;
        }
        (assignment, cost)
    };

    let (mut assignment, mut cost) = assign(&medoids);
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut improved = false;
        // For each cluster, try moving the medoid to the member minimising
        // intra-cluster distance (the "alternate" k-medoids step).
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da: f64 = members.iter().map(|&m| dist[a][m]).sum();
                    let db: f64 = members.iter().map(|&m| dist[b][m]).sum();
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            if best != *medoid {
                *medoid = best;
                improved = true;
            }
        }
        if !improved {
            break;
        }
        let (a, co) = assign(&medoids);
        assignment = a;
        cost = co;
    }

    ClusteringResult {
        assignment,
        medoids,
        cost,
        iterations,
    }
}

/// Cluster whole *sessions* (§4.3: "if the CQMS clusters entire query
/// sessions, it can provide better services"). Each session is represented
/// by the union of its queries' feature items; the distance is Jaccard.
/// Returns the session ids in matrix order plus the clustering.
pub fn cluster_sessions(
    storage: &crate::storage::QueryStorage,
    k: usize,
    max_iters: usize,
    seed: u64,
) -> (Vec<crate::model::SessionId>, ClusteringResult) {
    let sessions = storage.session_ids();
    // Each session's item set is the union of its queries' interned
    // feature ids (signatures precompute these; the namespaced interner
    // keys are in bijection with the old `items()` string vocabulary, so
    // the Jaccard values are unchanged).
    let item_sets: Vec<Vec<u32>> = sessions
        .iter()
        .map(|s| {
            let mut ids: Vec<u32> = storage
                .queries_in_session(*s)
                .iter()
                .filter_map(|id| storage.signature(*id))
                .flat_map(|sig| sig.feature_ids())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect();
    // Session bloom = OR of the member blooms (bloom of a union is the OR
    // of the blooms): disjoint blooms prove disjoint item sets, so the
    // pair's Jaccard is exactly 1.0 (0.0 when both sets are empty) with
    // no merge at all.
    let blooms: Vec<u64> = item_sets
        .iter()
        .map(|ids| crate::signature::bloom64(ids.iter().copied()))
        .collect();
    let n = sessions.len();
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = if blooms[i] & blooms[j] == 0 {
                if item_sets[i].is_empty() && item_sets[j].is_empty() {
                    0.0
                } else {
                    1.0
                }
            } else {
                crate::signature::jaccard_ids(&item_sets[i], &item_sets[j])
            };
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let clustering = kmedoids(&dist, k, max_iters, seed);
    (sessions, clustering)
}

/// Cluster purity against ground-truth labels: fraction of items whose
/// cluster's majority label matches their own.
pub fn purity(assignment: &[usize], truth: &[u64]) -> f64 {
    assert_eq!(assignment.len(), truth.len());
    if assignment.is_empty() {
        return 1.0;
    }
    let mut per_cluster: HashMap<usize, HashMap<u64, usize>> = HashMap::new();
    for (&c, &t) in assignment.iter().zip(truth) {
        *per_cluster.entry(c).or_default().entry(t).or_insert(0) += 1;
    }
    let correct: usize = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / assignment.len() as f64
}

/// Adjusted Rand Index between a clustering and ground-truth labels.
pub fn adjusted_rand_index(assignment: &[usize], truth: &[u64]) -> f64 {
    assert_eq!(assignment.len(), truth.len());
    let n = assignment.len();
    if n < 2 {
        return 1.0;
    }
    let mut contingency: HashMap<(usize, u64), u64> = HashMap::new();
    let mut a_sizes: HashMap<usize, u64> = HashMap::new();
    let mut b_sizes: HashMap<u64, u64> = HashMap::new();
    for (&a, &b) in assignment.iter().zip(truth) {
        *contingency.entry((a, b)).or_insert(0) += 1;
        *a_sizes.entry(a).or_insert(0) += 1;
        *b_sizes.entry(b).or_insert(0) += 1;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_ij: f64 = contingency.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = a_sizes.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = b_sizes.values().map(|&v| choose2(v)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs on a line.
    fn blob_distances() -> (Vec<Vec<f64>>, Vec<u64>) {
        let points: Vec<f64> = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let truth = vec![0, 0, 0, 1, 1, 1];
        let n = points.len();
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                dist[i][j] = (points[i] - points[j]).abs();
            }
        }
        (dist, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (dist, truth) = blob_distances();
        let r = kmedoids(&dist, 2, 20, 3);
        assert_eq!(purity(&r.assignment, &truth), 1.0);
        assert!((adjusted_rand_index(&r.assignment, &truth) - 1.0).abs() < 1e-9);
        // All of blob A together, all of blob B together.
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (dist, _) = blob_distances();
        let a = kmedoids(&dist, 2, 20, 7);
        let b = kmedoids(&dist, 2, 20, 7);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn k_clamped_to_n() {
        let (dist, _) = blob_distances();
        let r = kmedoids(&dist, 100, 5, 0);
        assert_eq!(r.medoids.len(), 6);
    }

    #[test]
    fn empty_input() {
        let r = kmedoids(&[], 3, 5, 0);
        assert!(r.assignment.is_empty());
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn ari_is_low_for_random_labels() {
        // Alternating assignment against blob truth.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&bad, &truth);
        assert!(ari < 0.2, "{ari}");
        let p = purity(&bad, &truth);
        assert!(p < 0.9);
    }

    #[test]
    fn cost_decreases_with_more_clusters() {
        let (dist, _) = blob_distances();
        let c1 = kmedoids(&dist, 1, 20, 0).cost;
        let c2 = kmedoids(&dist, 2, 20, 0).cost;
        assert!(c2 < c1);
    }
}
