//! Edit-pattern mining over session edges (§4.3: "by mining common edit
//! patterns, the CQMS could provide better completion or correction
//! suggestions" and "common query evolution patterns … could automatically
//! generate a tutorial … demonstrating common mistakes and good practices").

use crate::storage::QueryStorage;
use std::collections::HashMap;

/// Frequencies of single edits and edit bigrams across session edges.
#[derive(Debug, Default)]
pub struct EditPatternMiner {
    /// edit kind → count.
    unigrams: HashMap<&'static str, u32>,
    /// (previous edge's kind, next edge's kind) → count.
    bigrams: HashMap<(&'static str, &'static str), u32>,
    edges_seen: usize,
}

impl EditPatternMiner {
    /// An empty miner.
    pub fn new() -> Self {
        EditPatternMiner::default()
    }

    /// Mine the storage's session graph from scratch.
    pub fn mine(storage: &QueryStorage) -> EditPatternMiner {
        let mut m = EditPatternMiner::new();
        for session in storage.session_ids() {
            let edges = storage.session_edges(session);
            for e in &edges {
                m.edges_seen += 1;
                for op in &e.edits {
                    *m.unigrams.entry(op.kind()).or_insert(0) += 1;
                }
            }
            for pair in edges.windows(2) {
                for a in &pair[0].edits {
                    for b in &pair[1].edits {
                        *m.bigrams.entry((a.kind(), b.kind())).or_insert(0) += 1;
                    }
                }
            }
        }
        m
    }

    /// Session-graph edges consumed so far.
    pub fn edges_seen(&self) -> usize {
        self.edges_seen
    }

    /// Most common single edits, descending.
    pub fn top_edits(&self, k: usize) -> Vec<(&'static str, u32)> {
        let mut v: Vec<(&'static str, u32)> = self.unigrams.iter().map(|(&a, &c)| (a, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// Most common edit successions, descending.
    pub fn top_bigrams(&self, k: usize) -> Vec<((&'static str, &'static str), u32)> {
        let mut v: Vec<((&'static str, &'static str), u32)> =
            self.bigrams.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Given the user's last edit, what do people usually do next?
    /// Returns (next edit kind, conditional probability).
    pub fn next_edit_distribution(&self, last: &str) -> Vec<(&'static str, f64)> {
        let total: u32 = self
            .bigrams
            .iter()
            .filter(|((a, _), _)| *a == last)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return Vec::new();
        }
        let mut v: Vec<(&'static str, f64)> = self
            .bigrams
            .iter()
            .filter(|((a, _), _)| *a == last)
            .map(|((_, b), &c)| (*b, c as f64 / total as f64))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;
    use sqlparse::diff_statements;

    fn storage_with_session(sqls: &[&str]) -> QueryStorage {
        let mut st = QueryStorage::new();
        let mut prev: Option<(QueryId, sqlparse::Statement)> = None;
        for (i, sql) in sqls.iter().enumerate() {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            let id = QueryId(i as u64);
            st.insert(make_record(
                id,
                UserId(1),
                100 + i as u64,
                sql,
                Some(stmt.clone()),
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(0),
                Visibility::Public,
            ));
            if let Some((pid, pstmt)) = &prev {
                st.add_edge(SessionEdge {
                    from: *pid,
                    to: id,
                    kind: EdgeKind::Evolution,
                    edits: diff_statements(pstmt, &stmt),
                });
            }
            prev = Some((id, stmt));
        }
        st
    }

    #[test]
    fn mines_figure2_patterns() {
        let st = storage_with_session(&workload::querygen::figure2_session());
        let m = EditPatternMiner::mine(&st);
        assert_eq!(m.edges_seen(), 5);
        let top = m.top_edits(3);
        // Figure 2's dominant move is constant tweaking.
        assert!(top.iter().any(|(k, _)| *k == "change_constant"));
        assert!(top.iter().any(|(k, _)| *k == "add_table"));
    }

    #[test]
    fn bigram_transition_probabilities() {
        let st = storage_with_session(&[
            "SELECT * FROM t WHERE x < 1",
            "SELECT * FROM t WHERE x < 2",
            "SELECT * FROM t WHERE x < 3",
            "SELECT * FROM t WHERE x < 3 AND y > 0",
        ]);
        let m = EditPatternMiner::mine(&st);
        let next = m.next_edit_distribution("change_constant");
        assert!(!next.is_empty());
        let total: f64 = next.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_storage_no_patterns() {
        let st = QueryStorage::new();
        let m = EditPatternMiner::mine(&st);
        assert_eq!(m.edges_seen(), 0);
        assert!(m.top_edits(5).is_empty());
        assert!(m.next_edit_distribution("add_table").is_empty());
    }
}
