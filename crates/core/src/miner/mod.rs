//! The Query Miner (Figure 4, §4.3): background analysis of the query log.
//!
//! * [`sessions`] — offline session segmentation + quality metrics;
//! * [`cluster`] — k-medoids query/session clustering with purity and
//!   adjusted-Rand-index scoring against planted truth;
//! * [`assoc`] — Apriori association-rule mining over query feature
//!   itemsets (powers context-aware completion, §2.3);
//! * [`editpatterns`] — frequent edit-sequence mining over session edges;
//! * [`tutorial`] — automatic tutorial generation (§2.3: "introduce each
//!   relation … by showing the user the most popular queries that include
//!   the relation").
//!
//! The miner epoch is also where *scheduled index rebuilds* execute: the
//! Query Storage's [`crate::indexreg::IndexRegistry`] only ever flags
//! that a structural rebuild is wanted (tombstone threshold, maintenance
//! reindex, summary refresh), and [`crate::server::Cqms::run_miner_epoch`]
//! / the background miner thread build generation N+1 — off the write
//! lock when driven through the service layer — and publish it with one
//! atomic swap, keeping index maintenance entirely off the query path.

pub mod assoc;
pub mod cluster;
pub mod editpatterns;
pub mod sessions;
pub mod tutorial;

pub use assoc::{AssocRule, RuleMiner};
pub use cluster::{adjusted_rand_index, kmedoids, purity, ClusteringResult};
pub use editpatterns::EditPatternMiner;
pub use sessions::{segment_log, SegmentationQuality};
pub use tutorial::generate_tutorial;
