//! The Query Miner (Figure 4, §4.3): background analysis of the query log.
//!
//! * [`sessions`] — offline session segmentation + quality metrics;
//! * [`cluster`] — k-medoids query/session clustering with purity and
//!   adjusted-Rand-index scoring against planted truth;
//! * [`assoc`] — Apriori association-rule mining over query feature
//!   itemsets (powers context-aware completion, §2.3);
//! * [`editpatterns`] — frequent edit-sequence mining over session edges;
//! * [`tutorial`] — automatic tutorial generation (§2.3: "introduce each
//!   relation … by showing the user the most popular queries that include
//!   the relation").

pub mod assoc;
pub mod cluster;
pub mod editpatterns;
pub mod sessions;
pub mod tutorial;

pub use assoc::{AssocRule, RuleMiner};
pub use cluster::{adjusted_rand_index, kmedoids, purity, ClusteringResult};
pub use editpatterns::EditPatternMiner;
pub use sessions::{segment_log, SegmentationQuality};
pub use tutorial::generate_tutorial;
