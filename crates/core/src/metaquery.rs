//! The Meta-query Executor (Figure 4, §2.2, §4.2).
//!
//! "A meta-query is a query that searches for queries." This module provides
//! every meta-querying paradigm the paper proposes:
//!
//! * **keyword** and **substring** search (the §2.2 baseline);
//! * **query-by-feature** — arbitrary SQL over the Figure 1 feature
//!   relations, including running the paper's Figure 1 example verbatim, and
//!   the automatic *generation* of such meta-queries from a partially typed
//!   query;
//! * **query-by-parse-tree** — structural predicates over the stored ASTs;
//! * **query-by-data** — classifier search by positive/negative example
//!   tuples (the Lake Washington ∖ Lake Union scenario);
//! * **kNN** similarity queries used by the Assisted Interaction Mode.
//!
//! Every search takes the requesting user and applies §2.4 access control
//! before returning results.

use crate::admin::Directory;
use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::model::{QueryId, QueryRecord, UserId};
use crate::similarity::{self, DistanceKind};
use crate::storage::QueryStorage;
use sqlparse::ast::*;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredHit {
    /// The matching query.
    pub id: QueryId,
    /// Higher is better; semantics depend on the search mode.
    pub score: f64,
}

/// Structural pattern for query-by-parse-tree (§2.2: "conditions on the
/// joined relations, selections, projections, nested subqueries, etc.").
#[derive(Debug, Clone, Default)]
pub struct TreePattern {
    /// Every one of these relations must appear in FROM (any depth).
    pub tables_all: Vec<String>,
    /// At least one of these must appear (when non-empty).
    pub tables_any: Vec<String>,
    /// Requires a comparison predicate on `relName.attrName`, optionally
    /// with a specific operator.
    pub predicate_on: Option<(String, String, Option<String>)>,
    /// Minimum number of distinct relations joined.
    pub min_tables: Option<usize>,
    /// Require (or forbid) nested subqueries.
    pub has_subquery: Option<bool>,
    /// Require (or forbid) aggregation.
    pub has_aggregate: Option<bool>,
    /// All of these columns must be projected (rendered form, lower-case).
    pub projects: Vec<String>,
}

impl TreePattern {
    /// Does `record` match this pattern?
    pub fn matches(&self, record: &QueryRecord) -> bool {
        let f = &record.features;
        for t in &self.tables_all {
            if !f.tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                return false;
            }
        }
        if !self.tables_any.is_empty()
            && !self
                .tables_any
                .iter()
                .any(|t| f.tables.iter().any(|x| x.eq_ignore_ascii_case(t)))
        {
            return false;
        }
        if let Some((rel, attr, op)) = &self.predicate_on {
            let hit = f.predicates.iter().any(|p| {
                p.table.eq_ignore_ascii_case(rel)
                    && p.column.eq_ignore_ascii_case(attr)
                    && op.as_ref().map(|o| p.op == *o).unwrap_or(true)
            });
            if !hit {
                return false;
            }
        }
        if let Some(min) = self.min_tables {
            if f.tables.len() < min {
                return false;
            }
        }
        if let Some(sub) = self.has_subquery {
            if f.has_subquery != sub {
                return false;
            }
        }
        if let Some(agg) = self.has_aggregate {
            if f.has_aggregate != agg {
                return false;
            }
        }
        for p in &self.projects {
            let pl = p.to_ascii_lowercase();
            let hit = f
                .projections
                .iter()
                .any(|x| x == &pl || x.ends_with(&format!(".{pl}")) || x == "*");
            if !hit {
                return false;
            }
        }
        true
    }
}

/// The Meta-query Executor. Every search paradigm is a pure read: the
/// executor borrows the storage *shared*, so any number of concurrent
/// searches can run against one storage (SQL meta-queries go through
/// [`relstore::Engine::query_statement`], whose lazy index maintenance sits
/// behind interior mutability).
pub struct MetaQueryExecutor<'a> {
    /// The query log being searched.
    pub storage: &'a QueryStorage,
    /// ACL checks.
    pub directory: &'a Directory,
    /// Ranking/similarity tunables.
    pub config: &'a CqmsConfig,
}

impl<'a> MetaQueryExecutor<'a> {
    /// Bind an executor over one storage, directory and config.
    pub fn new(
        storage: &'a QueryStorage,
        directory: &'a Directory,
        config: &'a CqmsConfig,
    ) -> Self {
        MetaQueryExecutor {
            storage,
            directory,
            config,
        }
    }

    fn visible(&self, viewer: UserId, record: &QueryRecord) -> bool {
        record.is_live() && self.directory.can_see(viewer, record)
    }

    /// Keyword search over query text (TF-IDF ranked).
    pub fn keyword(&self, viewer: UserId, query: &str, k: usize) -> Vec<ScoredHit> {
        self.storage
            .text_index()
            .search(query, k * 4)
            .into_iter()
            .filter_map(|h| {
                let rec = self.storage.get(QueryId(h.doc)).ok()?;
                self.visible(viewer, rec).then_some(ScoredHit {
                    id: QueryId(h.doc),
                    score: h.score,
                })
            })
            .take(k)
            .collect()
    }

    /// [`MetaQueryExecutor::keyword`] scored against externally supplied
    /// corpus statistics (`total_docs` live documents, per-term document
    /// frequencies `df`). A sharded deployment sums each shard's stats and
    /// passes the totals here, so every shard weighs terms with the
    /// *global* IDF and the cross-shard merge reproduces the unsharded
    /// scores exactly.
    pub fn keyword_with_corpus(
        &self,
        viewer: UserId,
        query: &str,
        k: usize,
        total_docs: u64,
        df: &std::collections::HashMap<String, u64>,
    ) -> Vec<ScoredHit> {
        self.storage
            .text_index()
            .search_with_corpus(query, k * 4, total_docs, df)
            .into_iter()
            .filter_map(|h| {
                let rec = self.storage.get(QueryId(h.doc)).ok()?;
                self.visible(viewer, rec).then_some(ScoredHit {
                    id: QueryId(h.doc),
                    score: h.score,
                })
            })
            .take(k)
            .collect()
    }

    /// Substring search over query text.
    pub fn substring(&self, viewer: UserId, needle: &str) -> Vec<QueryId> {
        self.storage
            .trigram_index()
            .search(needle)
            .into_iter()
            .map(QueryId)
            .filter(|id| {
                self.storage
                    .get(*id)
                    .map(|r| self.visible(viewer, r))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Query-by-feature: run a SQL meta-query over the Figure 1 relations.
    ///
    /// Relation/attribute names are stored canonically lower-cased; string
    /// literals compared against the `relName`/`attrName` columns are folded
    /// to match, so the paper's Figure 1 example runs verbatim.
    pub fn by_feature_sql(
        &self,
        viewer: UserId,
        sql: &str,
    ) -> Result<relstore::QueryResult, CqmsError> {
        let mut stmt = sqlparse::parse(sql)?;
        if let Statement::Select(s) = &mut stmt {
            fold_name_literals(s);
        }
        let mut result = self.storage.meta_engine().query_statement(&stmt)?;
        // ACL: when the result exposes a qid column, filter hidden queries.
        if let Some(qid_col) = result
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case("qid"))
        {
            let rows = std::mem::take(&mut result.rows);
            result.rows = rows
                .into_iter()
                .filter(|row| {
                    row[qid_col]
                        .as_i64()
                        .and_then(|id| self.storage.get(QueryId(id as u64)).ok())
                        .map(|r| self.visible(viewer, r))
                        .unwrap_or(false)
                })
                .collect();
            result.metrics.cardinality = result.rows.len() as u64;
        }
        Ok(result)
    }

    /// §2.2: "the CQMS could automatically generate these statements from
    /// partially written queries". Builds the Figure 1-style meta-query for
    /// a partial query like `SELECT FROM WaterSalinity, WaterTemperature`.
    pub fn generate_feature_query(&self, partial_sql: &str) -> Result<String, CqmsError> {
        let stmt = sqlparse::parse(partial_sql)?;
        let feats = crate::features::extract(&stmt, None);
        let mut from = vec!["Queries Q".to_string()];
        let mut conds: Vec<String> = Vec::new();
        for (i, t) in feats.tables.iter().enumerate() {
            let alias = format!("D{}", i + 1);
            from.push(format!("DataSources {alias}"));
            conds.push(format!("Q.qid = {alias}.qid"));
            conds.push(format!("{alias}.relName = '{t}'"));
        }
        for (i, (t, a)) in feats.attributes.iter().enumerate() {
            let alias = format!("A{}", i + 1);
            from.push(format!("Attributes {alias}"));
            conds.push(format!("Q.qid = {alias}.qid"));
            conds.push(format!("{alias}.attrName = '{a}'"));
            if !t.is_empty() {
                conds.push(format!("{alias}.relName = '{t}'"));
            }
        }
        let mut sql = format!("SELECT Q.qid, Q.qText FROM {}", from.join(", "));
        if !conds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conds.join(" AND "));
        }
        Ok(sql)
    }

    /// Query-by-parse-tree: structural pattern matching over stored ASTs.
    pub fn by_parse_tree(&self, viewer: UserId, pattern: &TreePattern) -> Vec<QueryId> {
        self.storage
            .iter_live()
            .filter(|r| self.visible(viewer, r) && pattern.matches(r))
            .map(|r| r.id)
            .collect()
    }

    /// Query-by-data (§2.2): find queries whose output includes all
    /// `include` values and excludes all `exclude` values.
    ///
    /// Matching runs against stored output summaries. Queries whose summary
    /// is a *sample* can only ever confirm inclusion; exclusion is trusted
    /// only for exhaustive (Full) summaries unless `engine` is provided for
    /// re-execution of sampled candidates.
    pub fn by_data(
        &self,
        viewer: UserId,
        include: &[&str],
        exclude: &[&str],
        engine: Option<&relstore::Engine>,
    ) -> Vec<QueryId> {
        let mut out = Vec::new();
        for r in self.storage.iter_live() {
            if !self.visible(viewer, r) {
                continue;
            }
            // Signature cell-hash screen: absence of a hash proves the
            // value is absent, so most records are rejected without
            // scanning any stored row; a hash hit is re-verified against
            // the rows, so collisions can never flip an answer.
            let sig = self.storage.signature(r.id);
            // The screen is sound only while summaries are immutable
            // outside `QueryStorage::refresh_summary`/`reindex`, which
            // rebuild these hashes. A summary mutated in place through
            // `get_mut` would silently stale the screen — fail loudly.
            debug_assert!(
                sig.map(|g| g.summary_coherent(&r.summary)).unwrap_or(true),
                "stale output summary on {}: refresh summaries via \
                 QueryStorage::refresh_summary, never through get_mut",
                r.id
            );
            let contains = |s: &crate::model::OutputSummary, v: &str| -> bool {
                sig.map(|g| g.may_contain_cell(v)).unwrap_or(true) && s.contains_value(v)
            };
            match &r.summary {
                crate::model::OutputSummary::None => continue,
                s if s.is_exhaustive() => {
                    let inc_ok = include.iter().all(|v| contains(s, v));
                    let exc_ok = exclude.iter().all(|v| !contains(s, v));
                    if inc_ok && exc_ok {
                        out.push(r.id);
                    }
                }
                s => {
                    // Sampled summary: cheap screen, then optionally re-run.
                    if exclude.iter().any(|v| contains(s, v)) {
                        continue;
                    }
                    match engine {
                        None => {
                            // Trust the sample for inclusion when everything
                            // requested is present.
                            if include.iter().all(|v| contains(s, v)) {
                                out.push(r.id);
                            }
                        }
                        Some(en) => {
                            if let Ok(res) = en.query(&r.raw_sql) {
                                let cells: Vec<String> = res
                                    .rows
                                    .iter()
                                    .flat_map(|row| row.iter().map(|v| v.render()))
                                    .collect();
                                let has = |needle: &str| {
                                    cells.iter().any(|c| c.eq_ignore_ascii_case(needle))
                                };
                                if include.iter().all(|v| has(v)) && exclude.iter().all(|v| !has(v))
                                {
                                    out.push(r.id);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// kNN similarity meta-query (§4.2): the `k` nearest live, visible
    /// queries to `target` under the given metric. Self-matches excluded.
    ///
    /// Runs over precomputed similarity signatures. `Features` and
    /// `Combined` additionally prune with the storage's inverted
    /// feature-posting index — a record sharing no feature with the probe
    /// has each per-namespace Jaccard pinned at 1.0 (0.0 when both sides
    /// are empty), so its distance is bounded below in O(1) — while
    /// `Combined` also defers the expensive parse-tree component until the
    /// cheap feature+output lower bound says a record could still make the
    /// top k. Both prunings are *exact*: the result (ids and scores,
    /// ties broken by ascending id) is identical to the brute-force scan,
    /// which the pruning-equivalence proptest asserts.
    pub fn knn(
        &self,
        viewer: UserId,
        target: &QueryRecord,
        k: usize,
        metric: DistanceKind,
    ) -> Vec<ScoredHit> {
        if k == 0 {
            return Vec::new();
        }
        let psig = self.storage.probe_signature(target);
        match metric {
            DistanceKind::Features => self.knn_features(viewer, target, &psig, k),
            DistanceKind::Combined => self.knn_combined(viewer, target, &psig, k),
            DistanceKind::TreeEdit => self.knn_tree_edit(viewer, target, &psig, k),
            DistanceKind::ParseTree => self.knn_parse_tree(viewer, target, &psig, k),
            // Output runs over hashed row sets — already a cheap full scan.
            _ => {
                let mut top = TopK::new(k);
                for r in self.storage.iter_live() {
                    if r.id == target.id || !self.visible(viewer, r) {
                        continue;
                    }
                    let sig = self.storage.signature(r.id).expect("signature per record");
                    let d = similarity::distance_with(target, &psig, r, sig, metric, self.config);
                    top.push(ScoredHit {
                        id: r.id,
                        score: 1.0 - d,
                    });
                }
                top.into_vec()
            }
        }
    }

    /// Feature-metric kNN with posting-index candidate generation.
    fn knn_features(
        &self,
        viewer: UserId,
        target: &QueryRecord,
        psig: &crate::signature::SimSignature,
        k: usize,
    ) -> Vec<ScoredHit> {
        let mut top = TopK::new(k);
        let candidates = self.storage.candidate_ids(psig);
        for &qid in &candidates {
            let Ok(r) = self.storage.get(QueryId(qid)) else {
                continue;
            };
            if r.id == target.id || !self.visible(viewer, r) {
                continue;
            }
            let sig = self.storage.signature(r.id).expect("signature per record");
            top.push(ScoredHit {
                id: r.id,
                score: 1.0 - similarity::feature_distance_sig(psig, sig, self.config),
            });
        }
        // Smallest distance any non-candidate can achieve: every namespace
        // the probe populates contributes its full weight (disjoint sets);
        // namespaces the probe leaves empty can contribute 0 (both empty).
        // Same expression shape as `feature_distance_disjoint`, so the
        // bound is ≤ every non-candidate's distance float-for-float.
        let populated = |s: &[u32]| if s.is_empty() { 0.0 } else { 1.0 };
        let nc_best = self.config.weight_tables * populated(&psig.tables)
            + self.config.weight_attributes * populated(&psig.attributes)
            + self.config.weight_predicates * populated(&psig.predicates);
        let pruned = top.full() && top.worst().map(|w| w.score).unwrap_or(f64::MIN) > 1.0 - nc_best;
        if !pruned {
            // Sparse probe or thin candidate set: finish with a pass over
            // the non-candidates, each an O(1) emptiness-pattern distance.
            for r in self.storage.iter_live() {
                if r.id == target.id
                    || candidates.binary_search(&r.id.0).is_ok()
                    || !self.visible(viewer, r)
                {
                    continue;
                }
                let sig = self.storage.signature(r.id).expect("signature per record");
                top.push(ScoredHit {
                    id: r.id,
                    score: 1.0 - similarity::feature_distance_disjoint(psig, sig, self.config),
                });
            }
        }
        top.into_vec()
    }

    /// Combined-metric kNN: the feature and output components are cheap
    /// over signatures, and the parse-tree term is bounded below by the
    /// precomputed SELECT-profile diff bound (0 when either side has no
    /// profile); records are then visited in bound order and the tree
    /// diff is only computed while a record could still enter the top k.
    fn knn_combined(
        &self,
        viewer: UserId,
        target: &QueryRecord,
        psig: &crate::signature::SimSignature,
        k: usize,
    ) -> Vec<ScoredHit> {
        let candidates = self.storage.candidate_ids(psig);
        let mut bounds: Vec<(f64, QueryId)> = Vec::new();
        for r in self.storage.iter_live() {
            if r.id == target.id || !self.visible(viewer, r) {
                continue;
            }
            let sig = self.storage.signature(r.id).expect("signature per record");
            // Posting-index candidates get the exact merge; everything
            // else is provably feature-disjoint, an O(1) pattern.
            let f = if candidates.binary_search(&r.id.0).is_ok() {
                similarity::feature_distance_sig(psig, sig, self.config)
            } else {
                similarity::feature_distance_disjoint(psig, sig, self.config)
            };
            // Same blend as the exact distance with the tree term at its
            // cheap lower bound (the blend is monotone in every term).
            let t = match (&psig.diff_profile, &sig.diff_profile) {
                (Some(pa), Some(pb)) => sqlparse::edit_distance_lower_bound(pa, pb),
                _ => 0.0,
            };
            let lb = similarity::combined_blend(f, t, similarity::output_distance_sig(psig, sig));
            bounds.push((lb, r.id));
        }
        let mut sweep = BoundSweep::new(bounds, k);
        let mut top = TopK::new(k);
        while let Some((lb, id)) = sweep.next() {
            if top.full() && 1.0 - lb < top.worst().map(|w| w.score).unwrap_or(f64::MIN) {
                break; // every remaining bound is at least as large
            }
            let r = self.storage.get(id).expect("bounded ids exist");
            let sig = self.storage.signature(id).expect("signature per record");
            let d = similarity::distance_with(
                target,
                psig,
                r,
                sig,
                DistanceKind::Combined,
                self.config,
            );
            top.push(ScoredHit { id, score: 1.0 - d });
        }
        top.into_vec()
    }

    /// TreeEdit kNN over the registry's published generation and mutable
    /// head (§4.3's exact Zhang–Shasha metric, sublinear). The sealed
    /// VP-tree snapshot is taken once per probe (one `Arc` clone — no
    /// lock is held while searching, and a concurrent background rebuild
    /// swaps generations without ever blocking this path); records that
    /// arrived after the seal are served from the head VP-tree, tree-less
    /// records (exact distance 1.0) from the two side lists, and
    /// overridden records (reindexed since the covering structure was
    /// built) are re-evaluated from their live signatures. Liveness,
    /// visibility and the self-match are filtered per query through the
    /// accept closure. Exact: ids and scores match the brute-force scan
    /// (`vp_tree_knn_matches_brute_force`).
    fn knn_tree_edit(
        &self,
        viewer: UserId,
        target: &QueryRecord,
        psig: &crate::signature::SimSignature,
        k: usize,
    ) -> Vec<ScoredHit> {
        let mut top = TopK::new(k);
        let (Some(probe_tree), Some(probe_shape)) = (&psig.tree, &psig.tree_shape) else {
            // Unparseable probe: every record is at exactly distance 1.0,
            // so the top k are simply the k smallest visible ids —
            // iter_live yields in id order, stop as soon as k are found.
            for r in self.storage.iter_live() {
                if r.id != target.id && self.visible(viewer, r) {
                    top.push(ScoredHit {
                        id: r.id,
                        score: 0.0,
                    });
                    if top.full() {
                        break;
                    }
                }
            }
            return top.into_vec();
        };
        let reg = self.storage.indexes();
        let sealed = reg.sealed();
        let stats = &reg.stats().tree_edit;
        let mut accept = |qid: u64| {
            qid != target.id.0
                && !reg.overridden(qid)
                && self
                    .storage
                    .get(QueryId(qid))
                    .map(|r| self.visible(viewer, r))
                    .unwrap_or(false)
        };
        // Overridden records: their sealed/head entries are stale, so
        // they are masked above and evaluated from the live signature.
        for qid in reg.override_qids() {
            if qid == target.id.0 {
                continue;
            }
            let Ok(r) = self.storage.get(QueryId(qid)) else {
                continue;
            };
            if !self.visible(viewer, r) {
                continue;
            }
            let sig = self.storage.signature(r.id).expect("signature per record");
            stats.add_exact(1);
            top.push(ScoredHit {
                id: r.id,
                score: 1.0 - similarity::tree_edit_distance_sig(psig, sig),
            });
        }
        // Tree-less records (exact distance 1.0, no DP) — merged from
        // the sealed and head side lists (head qids all sit above the
        // sealed horizon, so the chain stays ascending); they all tie at
        // score 0.0, so the first k accepted suffice.
        let mut merged = 0usize;
        for &qid in sealed.treeless.iter().chain(reg.head_treeless()) {
            if !accept(qid) {
                continue;
            }
            top.push(ScoredHit {
                id: QueryId(qid),
                score: 0.0,
            });
            merged += 1;
            if merged >= k {
                break;
            }
        }
        // Sealed generation, then the head over post-seal arrivals.
        for hits in [
            sealed
                .tree
                .knn(probe_tree, probe_shape, k, &mut accept, stats),
            reg.head_tree()
                .knn(probe_tree, probe_shape, k, &mut accept, stats),
        ] {
            for hit in hits {
                top.push(hit);
            }
        }
        top.into_vec()
    }

    /// ParseTree (diff-based) kNN over the registry's profile-fingerprint
    /// groups: records whose diff-folded SELECTs are identical share one
    /// [`sqlparse::edit_distance_lower_bound`] *and* one exact diff — the
    /// per-probe bound work scales with the number of distinct folded
    /// SELECTs, not with the number of logged queries (a duplicate-heavy
    /// log of one template costs one evaluation, however large). Groups
    /// from the sealed generation and the mutable head are swept together
    /// in bound order, the exact diff runs once per admissible group, and
    /// its distance fans out to the group's visible members. Records
    /// without a folded SELECT (non-SELECT or unparseable statements) are
    /// evaluated per record from the side lists, and overridden records
    /// from their live signatures. Exact:
    /// `parsetree_bounded_knn_matches_brute_force`.
    fn knn_parse_tree(
        &self,
        viewer: UserId,
        target: &QueryRecord,
        psig: &crate::signature::SimSignature,
        k: usize,
    ) -> Vec<ScoredHit> {
        let reg = self.storage.indexes();
        let stats = &reg.stats().parse_tree;
        let mut top = TopK::new(k);
        // Evaluate one record exactly from its live signature.
        let exact = |qid: u64, top: &mut TopK| {
            let Ok(r) = self.storage.get(QueryId(qid)) else {
                return;
            };
            if r.id == target.id || !r.is_live() || !self.visible(viewer, r) {
                return;
            }
            let sig = self.storage.signature(r.id).expect("signature per record");
            let d = similarity::tree_distance_sig(target, psig, r, sig);
            stats.add_exact(1);
            top.push(ScoredHit {
                id: r.id,
                score: 1.0 - d,
            });
        };
        let (Some(pa), Some(probe_folded)) = (&psig.diff_profile, &psig.folded_select) else {
            // Probe without a folded SELECT: every pair is an O(1)-ish
            // statement comparison — a plain scan is already optimal.
            for r in self.storage.iter_live() {
                exact(r.id.0, &mut top);
            }
            return top.into_vec();
        };
        let sealed = reg.sealed();
        // Overridden records (stale group membership) and the ungrouped
        // complement: exact per record, masked out of the group sweep.
        for qid in reg.override_qids() {
            exact(qid, &mut top);
        }
        for &qid in sealed.ungrouped.iter().chain(reg.head_ungrouped()) {
            if !reg.overridden(qid) {
                exact(qid, &mut top);
            }
        }
        // Sweep unit: a template's member lists from the sealed
        // generation and (when the template straddles the horizon) the
        // head, merged so one bound + one exact diff covers both —
        // without the merge, every popular template re-logged after a
        // publish would be evaluated twice per probe until the next
        // rebuild. Sealed qids all sit below head qids, so chaining the
        // two parts keeps member order ascending.
        struct SweepGroup<'g> {
            folded: &'g std::sync::Arc<sqlparse::SelectStatement>,
            profile: &'g sqlparse::SelectProfile,
            parts: [&'g [u64]; 2],
        }
        let mut groups: Vec<SweepGroup<'_>> = sealed
            .groups
            .iter()
            .map(|g| SweepGroup {
                folded: &g.folded,
                profile: &g.profile,
                parts: [&g.members, &[]],
            })
            .collect();
        for hg in reg.head_groups().iter() {
            // Sealed indices come first in `groups`, in iteration order,
            // so the sealed bucket's indices address it directly.
            let twin = sealed.groups.bucket(hg.fp).iter().copied().find(|&i| {
                let sg = &groups[i as usize];
                std::sync::Arc::ptr_eq(sg.folded, &hg.folded) || *sg.folded == hg.folded
            });
            match twin {
                Some(i) => groups[i as usize].parts[1] = &hg.members,
                None => groups.push(SweepGroup {
                    folded: &hg.folded,
                    profile: &hg.profile,
                    parts: [&hg.members, &[]],
                }),
            }
        }
        // Bound ascending (ties by smallest member qid so the plateau
        // shortcut below stays exact).
        let mut order: Vec<(f64, u32)> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                (
                    sqlparse::edit_distance_lower_bound(pa, g.profile),
                    gi as u32,
                )
            })
            .collect();
        order.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    groups[a.1 as usize].parts[0][0].cmp(&groups[b.1 as usize].parts[0][0])
                })
        });
        let member_count = |g: &SweepGroup<'_>| (g.parts[0].len() + g.parts[1].len()) as u64;
        let mut next = 0usize;
        while next < order.len() {
            let (lb, gi) = order[next];
            next += 1;
            let g = &groups[gi as usize];
            if let Some(w) = top.worst() {
                let bound_score = 1.0 - lb;
                if bound_score < w.score {
                    // Bound-ordered: no remaining group can enter the top k.
                    let skipped: u64 = order[next - 1..]
                        .iter()
                        .map(|&(_, i)| member_count(&groups[i as usize]))
                        .sum();
                    stats.add_hits(skipped);
                    break;
                }
                // Tie plateau: a group whose *bound* only ties the k-th
                // score can at best tie it exactly (exact ≥ bound), and
                // members are ascending — if even the smallest cannot win
                // the id tie-break, no member can.
                if bound_score == w.score && g.parts[0][0] > w.id.0 {
                    stats.add_hits(member_count(g));
                    continue;
                }
            }
            // One exact diff for the whole template.
            let d = sqlparse::diff::edit_distance_normalized_folded(probe_folded, g.folded);
            stats.add_exact(1);
            stats.add_hits(member_count(g) - 1);
            // Members tie at the same score, ascending ids: only the
            // first k accepted can matter.
            let mut pushed = 0usize;
            'members: for part in g.parts {
                for &qid in part {
                    if qid == target.id.0 || reg.overridden(qid) {
                        continue;
                    }
                    let Ok(r) = self.storage.get(QueryId(qid)) else {
                        continue;
                    };
                    if !self.visible(viewer, r) {
                        continue;
                    }
                    top.push(ScoredHit {
                        id: r.id,
                        score: 1.0 - d,
                    });
                    pushed += 1;
                    if pushed >= k {
                        break 'members;
                    }
                }
            }
        }
        top.into_vec()
    }

    /// kNN against ad-hoc SQL text that is not in the log (used while the
    /// user is composing a query, §2.3).
    pub fn knn_sql(
        &self,
        viewer: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        let stmt = sqlparse::parse(sql)?;
        let feats = crate::features::extract(&stmt, None);
        let probe = crate::storage::make_record(
            QueryId(u64::MAX),
            viewer,
            0,
            sql,
            Some(stmt),
            feats,
            Default::default(),
            crate::model::OutputSummary::None,
            crate::model::SessionId(u64::MAX),
            crate::model::Visibility::Private,
        );
        Ok(self.knn(viewer, &probe, k, metric))
    }
}

/// Bound-ordered sweep scaffold shared by the Combined and ParseTree kNN
/// paths: yields `(lower bound, id)` in (bound ascending, id ascending)
/// order. The sweep almost always terminates within a handful of
/// entries, so instead of a full O(n log n) sort it selects and sorts a
/// small prefix up front and sorts the tail only if the sweep outlives
/// the prefix.
struct BoundSweep {
    bounds: Vec<(f64, QueryId)>,
    prefix: usize,
    i: usize,
    tail_sorted: bool,
}

impl BoundSweep {
    fn new(mut bounds: Vec<(f64, QueryId)>, k: usize) -> BoundSweep {
        fn by_bound(a: &(f64, QueryId), b: &(f64, QueryId)) -> std::cmp::Ordering {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        }
        let prefix = (4 * k + 32).min(bounds.len());
        if prefix < bounds.len() {
            bounds.select_nth_unstable_by(prefix - 1, by_bound);
            bounds[..prefix].sort_unstable_by(by_bound);
        } else {
            bounds.sort_unstable_by(by_bound);
        }
        let tail_sorted = prefix >= bounds.len();
        BoundSweep {
            bounds,
            prefix,
            i: 0,
            tail_sorted,
        }
    }

    fn next(&mut self) -> Option<(f64, QueryId)> {
        if self.i == self.prefix && !self.tail_sorted {
            self.bounds[self.prefix..].sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });
            self.tail_sorted = true;
        }
        let out = self.bounds.get(self.i).copied();
        self.i += 1;
        out
    }
}

/// Bounded best-k accumulator with brute-force-identical ordering
/// (score descending, then id ascending). `k` is small on every call
/// site, so ordered insertion beats a heap here. Shared with the metric
/// index, whose VP-tree search must replicate this exact ordering.
pub(crate) struct TopK {
    k: usize,
    items: Vec<ScoredHit>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    pub(crate) fn full(&self) -> bool {
        self.items.len() == self.k
    }

    /// The current k-th best (worst retained) hit, if `k` are held.
    pub(crate) fn worst(&self) -> Option<&ScoredHit> {
        if self.full() {
            self.items.last()
        } else {
            None
        }
    }

    pub(crate) fn push(&mut self, hit: ScoredHit) {
        let beats =
            |a: &ScoredHit, b: &ScoredHit| a.score > b.score || (a.score == b.score && a.id < b.id);
        if let Some(w) = self.worst() {
            if !beats(&hit, w) {
                return;
            }
        }
        let pos = self.items.partition_point(|x| beats(x, &hit));
        self.items.insert(pos, hit);
        self.items.truncate(self.k);
    }

    pub(crate) fn into_vec(self) -> Vec<ScoredHit> {
        self.items
    }
}

/// Fold string literals compared against name-carrying feature columns
/// (`relName`, `attrName`) to lower case, so meta-queries match the
/// canonical stored form regardless of the case the user typed.
fn fold_name_literals(s: &mut SelectStatement) {
    fn name_col(e: &Expr) -> bool {
        matches!(e, Expr::Column(c)
            if c.name.eq_ignore_ascii_case("relname") || c.name.eq_ignore_ascii_case("attrname"))
    }
    fn walk(e: &mut Expr) {
        match e {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                if name_col(left) {
                    if let Expr::Literal(Literal::Str(v)) = &mut **right {
                        *v = v.to_ascii_lowercase();
                    }
                }
                if name_col(right) {
                    if let Expr::Literal(Literal::Str(v)) = &mut **left {
                        *v = v.to_ascii_lowercase();
                    }
                }
                walk(left);
                walk(right);
            }
            Expr::Binary { left, right, .. } => {
                walk(left);
                walk(right);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk(expr),
            Expr::InList { expr, list, .. } => {
                if name_col(expr) {
                    for item in list.iter_mut() {
                        if let Expr::Literal(Literal::Str(v)) = item {
                            *v = v.to_ascii_lowercase();
                        }
                    }
                }
                walk(expr);
            }
            Expr::InSubquery { expr, subquery, .. } => {
                walk(expr);
                fold_name_literals(subquery);
            }
            Expr::Exists { subquery, .. } => fold_name_literals(subquery),
            Expr::ScalarSubquery(sub) => fold_name_literals(sub),
            _ => {}
        }
    }
    if let Some(w) = &mut s.where_clause {
        walk(w);
    }
    if let Some(h) = &mut s.having {
        walk(h);
    }
}

/// The verbatim Figure 1 meta-query from the paper.
pub const FIGURE1_META_QUERY: &str = "SELECT Q.qid, Q.qText \
FROM Queries Q, Attributes A1, Attributes A2 \
WHERE Q.qid = A1.qid AND Q.qid = A2.qid \
AND A1.attrName = 'salinity' \
AND A1.relName = 'WaterSalinity' \
AND A2.attrName = 'temp' \
AND A2.relName = 'WaterTemp'";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::Directory;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn add(storage: &mut QueryStorage, id: u64, user: u32, sql: &str, vis: Visibility) {
        let stmt = sqlparse::parse(sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        storage.insert(make_record(
            QueryId(id),
            UserId(user),
            100 + id,
            sql,
            stmt,
            feats,
            RuntimeFeatures {
                success: true,
                ..Default::default()
            },
            OutputSummary::None,
            SessionId(id),
            vis,
        ));
    }

    fn setup() -> (QueryStorage, Directory, CqmsConfig) {
        let mut st = QueryStorage::new();
        add(
            &mut st,
            0,
            1,
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T \
             WHERE S.loc_x = T.loc_x AND S.salinity > 0.2 AND T.temp < 18",
            Visibility::Public,
        );
        add(
            &mut st,
            1,
            1,
            "SELECT * FROM WaterTemp WHERE temp < 22",
            Visibility::Public,
        );
        add(
            &mut st,
            2,
            2,
            "SELECT city FROM CityLocations WHERE pop > 100000",
            Visibility::Public,
        );
        add(
            &mut st,
            3,
            2,
            "SELECT secret FROM PrivateStuff",
            Visibility::Private,
        );
        (st, Directory::new(), CqmsConfig::default())
    }

    #[test]
    fn figure1_meta_query_runs_verbatim() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let r = mq.by_feature_sql(UserId(1), FIGURE1_META_QUERY).unwrap();
        // Only query 0 correlates salinity with temp.
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].render(), "0");
        assert!(r.rows[0][1].render().contains("WaterSalinity"));
    }

    #[test]
    fn keyword_and_substring_search() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let hits = mq.keyword(UserId(1), "salinity", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, QueryId(0));
        let subs = mq.substring(UserId(1), "temp < 22");
        assert_eq!(subs, vec![QueryId(1)]);
    }

    #[test]
    fn acl_hides_private_queries() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        // Owner sees it.
        assert_eq!(mq.substring(UserId(2), "PrivateStuff").len(), 1);
        // Others don't.
        assert!(mq.substring(UserId(1), "PrivateStuff").is_empty());
        let hits = mq.keyword(UserId(1), "secret", 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn acl_filters_feature_sql_by_qid() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let all = mq
            .by_feature_sql(UserId(2), "SELECT qid FROM Queries")
            .unwrap();
        assert_eq!(all.rows.len(), 4);
        let filtered = mq
            .by_feature_sql(UserId(1), "SELECT qid FROM Queries")
            .unwrap();
        assert_eq!(filtered.rows.len(), 3);
    }

    #[test]
    fn generated_feature_query_finds_matches() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        // The paper's partial query example (§2.2).
        let sql = mq
            .generate_feature_query("SELECT FROM WaterSalinity, WaterTemp")
            .unwrap();
        assert!(sql.contains("DataSources"));
        let r = mq.by_feature_sql(UserId(1), &sql).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].render(), "0");
    }

    #[test]
    fn parse_tree_patterns() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        // All queries touching WaterTemp.
        let p = TreePattern {
            tables_all: vec!["watertemp".into()],
            ..Default::default()
        };
        assert_eq!(mq.by_parse_tree(UserId(1), &p).len(), 2);
        // Predicate on watertemp.temp with `<`.
        let p = TreePattern {
            predicate_on: Some(("watertemp".into(), "temp".into(), Some("<".into()))),
            ..Default::default()
        };
        assert_eq!(mq.by_parse_tree(UserId(1), &p).len(), 2);
        // Joins of at least two tables.
        let p = TreePattern {
            min_tables: Some(2),
            ..Default::default()
        };
        assert_eq!(mq.by_parse_tree(UserId(1), &p), vec![QueryId(0)]);
        // Projection requirement: `SELECT *` projects everything, so the
        // wildcard query matches alongside the explicit `SELECT city`.
        let p = TreePattern {
            projects: vec!["city".into()],
            ..Default::default()
        };
        assert_eq!(
            mq.by_parse_tree(UserId(1), &p),
            vec![QueryId(1), QueryId(2)]
        );
    }

    #[test]
    fn by_data_lake_washington_scenario() {
        // The §2.2 example: "all queries whose output includes Lake
        // Washington but not Lake Union … all matching queries specify
        // temp < 18".
        let mut st = QueryStorage::new();
        let mk_summary = |rows: Vec<&str>| OutputSummary::Full {
            columns: vec!["lake".into()],
            rows: rows.into_iter().map(|l| vec![l.to_string()]).collect(),
        };
        let mut add_with = |id: u64, sql: &str, rows: Vec<&str>| {
            let stmt = sqlparse::parse(sql).ok();
            let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
            let mut rec = make_record(
                QueryId(id),
                UserId(1),
                100,
                sql,
                stmt,
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(id),
                Visibility::Public,
            );
            rec.summary = mk_summary(rows);
            st.insert(rec);
        };
        add_with(
            0,
            "SELECT lake FROM WaterTemp WHERE temp < 18",
            vec!["Lake Washington", "Lake Sammamish"],
        );
        add_with(
            1,
            "SELECT lake FROM WaterTemp WHERE temp < 25",
            vec!["Lake Washington", "Lake Union"],
        );
        add_with(
            2,
            "SELECT lake FROM WaterTemp WHERE temp > 20",
            vec!["Lake Union"],
        );
        let dir = Directory::new();
        let cfg = CqmsConfig::default();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let hits = mq.by_data(UserId(1), &["Lake Washington"], &["Lake Union"], None);
        assert_eq!(hits, vec![QueryId(0)]);
        // And indeed that query specifies temp < 18.
        assert!(st.get(QueryId(0)).unwrap().raw_sql.contains("temp < 18"));
    }

    /// Acceptance: no TreeEdit/ParseTree probe ever executes an inline
    /// full index rebuild. Forcing the tombstone threshold only
    /// *schedules* a rebuild; probes keep reading the published
    /// generation (the `MetricIndexStats` generation counter is
    /// untouched by any number of probes) and stay exact; the rebuild
    /// runs in the miner-epoch maintenance pass and becomes visible
    /// after exactly one atomic swap (+1 on the counter).
    #[test]
    fn probes_never_rebuild_inline() {
        use std::sync::atomic::Ordering;
        let mut st = QueryStorage::new();
        for i in 0..12u64 {
            add(
                &mut st,
                i,
                1,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                Visibility::Public,
            );
        }
        add(
            &mut st,
            12,
            1,
            "SELECT city FROM CityLocations",
            Visibility::Public,
        );
        // Seal the log into generation 1 (the steady state a running
        // miner maintains).
        st.schedule_index_rebuild();
        st.run_index_maintenance();
        assert_eq!(st.index_generation(), 1);
        let brute = |st: &QueryStorage, _dir: &Directory, cfg: &CqmsConfig, m| {
            let probe = st.get(QueryId(12)).unwrap().clone();
            let psig = st.probe_signature(&probe);
            let mut hits: Vec<ScoredHit> = st
                .iter_live()
                .filter(|r| r.id != probe.id)
                .map(|r| ScoredHit {
                    id: r.id,
                    score: 1.0
                        - crate::similarity::distance_with(
                            &probe,
                            &psig,
                            r,
                            st.signature(r.id).unwrap(),
                            m,
                            cfg,
                        ),
                })
                .collect();
            hits.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then_with(|| a.id.cmp(&b.id))
            });
            hits.truncate(3);
            hits
        };
        // Force the tombstone threshold: > 25% of indexed records die.
        for i in 0..5u64 {
            st.delete(QueryId(i)).unwrap();
        }
        assert!(st.index_rebuild_pending(), "threshold schedules");
        assert_eq!(st.index_generation(), 1, "…but does not rebuild");
        let (dir, cfg) = (Directory::new(), CqmsConfig::default());
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let probe = st.get(QueryId(12)).unwrap().clone();
        for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
            let got = mq.knn(UserId(1), &probe, 3, metric);
            assert_eq!(got, brute(&st, &dir, &cfg, metric), "{metric:?}");
        }
        // Probes read the published generation; they never advance it.
        assert_eq!(st.index_generation(), 1);
        assert!(st.index_rebuild_pending());
        assert_eq!(
            st.metric_stats().rebuilds_completed.load(Ordering::Relaxed),
            1
        );
        // The miner-epoch pass publishes with one atomic swap.
        assert!(st.run_index_maintenance());
        assert_eq!(st.index_generation(), 2);
        assert!(!st.index_rebuild_pending());
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
            let got = mq.knn(UserId(1), &probe, 3, metric);
            assert_eq!(got, brute(&st, &dir, &cfg, metric), "{metric:?} post-swap");
        }
    }

    /// The grouped ParseTree sweep does one exact diff per distinct
    /// folded SELECT, not per record: a duplicate-heavy store costs the
    /// probe the same number of exact evaluations as its tiny template
    /// pool.
    #[test]
    fn parse_tree_group_sweep_scales_with_groups() {
        use std::sync::atomic::Ordering;
        let mut st = QueryStorage::new();
        // 120 records re-running 3 distinct statements (the popular-query
        // pattern: identical SQL logged over and over, differing only in
        // letter case — folded away by the differ).
        for i in 0..120u64 {
            let sql = match i % 3 {
                0 if i % 2 == 0 => "SELECT * FROM WaterTemp WHERE temp < 18",
                0 => "select * from watertemp where temp < 18",
                1 => "SELECT city FROM CityLocations WHERE pop > 1000",
                _ => "SELECT * FROM Lakes WHERE area > 50",
            };
            add(&mut st, i, 1, sql, Visibility::Public);
        }
        st.schedule_index_rebuild();
        st.run_index_maintenance();
        assert_eq!(st.indexes().sealed().groups.len(), 3);
        let (dir, cfg) = (Directory::new(), CqmsConfig::default());
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let probe = st.get(QueryId(0)).unwrap().clone();
        st.metric_stats().parse_tree.reset();
        let hits = mq.knn(UserId(1), &probe, 5, DistanceKind::ParseTree);
        assert_eq!(hits.len(), 5);
        let exact = st
            .metric_stats()
            .parse_tree
            .exact_evals
            .load(Ordering::Relaxed);
        assert!(exact <= 3, "one diff per group, got {exact}");
    }

    #[test]
    fn knn_orders_by_similarity() {
        let (st, dir, cfg) = setup();
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let hits = mq
            .knn_sql(
                UserId(1),
                "SELECT * FROM WaterTemp WHERE temp < 20",
                2,
                DistanceKind::Combined,
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        // The single-table WaterTemp query is nearer than the join.
        assert_eq!(hits[0].id, QueryId(1));
        assert!(hits[0].score > hits[1].score);
    }
}
