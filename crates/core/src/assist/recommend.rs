//! Full-query recommendation — the "Similar Queries" panel of Figure 3.
//!
//! "A CQMS could also perform complete query recommendations, showing logged
//! queries similar to those the user recently issued" (§2.3). Each panel row
//! carries the combined rank score (shown as a percentage), the query text,
//! the diff against the user's query (`-1 col, -1 pred`) and the annotation
//! digest — exactly the columns of Figure 3.

use crate::admin::Directory;
use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::metaquery::MetaQueryExecutor;
use crate::model::{QueryRecord, UserId};
use crate::similarity::{self, DistanceKind};
use crate::storage::QueryStorage;

/// One row of the Figure 3 recommendation panel.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelRow {
    /// Rank score in percent (Fig. 3 shows `[100%]`, `[98%]`, `[75%]`).
    pub score_pct: u8,
    /// The recommended SQL text.
    pub sql: String,
    /// Diff summary against the seed query (`none`, `-1 col`, …).
    pub diff: String,
    /// First-annotation digest (possibly empty).
    pub annotation: String,
    /// The recommended query's id.
    pub id: crate::model::QueryId,
}

/// Compute the recommendation panel for `seed_sql` on behalf of `viewer`.
///
/// The candidate search runs through the signature-backed kNN
/// ([`MetaQueryExecutor::knn`] with the Combined metric): the probe is
/// interned against the storage's feature vocabulary once and the
/// posting-index/lower-bound pruning applies, so panel latency tracks the
/// number of genuinely similar queries rather than the log size.
pub fn recommend_panel(
    storage: &QueryStorage,
    directory: &Directory,
    config: &CqmsConfig,
    viewer: UserId,
    seed_sql: &str,
    k: usize,
) -> Result<Vec<PanelRow>, CqmsError> {
    let hits = knn_candidates(storage, directory, config, viewer, seed_sql, k * 3)?;
    let pairs: Vec<(crate::model::QueryId, f64)> = hits.iter().map(|h| (h.id, h.score)).collect();
    let now_ts = panel_now_ts(storage);
    let max_pop = storage.max_popularity();
    let mut rows = panel_rows_for(storage, config, seed_sql, &pairs, now_ts, max_pop, &|fp| {
        storage.popularity(fp)
    })?;
    sort_panel_rows(&mut rows);
    Ok(rows.into_iter().map(|(_, r)| r).take(k).collect())
}

/// The trace time the recency term decays from: the newest logged
/// timestamp. A sharded deployment takes the max across shards.
pub fn panel_now_ts(storage: &QueryStorage) -> u64 {
    storage.iter().map(|r| r.ts).max().unwrap_or(0)
}

/// The panel's kNN candidate pool for `seed_sql`: the top `m` Combined
/// hits visible to `viewer`, in the executor's (score desc, id asc)
/// order. Sharded deployments run this per shard and merge with the same
/// comparator, which reproduces a single instance's pool exactly.
pub fn knn_candidates(
    storage: &QueryStorage,
    directory: &Directory,
    config: &CqmsConfig,
    viewer: UserId,
    seed_sql: &str,
    m: usize,
) -> Result<Vec<crate::metaquery::ScoredHit>, CqmsError> {
    let stmt = sqlparse::parse(seed_sql)?;
    let feats = crate::features::extract(&stmt, None);
    let probe = crate::storage::make_record(
        crate::model::QueryId(u64::MAX),
        viewer,
        u64::MAX, // not used for ranking of the probe itself
        seed_sql,
        Some(stmt),
        feats,
        Default::default(),
        crate::model::OutputSummary::None,
        crate::model::SessionId(u64::MAX),
        crate::model::Visibility::Private,
    );
    let mq = MetaQueryExecutor::new(storage, directory, config);
    Ok(mq.knn(viewer, &probe, m, DistanceKind::Combined))
}

/// Score `(candidate id, knn score)` pairs living in *this* storage into
/// `(rank score, panel row)` rows using externally supplied corpus-wide
/// terms (`now_ts`, `max_pop`, template popularity). With local values
/// those are exactly [`recommend_panel`]'s rows; a sharded deployment
/// passes the merged global values instead so a candidate's rank score
/// is placement-independent.
pub fn panel_rows_for(
    storage: &QueryStorage,
    config: &CqmsConfig,
    seed_sql: &str,
    hits: &[(crate::model::QueryId, f64)],
    now_ts: u64,
    max_pop: u32,
    popularity_of: &dyn Fn(u64) -> u32,
) -> Result<Vec<(f64, PanelRow)>, CqmsError> {
    let stmt = sqlparse::parse(seed_sql)?;
    let mut rows: Vec<(f64, PanelRow)> = Vec::with_capacity(hits.len());
    for &(id, knn_score) in hits {
        let rec: &QueryRecord = storage.get(id)?;
        let dist = 1.0 - knn_score;
        let score = similarity::rank_score(
            rec,
            dist,
            now_ts,
            max_pop,
            popularity_of(rec.template_fp),
            config,
        );
        let diff = match (&stmt, &rec.statement) {
            (sqlparse::Statement::Select(a), Some(sqlparse::Statement::Select(b))) => {
                sqlparse::summarize_edits(&sqlparse::diff_selects(a, b))
            }
            _ => "n/a".to_string(),
        };
        rows.push((
            score,
            PanelRow {
                score_pct: (score * 100.0).round().clamp(0.0, 100.0) as u8,
                sql: rec.raw_sql.clone(),
                diff,
                annotation: rec.annotation_digest(),
                id: rec.id,
            },
        ));
    }
    Ok(rows)
}

/// The panel's final order: rank score descending, id ascending.
pub fn sort_panel_rows(rows: &mut [(f64, PanelRow)]) {
    rows.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.id.cmp(&b.1.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn seeded() -> (QueryStorage, Directory) {
        let mut st = QueryStorage::new();
        let specs: Vec<(&str, u64)> = vec![
            // Popular template: temps of lakes (3 instances).
            ("SELECT * FROM WaterTemp WHERE temp < 18", 100),
            ("SELECT * FROM WaterTemp WHERE temp < 22", 200),
            ("SELECT * FROM WaterTemp WHERE temp < 10", 300),
            // A joined variant.
            (
                "SELECT T.temp FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x",
                400,
            ),
            // Unrelated.
            ("SELECT city FROM CityLocations", 500),
        ];
        for (i, (sql, ts)) in specs.iter().enumerate() {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            st.insert(make_record(
                QueryId(i as u64),
                UserId(2),
                *ts,
                sql,
                Some(stmt),
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(i as u64),
                Visibility::Public,
            ));
        }
        st.annotate(
            QueryId(0),
            Annotation {
                author: UserId(2),
                at: 150,
                text: "find temp and salinity of Seattle lakes".into(),
                fragment: None,
            },
        )
        .unwrap();
        (st, Directory::new())
    }

    #[test]
    fn panel_rows_have_figure3_columns() {
        let (st, dir) = seeded();
        let cfg = CqmsConfig::default();
        let rows = recommend_panel(
            &st,
            &dir,
            &cfg,
            UserId(1),
            "SELECT * FROM WaterTemp WHERE temp < 20",
            3,
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        // Best hits are the same-template queries; their diff is a constant
        // change, summarised as `~1 const`.
        assert!(rows[0].diff.contains("const"), "{rows:?}");
        assert!(rows[0].score_pct >= rows[1].score_pct);
        assert!(rows[1].score_pct >= rows[2].score_pct);
        // The annotated query surfaces its annotation.
        assert!(rows.iter().any(|r| r.annotation.contains("Seattle lakes")));
    }

    #[test]
    fn unrelated_queries_rank_last() {
        let (st, dir) = seeded();
        let cfg = CqmsConfig::default();
        let rows = recommend_panel(
            &st,
            &dir,
            &cfg,
            UserId(1),
            "SELECT * FROM WaterTemp WHERE temp < 20",
            5,
        )
        .unwrap();
        let city_pos = rows
            .iter()
            .position(|r| r.sql.contains("CityLocations"))
            .unwrap();
        assert_eq!(city_pos, rows.len() - 1);
    }

    #[test]
    fn bad_seed_sql_errors() {
        let (st, dir) = seeded();
        let cfg = CqmsConfig::default();
        assert!(recommend_panel(&st, &dir, &cfg, UserId(1), "SELEC nope", 3).is_err());
    }
}
