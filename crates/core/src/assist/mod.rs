//! Assisted Interaction Mode (§2.3): the CQMS watches the user type and
//! offers completions, corrections and full-query recommendations — the
//! behaviour visualised in the paper's Figure 3.

pub mod completion;
pub mod correction;
pub mod recommend;

pub use completion::{CompletionContext, CompletionEngine, Suggestion};
pub use correction::{Correction, CorrectionEngine, RepairSuggestion};
pub use recommend::{recommend_panel, PanelRow};
