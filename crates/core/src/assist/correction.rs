//! Automated query correction (§2.3).
//!
//! "Like a spell checker, while a user types a query, the CQMS suggests
//! corrections to relation and attribute names but also changes to entire
//! query clauses. For instance, if a predicate causes a query to return the
//! empty set, the CQMS could suggest similar, previously issued predicates
//! that return a non-empty set."

use crate::storage::QueryStorage;
use sqlparse::ast::*;
use sqlparse::printer::expr_to_sql;
use std::collections::HashMap;

/// A spell-check style identifier correction.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// The misspelled identifier as typed.
    pub wrong: String,
    /// The suggested replacement (catalog spelling).
    pub suggestion: String,
    /// Levenshtein distance (1 is a near-certain typo).
    pub distance: usize,
    /// `"table"` or `"column"`.
    pub kind: &'static str,
}

/// A repair for an empty-result query.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairSuggestion {
    /// Human-readable description of the change.
    pub description: String,
    /// The repaired SQL, verified to return rows.
    pub sql: String,
    /// Cardinality of the repaired query's result.
    pub resulting_rows: u64,
}

/// Correction engine over a data engine's catalog and the query log.
pub struct CorrectionEngine<'a> {
    /// The query log consulted for repairs.
    pub storage: &'a QueryStorage,
}

impl<'a> CorrectionEngine<'a> {
    /// Bind a correction engine over the storage.
    pub fn new(storage: &'a QueryStorage) -> Self {
        CorrectionEngine { storage }
    }

    /// Spell-check relation and attribute names of `sql` against the
    /// catalog. Returns corrections for identifiers that do not resolve.
    pub fn check_identifiers(&self, engine: &relstore::Engine, sql: &str) -> Vec<Correction> {
        let Ok(stmt) = sqlparse::parse(sql) else {
            return Vec::new();
        };
        let feats = crate::features::extract(&stmt, Some(&engine.catalog));
        let mut out = Vec::new();

        let tables = engine.catalog.table_names();
        let tables_lower: Vec<String> = tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        for t in &feats.tables {
            if tables_lower.contains(t) {
                continue;
            }
            if let Some((best, d)) = nearest(t, tables.iter().map(String::as_str)) {
                if d <= 2 {
                    out.push(Correction {
                        wrong: t.clone(),
                        suggestion: best.to_string(),
                        distance: d,
                        kind: "table",
                    });
                }
            }
        }

        // Columns: validate each referenced attribute against its resolved
        // table (or any in-query table when unresolved).
        for (t, a) in &feats.attributes {
            let candidates: Vec<String> = if !t.is_empty() && tables_lower.contains(t) {
                engine
                    .catalog
                    .table(t)
                    .map(|tb| tb.schema.column_names())
                    .unwrap_or_default()
            } else {
                feats
                    .tables
                    .iter()
                    .filter_map(|ft| engine.catalog.table(ft).ok())
                    .flat_map(|tb| tb.schema.column_names())
                    .collect()
            };
            if candidates.is_empty() {
                continue;
            }
            let lower: Vec<String> = candidates.iter().map(|c| c.to_ascii_lowercase()).collect();
            if lower.contains(a) {
                continue;
            }
            if let Some((best, d)) = nearest(a, candidates.iter().map(String::as_str)) {
                if d <= 2 {
                    out.push(Correction {
                        wrong: a.clone(),
                        suggestion: best.to_string(),
                        distance: d,
                        kind: "column",
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            a.distance
                .cmp(&b.distance)
                .then_with(|| a.wrong.cmp(&b.wrong))
        });
        out.dedup();
        out
    }

    /// Repair an empty-result SELECT (§2.3): try dropping each conjunct and
    /// replacing predicate constants with popular constants from the log;
    /// keep candidates that actually return rows (verified by execution).
    pub fn repair_empty_result(
        &self,
        engine: &relstore::Engine,
        sql: &str,
        max_suggestions: usize,
    ) -> Vec<RepairSuggestion> {
        let Ok(Statement::Select(base)) = sqlparse::parse(sql) else {
            return Vec::new();
        };
        // Only meaningful when the query indeed returns nothing.
        match engine.query_statement(&Statement::Select(base.clone())) {
            Ok(r) if r.rows.is_empty() => {}
            _ => return Vec::new(),
        }
        let conjuncts: Vec<Expr> = base
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        let mut candidates: Vec<(String, SelectStatement)> = Vec::new();

        // (a) Drop one conjunct at a time.
        for i in 0..conjuncts.len() {
            let mut rest = conjuncts.clone();
            let dropped = rest.remove(i);
            let mut cand = base.clone();
            cand.where_clause = Expr::from_conjuncts(rest);
            candidates.push((format!("drop predicate '{}'", expr_to_sql(&dropped)), cand));
        }

        // (b) Replace the constant of each comparison conjunct with popular
        // constants from the log for the same (column, op).
        let popular = self.popular_constants();
        for (i, c) in conjuncts.iter().enumerate() {
            let Expr::Binary { left, op, right } = c else {
                continue;
            };
            if !op.is_comparison() {
                continue;
            }
            let (col, _lit) = match (&**left, &**right) {
                (Expr::Column(col), Expr::Literal(l)) if l.is_constant() => (col, l),
                _ => continue,
            };
            let key = (col.name.to_ascii_lowercase(), op.as_str().to_string());
            if let Some(consts) = popular.get(&key) {
                for replacement in consts.iter().take(3) {
                    if let Ok(lit_expr) = sqlparse::parse_expression(replacement) {
                        let mut new_conj = conjuncts.clone();
                        new_conj[i] = Expr::Binary {
                            left: left.clone(),
                            op: *op,
                            right: Box::new(lit_expr),
                        };
                        let mut cand = base.clone();
                        cand.where_clause = Expr::from_conjuncts(new_conj);
                        candidates.push((
                            format!(
                                "replace '{}' with '{} {} {}'",
                                expr_to_sql(c),
                                col,
                                op.as_str(),
                                replacement
                            ),
                            cand,
                        ));
                    }
                }
            }
        }

        // Verify: keep candidates that return rows.
        let mut out = Vec::new();
        for (description, cand) in candidates {
            if out.len() >= max_suggestions {
                break;
            }
            let stmt = Statement::Select(cand);
            if let Ok(r) = engine.query_statement(&stmt) {
                if !r.rows.is_empty() {
                    out.push(RepairSuggestion {
                        description,
                        sql: sqlparse::to_sql(&stmt),
                        resulting_rows: r.rows.len() as u64,
                    });
                }
            }
        }
        out
    }

    /// (column, op) → constants by popularity from the log's predicates.
    fn popular_constants(&self) -> HashMap<(String, String), Vec<String>> {
        let mut counts: HashMap<(String, String), HashMap<String, u32>> = HashMap::new();
        for r in self.storage.iter_live() {
            for p in &r.features.predicates {
                *counts
                    .entry((p.column.clone(), p.op.clone()))
                    .or_default()
                    .entry(p.constant.clone())
                    .or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| {
                let mut list: Vec<(String, u32)> = v.into_iter().collect();
                list.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                (k, list.into_iter().map(|(c, _)| c).collect())
            })
            .collect()
    }
}

/// Levenshtein distance (iterative two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The nearest candidate by Levenshtein distance.
fn nearest<'x>(
    target: &str,
    candidates: impl Iterator<Item = &'x str>,
) -> Option<(&'x str, usize)> {
    candidates
        .map(|c| (c, levenshtein(target, c)))
        .min_by_key(|(c, d)| (*d, c.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn engine() -> relstore::Engine {
        let mut e = relstore::Engine::new();
        workload::Domain::Lakes.setup(&mut e, 100, 1);
        e
    }

    fn storage_with(sqls: &[&str]) -> QueryStorage {
        let mut st = QueryStorage::new();
        for (i, sql) in sqls.iter().enumerate() {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            st.insert(make_record(
                QueryId(i as u64),
                UserId(1),
                100,
                sql,
                Some(stmt),
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(i as u64),
                Visibility::Public,
            ));
        }
        st
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("watertemp", "watertemp"), 0);
        assert_eq!(levenshtein("watertmep", "watertemp"), 2); // transposition = 2 edits
        assert_eq!(levenshtein("watertem", "watertemp"), 1);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("WaterTemp", "watertemp"), 0); // case-blind
    }

    #[test]
    fn corrects_misspelled_table() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        let cs = ce.check_identifiers(&en, "SELECT * FROM WatrTemp");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].suggestion, "WaterTemp");
        assert_eq!(cs[0].kind, "table");
        assert_eq!(cs[0].distance, 1);
    }

    #[test]
    fn corrects_misspelled_column() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        let cs = ce.check_identifiers(&en, "SELECT tmep FROM WaterTemp");
        assert!(
            cs.iter()
                .any(|c| c.suggestion == "temp" && c.kind == "column"),
            "{cs:?}"
        );
    }

    #[test]
    fn correct_queries_produce_no_corrections() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        assert!(ce
            .check_identifiers(&en, "SELECT temp FROM WaterTemp WHERE lake = 'x'")
            .is_empty());
    }

    #[test]
    fn wildly_wrong_names_not_matched() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        let cs = ce.check_identifiers(&en, "SELECT * FROM CompletelyUnrelated");
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn repairs_empty_result_by_dropping_predicate() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        // temp < -100 is unsatisfiable in the data.
        let fixes = ce.repair_empty_result(
            &en,
            "SELECT * FROM WaterTemp WHERE temp < -100 AND lake = 'Lake Washington'",
            5,
        );
        assert!(!fixes.is_empty());
        assert!(fixes.iter().all(|f| f.resulting_rows > 0));
        assert!(fixes[0].description.contains("drop predicate"));
    }

    #[test]
    fn repairs_with_popular_constants_from_log() {
        let en = engine();
        // The log knows that `temp < 18` is a popular, satisfiable choice.
        let st = storage_with(&[
            "SELECT * FROM WaterTemp WHERE temp < 18",
            "SELECT * FROM WaterTemp WHERE temp < 18",
            "SELECT * FROM WaterTemp WHERE temp < 20",
        ]);
        let ce = CorrectionEngine::new(&st);
        let fixes = ce.repair_empty_result(&en, "SELECT * FROM WaterTemp WHERE temp < -5", 10);
        assert!(
            fixes.iter().any(|f| f.description.contains("18")),
            "{fixes:?}"
        );
    }

    #[test]
    fn non_empty_queries_are_left_alone() {
        let en = engine();
        let st = storage_with(&[]);
        let ce = CorrectionEngine::new(&st);
        let fixes = ce.repair_empty_result(&en, "SELECT * FROM WaterTemp", 5);
        assert!(fixes.is_empty());
    }
}
