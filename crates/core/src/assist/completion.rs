//! Context-aware query completion (§2.3).
//!
//! "Assume that the most popular table to include in the FROM clause is
//! CityLocations. However, for queries that also include WaterSalinity, the
//! most popular is WaterTemp. Thus, if the user has already included
//! WaterSalinity, the system should suggest WaterTemp over CityLocations."
//!
//! The engine inspects the partial SQL's token stream to decide *what* is
//! being completed (a table in FROM, an attribute in SELECT/WHERE, a
//! predicate), then ranks candidates by association-rule confidence given
//! the tables already present, falling back to global popularity.

use crate::config::CqmsConfig;
use crate::miner::assoc::{suggest_from_counts, ContextCounts, RuleMiner};
use crate::storage::QueryStorage;
use sqlparse::{Keyword, Lexer, TokenKind};
use std::collections::{HashMap, HashSet};

/// A predicate shape: (table, column, operator).
pub type PredicateKey = (String, String, String);
/// Popularity of one predicate shape: (count, constant → count).
pub type PredicateStats = (u32, HashMap<String, u32>);

/// The catalog names completion needs, detached from the live
/// [`relstore::Engine`] so a [`crate::snapshot::ReadSnapshot`] can answer
/// completions without touching the engine (or any lock).
#[derive(Debug, Clone, Default)]
pub struct CatalogView {
    /// Known relation names (lower → display form).
    pub tables: HashMap<String, String>,
    /// relation (lower) → its columns (display form).
    pub columns: HashMap<String, Vec<String>>,
}

impl CatalogView {
    /// Snapshot an engine's catalog names.
    pub fn of(engine: &relstore::Engine) -> Self {
        let mut view = CatalogView::default();
        for name in engine.catalog.table_names() {
            let lower = name.to_ascii_lowercase();
            if let Ok(t) = engine.catalog.table(&name) {
                view.columns.insert(
                    lower.clone(),
                    t.schema.columns.iter().map(|c| c.name.clone()).collect(),
                );
            }
            view.tables.insert(lower, name);
        }
        view
    }
}

/// Summable per-shard inputs behind one completion probe. Each shard
/// computes its own over its live records (and rule-miner transactions);
/// a sharded deployment [`CompletionStats::merge`]s them and scores the
/// totals once, which reproduces a single unsharded instance holding
/// every shard's log bit-for-bit (see [`suggest_from_counts`] for the
/// rule part of that argument — the popularity parts are plain sums).
#[derive(Debug, Clone, Default)]
pub struct CompletionStats {
    /// Rule-miner context counts for `table:`-prefixed consequents
    /// (filled for FROM-clause probes with at least one table present).
    pub rule_counts: ContextCounts,
    /// table (lower) → live-query use count.
    pub table_pop: HashMap<String, u32>,
    /// (table, attribute) → use count over in-scope tables.
    pub attr_pop: HashMap<(String, String), u32>,
    /// predicate shape → (count, constant → count) over in-scope tables.
    pub pred_pop: HashMap<PredicateKey, PredicateStats>,
}

impl CompletionStats {
    /// Sum another shard's stats into this one.
    pub fn merge(&mut self, other: &CompletionStats) {
        self.rule_counts.merge(&other.rule_counts);
        for (k, v) in &other.table_pop {
            *self.table_pop.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.attr_pop {
            *self.attr_pop.entry(k.clone()).or_insert(0) += v;
        }
        for (k, (c, consts)) in &other.pred_pop {
            let entry = self
                .pred_pop
                .entry(k.clone())
                .or_insert((0, HashMap::new()));
            entry.0 += c;
            for (constant, n) in consts {
                *entry.1.entry(constant.clone()).or_insert(0) += n;
            }
        }
    }
}

/// What the cursor is positioned to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionContext {
    /// Completing a relation name (FROM clause).
    Table,
    /// Completing an attribute (SELECT / GROUP BY / ORDER BY).
    Attribute,
    /// Completing a predicate (WHERE / HAVING).
    Predicate,
    /// Start of a statement.
    Statement,
}

/// One completion suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Text to insert (`WaterTemp`, `temp < 18`, …).
    pub text: String,
    /// Relative score in [0, 1] (confidence or normalised popularity).
    pub score: f64,
    /// Explanation shown in the client ("83% of queries with WaterSalinity
    /// also use WaterTemp").
    pub why: String,
}

/// The completion engine: a view over the storage's feature statistics plus
/// the miner's association rules.
pub struct CompletionEngine<'a> {
    storage: &'a QueryStorage,
    rules: &'a RuleMiner,
    config: &'a CqmsConfig,
    /// Catalog names (owned copy — cheap, a handful of strings).
    catalog: CatalogView,
}

impl<'a> CompletionEngine<'a> {
    /// Bind a completion engine over the storage, rule miner and catalog.
    pub fn new(
        storage: &'a QueryStorage,
        rules: &'a RuleMiner,
        config: &'a CqmsConfig,
        engine: &relstore::Engine,
    ) -> Self {
        Self::with_view(storage, rules, config, CatalogView::of(engine))
    }

    /// Bind over a pre-extracted [`CatalogView`] (the snapshot read path,
    /// which has no engine in reach).
    pub fn with_view(
        storage: &'a QueryStorage,
        rules: &'a RuleMiner,
        config: &'a CqmsConfig,
        catalog: CatalogView,
    ) -> Self {
        CompletionEngine {
            storage,
            rules,
            config,
            catalog,
        }
    }

    /// Detect the completion context and current token prefix from partial
    /// SQL (the text left of the cursor).
    pub fn detect_context(partial: &str) -> (CompletionContext, String, Vec<String>) {
        let tokens = match Lexer::tokenize(partial) {
            Ok(t) => t,
            Err(_) => return (CompletionContext::Statement, String::new(), Vec::new()),
        };
        // Current prefix: a trailing identifier with no whitespace after it.
        let trailing_ws = partial
            .chars()
            .last()
            .map(|c| c.is_whitespace() || c == ',' || c == '(')
            .unwrap_or(true);
        let mut prefix = String::new();
        let mut effective: Vec<&TokenKind> = tokens
            .iter()
            .map(|t| &t.kind)
            .filter(|k| **k != TokenKind::Eof)
            .collect();
        if !trailing_ws {
            if let Some(TokenKind::Ident(last)) = effective.last().copied() {
                prefix = last.clone();
                effective.pop();
            }
        }
        // Tables already present (identifiers following FROM up to WHERE/etc.)
        let mut tables = Vec::new();
        let mut in_from = false;
        for k in &effective {
            match k {
                TokenKind::Keyword(Keyword::From) => in_from = true,
                TokenKind::Keyword(Keyword::Where)
                | TokenKind::Keyword(Keyword::Group)
                | TokenKind::Keyword(Keyword::Order)
                | TokenKind::Keyword(Keyword::Having)
                | TokenKind::Keyword(Keyword::Limit) => in_from = false,
                TokenKind::Ident(name) if in_from => {
                    tables.push(name.to_ascii_lowercase());
                }
                _ => {}
            }
        }
        // Context = clause of the last structural keyword.
        let mut ctx = CompletionContext::Statement;
        for k in &effective {
            match k {
                TokenKind::Keyword(Keyword::Select) => ctx = CompletionContext::Attribute,
                TokenKind::Keyword(Keyword::From) | TokenKind::Keyword(Keyword::Join) => {
                    ctx = CompletionContext::Table
                }
                TokenKind::Keyword(Keyword::Where) | TokenKind::Keyword(Keyword::Having) => {
                    ctx = CompletionContext::Predicate
                }
                TokenKind::Keyword(Keyword::Group) | TokenKind::Keyword(Keyword::Order) => {
                    ctx = CompletionContext::Attribute
                }
                _ => {}
            }
        }
        (ctx, prefix, tables)
    }

    /// Top-k suggestions for the partial SQL.
    pub fn suggest(&self, partial: &str, k: usize) -> Vec<Suggestion> {
        let (ctx, prefix, tables) = Self::detect_context(partial);
        match ctx {
            CompletionContext::Table => self.suggest_tables(&tables, &prefix, k),
            CompletionContext::Attribute => self.suggest_attributes(&tables, &prefix, k),
            CompletionContext::Predicate => self.suggest_predicates(&tables, &prefix, k),
            CompletionContext::Statement => Self::statement_start(),
        }
    }

    /// Collect the summable statistics this probe needs from *this*
    /// storage/miner (one shard's contribution; only the maps the probe's
    /// context consults are filled).
    pub fn collect_stats(&self, partial: &str) -> CompletionStats {
        let (ctx, _prefix, tables) = Self::detect_context(partial);
        let mut stats = CompletionStats::default();
        match ctx {
            CompletionContext::Table => {
                if !tables.is_empty() {
                    let ctx_items: HashSet<String> =
                        tables.iter().map(|t| format!("table:{t}")).collect();
                    stats.rule_counts = self.rules.context_counts(&ctx_items, "table:");
                }
                stats.table_pop = self.collect_table_pop();
            }
            CompletionContext::Attribute => stats.attr_pop = self.collect_attr_pop(&tables),
            CompletionContext::Predicate => stats.pred_pop = self.collect_pred_pop(&tables),
            CompletionContext::Statement => {}
        }
        stats
    }

    /// Top-k suggestions scored from externally supplied (possibly
    /// cross-shard merged) statistics. With stats collected from this
    /// engine's own storage this is bit-identical to
    /// [`CompletionEngine::suggest`].
    pub fn suggest_with_stats(
        &self,
        partial: &str,
        k: usize,
        stats: &CompletionStats,
    ) -> Vec<Suggestion> {
        let (ctx, prefix, tables) = Self::detect_context(partial);
        match ctx {
            CompletionContext::Table => {
                let rule_hits = if tables.is_empty() {
                    Vec::new()
                } else {
                    suggest_from_counts(
                        &stats.rule_counts,
                        self.config.assoc_min_support,
                        self.config.assoc_min_confidence,
                    )
                };
                self.score_tables(&tables, &prefix, k, &rule_hits, &stats.table_pop)
            }
            CompletionContext::Attribute => {
                self.score_attributes(&tables, &prefix, k, &stats.attr_pop)
            }
            CompletionContext::Predicate => self.score_predicates(&prefix, k, &stats.pred_pop),
            CompletionContext::Statement => Self::statement_start(),
        }
    }

    fn statement_start() -> Vec<Suggestion> {
        vec![Suggestion {
            text: "SELECT".to_string(),
            score: 1.0,
            why: "start a query".to_string(),
        }]
    }

    /// Table suggestions: association rules first (context-aware), then
    /// global popularity, then catalog order.
    pub fn suggest_tables(&self, present: &[String], prefix: &str, k: usize) -> Vec<Suggestion> {
        // Context-aware rule hits. The local path goes through the miner's
        // cached Apriori run; the stats path reproduces it exactly from raw
        // counts (see `suggest_from_counts`).
        let rule_hits = if present.is_empty() {
            Vec::new()
        } else {
            let ctx: HashSet<String> = present.iter().map(|t| format!("table:{t}")).collect();
            self.rules.suggest(
                &ctx,
                self.config.assoc_min_support,
                self.config.assoc_min_confidence,
                "table:",
            )
        };
        self.score_tables(present, prefix, k, &rule_hits, &self.collect_table_pop())
    }

    /// Global table popularity from this storage's live log.
    fn collect_table_pop(&self) -> HashMap<String, u32> {
        let mut pop: HashMap<String, u32> = HashMap::new();
        for r in self.storage.iter_live() {
            for t in &r.features.tables {
                *pop.entry(t.clone()).or_insert(0) += 1;
            }
        }
        pop
    }

    fn score_tables(
        &self,
        present: &[String],
        prefix: &str,
        k: usize,
        rule_hits: &[(String, f64)],
        pop: &HashMap<String, u32>,
    ) -> Vec<Suggestion> {
        let prefix_l = prefix.to_ascii_lowercase();
        let mut out: Vec<Suggestion> = Vec::new();
        let mut suggested: HashSet<String> = HashSet::new();

        // 1. Context-aware: rules whose antecedents hold.
        for (item, conf) in rule_hits {
            let t = item.trim_start_matches("table:").to_string();
            if !t.starts_with(&prefix_l) || present.contains(&t) {
                continue;
            }
            if suggested.insert(t.clone()) {
                let display = self.display_table(&t);
                out.push(Suggestion {
                    text: display,
                    score: conf.min(1.0),
                    why: format!(
                        "{:.0}% of queries with {} also use it",
                        conf * 100.0,
                        present.join(", ")
                    ),
                });
            }
        }

        // 2. Global popularity from the log.
        let max_pop = pop.values().copied().max().unwrap_or(1) as f64;
        let mut by_pop: Vec<(String, u32)> = pop.iter().map(|(t, c)| (t.clone(), *c)).collect();
        by_pop.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (t, count) in by_pop {
            if out.len() >= k {
                break;
            }
            if !t.starts_with(&prefix_l) || present.contains(&t) || suggested.contains(&t) {
                continue;
            }
            suggested.insert(t.clone());
            let display = self.display_table(&t);
            out.push(Suggestion {
                text: display,
                // Popularity scores sit below rule confidences by design.
                score: 0.49 * count as f64 / max_pop,
                why: format!("used by {count} logged queries"),
            });
        }

        // 3. Catalog fallback (fresh deployments with an empty log).
        if out.len() < k {
            let mut names: Vec<&String> = self.catalog.tables.keys().collect();
            names.sort();
            for t in names {
                if out.len() >= k {
                    break;
                }
                if !t.starts_with(&prefix_l) || present.contains(t) || suggested.contains(t) {
                    continue;
                }
                out.push(Suggestion {
                    text: self.display_table(t),
                    score: 0.05,
                    why: "in the catalog".to_string(),
                });
            }
        }

        out.truncate(k);
        out
    }

    /// Attribute suggestions for the in-scope tables, popularity-ranked.
    pub fn suggest_attributes(
        &self,
        present: &[String],
        prefix: &str,
        k: usize,
    ) -> Vec<Suggestion> {
        self.score_attributes(present, prefix, k, &self.collect_attr_pop(present))
    }

    /// (table, attribute) use counts over in-scope tables.
    fn collect_attr_pop(&self, present: &[String]) -> HashMap<(String, String), u32> {
        let mut pop: HashMap<(String, String), u32> = HashMap::new();
        for r in self.storage.iter_live() {
            for (t, a) in &r.features.attributes {
                if present.is_empty() || present.contains(t) {
                    *pop.entry((t.clone(), a.clone())).or_insert(0) += 1;
                }
            }
        }
        pop
    }

    fn score_attributes(
        &self,
        present: &[String],
        prefix: &str,
        k: usize,
        pop: &HashMap<(String, String), u32>,
    ) -> Vec<Suggestion> {
        let prefix_l = prefix.to_ascii_lowercase();
        let max_pop = pop.values().copied().max().unwrap_or(1) as f64;
        let mut by_pop: Vec<((String, String), u32)> =
            pop.iter().map(|(ta, c)| (ta.clone(), *c)).collect();
        by_pop.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for ((t, a), count) in by_pop {
            if out.len() >= k {
                break;
            }
            if !a.starts_with(&prefix_l) || !seen.insert(a.clone()) {
                continue;
            }
            out.push(Suggestion {
                text: a.clone(),
                score: count as f64 / max_pop,
                why: format!("popular on {t} ({count} uses)"),
            });
        }
        // Catalog fallback.
        if out.len() < k {
            for t in present {
                if let Some(cols) = self.catalog.columns.get(t) {
                    for c in cols {
                        if out.len() >= k {
                            break;
                        }
                        let cl = c.to_ascii_lowercase();
                        if cl.starts_with(&prefix_l) && seen.insert(cl) {
                            out.push(Suggestion {
                                text: c.clone(),
                                score: 0.05,
                                why: format!("column of {t}"),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Predicate suggestions: popular predicates on in-scope tables with
    /// their most common constants (§2.3 "suggest predicates in the WHERE
    /// clause … and even complete subclauses").
    pub fn suggest_predicates(
        &self,
        present: &[String],
        prefix: &str,
        k: usize,
    ) -> Vec<Suggestion> {
        self.score_predicates(prefix, k, &self.collect_pred_pop(present))
    }

    /// Predicate-shape stats over in-scope tables.
    fn collect_pred_pop(&self, present: &[String]) -> HashMap<PredicateKey, PredicateStats> {
        let mut pop: HashMap<PredicateKey, PredicateStats> = HashMap::new();
        for r in self.storage.iter_live() {
            for p in &r.features.predicates {
                if !present.is_empty() && !present.contains(&p.table) && !p.table.is_empty() {
                    continue;
                }
                let entry = pop
                    .entry((p.table.clone(), p.column.clone(), p.op.clone()))
                    .or_insert((0, HashMap::new()));
                entry.0 += 1;
                *entry.1.entry(p.constant.clone()).or_insert(0) += 1;
            }
        }
        pop
    }

    fn score_predicates(
        &self,
        prefix: &str,
        k: usize,
        pop: &HashMap<PredicateKey, PredicateStats>,
    ) -> Vec<Suggestion> {
        let prefix_l = prefix.to_ascii_lowercase();
        let max_pop = pop.values().map(|(c, _)| *c).max().unwrap_or(1) as f64;
        let mut list: Vec<(&PredicateKey, &PredicateStats)> = pop.iter().collect();
        list.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
        let mut out = Vec::new();
        for ((_t, col, op), (count, consts)) in list {
            if out.len() >= k {
                break;
            }
            if !col.starts_with(&prefix_l) {
                continue;
            }
            let best_const = consts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(c, _)| c.clone())
                .unwrap_or_default();
            out.push(Suggestion {
                text: format!("{col} {op} {best_const}"),
                score: *count as f64 / max_pop,
                why: format!("{count} logged queries filter on it"),
            });
        }
        out
    }

    fn display_table(&self, lower: &str) -> String {
        self.catalog
            .tables
            .get(lower)
            .cloned()
            .unwrap_or_else(|| lower.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn seeded() -> (QueryStorage, RuleMiner, relstore::Engine) {
        let mut engine = relstore::Engine::new();
        workload::Domain::Lakes.setup(&mut engine, 10, 1);
        let mut st = QueryStorage::new();
        let mut rules = RuleMiner::new();
        // The paper's §2.3 scenario: CityLocations is the most popular table
        // overall, but WaterSalinity co-occurs with WaterTemp.
        let mut sqls: Vec<String> = Vec::new();
        for i in 0..10 {
            sqls.push(format!("SELECT city FROM CityLocations WHERE pop > {i}"));
        }
        for _ in 0..6 {
            sqls.push(
                "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x \
                 AND T.temp < 18"
                    .to_string(),
            );
        }
        sqls.push("SELECT * FROM WaterSalinity WHERE salinity > 0.3".to_string());
        for (i, sql) in sqls.iter().enumerate() {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            rules.add_transaction(feats.items());
            st.insert(make_record(
                QueryId(i as u64),
                UserId(1),
                100 + i as u64,
                sql,
                Some(stmt),
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(i as u64),
                Visibility::Public,
            ));
        }
        (st, rules, engine)
    }

    #[test]
    fn context_detection() {
        let (ctx, prefix, tables) =
            CompletionEngine::detect_context("SELECT * FROM WaterSalinity, Wat");
        assert_eq!(ctx, CompletionContext::Table);
        assert_eq!(prefix, "Wat");
        assert_eq!(tables, vec!["watersalinity"]);

        let (ctx, _, tables) = CompletionEngine::detect_context("SELECT * FROM WaterTemp WHERE te");
        assert_eq!(ctx, CompletionContext::Predicate);
        assert_eq!(tables, vec!["watertemp"]);

        let (ctx, ..) = CompletionEngine::detect_context("SELECT ");
        assert_eq!(ctx, CompletionContext::Attribute);

        let (ctx, ..) = CompletionEngine::detect_context("");
        assert_eq!(ctx, CompletionContext::Statement);
    }

    #[test]
    fn paper_scenario_watertemp_over_citylocations() {
        let (st, rules, engine) = seeded();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        // No context: CityLocations is most popular.
        let plain = ce.suggest_tables(&[], "", 3);
        assert_eq!(plain[0].text, "CityLocations", "{plain:?}");
        // With WaterSalinity present: WaterTemp must win.
        let ctx = ce.suggest_tables(&["watersalinity".to_string()], "", 3);
        assert_eq!(ctx[0].text, "WaterTemp", "{ctx:?}");
        assert!(ctx[0].score > 0.5);
        assert!(ctx[0].why.contains("watersalinity"));
    }

    #[test]
    fn prefix_filters_suggestions() {
        let (st, rules, engine) = seeded();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        let hits = ce.suggest_tables(&[], "Water", 5);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|s| s.text.starts_with("Water")));
    }

    #[test]
    fn full_pipeline_from_partial_sql() {
        let (st, rules, engine) = seeded();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        let hits = ce.suggest("SELECT * FROM WaterSalinity, ", 3);
        assert_eq!(hits[0].text, "WaterTemp");
    }

    #[test]
    fn attribute_suggestions_ranked_by_use() {
        let (st, rules, engine) = seeded();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        let hits = ce.suggest_attributes(&["citylocations".to_string()], "", 5);
        assert!(!hits.is_empty());
        // `pop` and `city` are the logged attributes of CityLocations.
        assert!(hits.iter().any(|s| s.text == "pop"));
        assert!(hits.iter().any(|s| s.text == "city"));
    }

    #[test]
    fn predicate_suggestions_include_popular_constant() {
        let (st, rules, engine) = seeded();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        let hits = ce.suggest_predicates(&["watertemp".to_string()], "", 5);
        assert!(hits.iter().any(|s| s.text == "temp < 18"), "{hits:?}");
    }

    #[test]
    fn empty_log_falls_back_to_catalog() {
        let mut engine = relstore::Engine::new();
        workload::Domain::Lakes.setup(&mut engine, 5, 1);
        let st = QueryStorage::new();
        let rules = RuleMiner::new();
        let cfg = CqmsConfig::default();
        let ce = CompletionEngine::new(&st, &rules, &cfg, &engine);
        let hits = ce.suggest_tables(&[], "", 10);
        assert!(hits.iter().any(|s| s.text == "WaterTemp"));
        let attrs = ce.suggest_attributes(&["watertemp".to_string()], "", 10);
        assert!(attrs.iter().any(|s| s.text == "temp"));
    }
}
