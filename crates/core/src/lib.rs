//! # cqms-core — the Collaborative Query Management System
//!
//! A complete implementation of the CQMS engine proposed in *"A Case for A
//! Collaborative Query Management System"* (Khoussainova, Balazinska,
//! Gatterbauer, Kwon, Suciu — CIDR 2009), covering all four interaction
//! modes (§2) and all four server components of Figure 4:
//!
//! | Paper component | Module |
//! |---|---|
//! | Query Profiler (§4.1) | [`profiler`], [`features`] |
//! | Query Storage (§4.1) | [`storage`] (incl. the Figure 1 feature relations) |
//! | Meta-query Executor (§4.2) | [`metaquery`], [`similarity`] |
//! | Query Miner (§4.3) | [`miner`] (sessions, clustering, association rules, edit patterns, tutorials) |
//! | Query Maintenance (§4.4) | [`maintenance`] |
//! | Assisted Interaction (§2.3) | [`assist`] (completion, correction, recommendation) |
//! | Administrative Interaction (§2.4) | [`admin`] |
//! | Client rendering (Figs. 2–3) | [`viz`] |
//!
//! The façade tying everything together over one embedded
//! [`relstore::Engine`] is [`server::Cqms`]; see `examples/quickstart.rs`.
//! For shared multi-threaded use — many analysts completing and searching
//! while writers ingest and the miner runs in the background — wrap it in
//! [`service::CqmsService`], which enforces the read/write lock discipline.
//!
//! Durable deployments build the façade with [`server::Cqms::open`], which
//! attaches the [`wal`] write-ahead log and replays it on restart; see
//! `ARCHITECTURE.md` at the repo root for the recovery state machine.

#![warn(missing_docs)]

pub mod admin;
pub mod admission;
pub mod assist;
pub mod config;
pub mod error;
pub mod faults;
pub mod features;
pub mod indexreg;
pub mod maintenance;
pub mod metaquery;
pub mod metricindex;
pub mod miner;
pub mod model;
pub mod postings;
pub mod profiler;
pub mod server;
pub mod service;
pub mod shard;
pub mod signature;
pub mod similarity;
pub mod snapshot;
pub mod storage;
pub mod viz;
pub mod wal;

pub use admission::{AdmissionGate, AdmissionStats};
pub use config::CqmsConfig;
pub use error::CqmsError;
pub use faults::{FaultAction, FaultPlan, FaultySink};
pub use model::{Annotation, QueryId, QueryRecord, SessionId, UserId, Visibility};
pub use server::Cqms;
pub use service::{CqmsService, IngestItem};
pub use shard::{PartialResult, ShardHealth, ShardState, ShardedCqms};
pub use snapshot::ReadSnapshot;
pub use wal::{RecoveryReport, SalvagePlan, SegmentDisposition};
